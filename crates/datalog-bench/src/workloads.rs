//! Synthetic EDB generators.
//!
//! The paper has no published datasets (PODS 1988); these generators cover
//! the relation shapes its examples use: binary edge relations for the
//! transitive-closure programs (`p`), the `up`/`dn`/`flat`/`b`/`c`
//! relations of Example 12 and the same-generation family, the `b1..b4`,
//! `g1..g4` base relations of Examples 7–11, and bill-of-material style
//! DAGs for the boolean-cut experiment.

use datalog_ast::{PredRef, Value};
use datalog_engine::FactSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simple chain `pred(0,1), pred(1,2), ..., pred(n-1,n)`.
pub fn chain(pred: &str, n: i64) -> FactSet {
    let mut fs = FactSet::new();
    let p = PredRef::new(pred);
    for i in 0..n {
        fs.insert(p.clone(), vec![Value::int(i), Value::int(i + 1)]);
    }
    fs
}

/// A cycle of length `n`.
pub fn cycle(pred: &str, n: i64) -> FactSet {
    let mut fs = FactSet::new();
    let p = PredRef::new(pred);
    for i in 0..n {
        fs.insert(p.clone(), vec![Value::int(i), Value::int((i + 1) % n)]);
    }
    fs
}

/// A random digraph with `n` nodes and `m` edges (duplicates deduped).
pub fn random_digraph(pred: &str, n: i64, m: usize, seed: u64) -> FactSet {
    let mut fs = FactSet::new();
    let p = PredRef::new(pred);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        fs.insert(p.clone(), vec![Value::int(a), Value::int(b)]);
    }
    fs
}

/// A complete `k`-ary tree of the given depth, edges parent→child.
pub fn tree(pred: &str, arity: i64, depth: u32) -> FactSet {
    let mut fs = FactSet::new();
    let p = PredRef::new(pred);
    let mut frontier: Vec<i64> = vec![0];
    let mut next_id: i64 = 1;
    for _ in 0..depth {
        let mut next = Vec::new();
        for &node in &frontier {
            for _ in 0..arity {
                fs.insert(p.clone(), vec![Value::int(node), Value::int(next_id)]);
                next.push(next_id);
                next_id += 1;
            }
        }
        frontier = next;
    }
    fs
}

/// The Example 12 / same-generation shape: a tower of `up` edges, matching
/// `dn` edges, `b(x, y, z)` base triples at the bottom and a `c` relation
/// over the third column with the given selectivity (fraction of `z`
/// values present in `c`).
pub fn updown(levels: i64, width: i64, c_selectivity: f64, seed: u64) -> FactSet {
    let mut fs = FactSet::new();
    let up = PredRef::new("up");
    let dn = PredRef::new("dn");
    let b = PredRef::new("b");
    let c = PredRef::new("c");
    let mut rng = StdRng::seed_from_u64(seed);
    // Node ids: level * width + offset; two disjoint towers for up and dn.
    let node = |lvl: i64, off: i64| Value::int(lvl * width + off);
    let dnode = |lvl: i64, off: i64| Value::int(1_000_000 + lvl * width + off);
    for lvl in 0..levels {
        for off in 0..width {
            // up goes toward the base (deeper level), dn comes back.
            fs.insert(up.clone(), vec![node(lvl, off), node(lvl + 1, off)]);
            fs.insert(dn.clone(), vec![dnode(lvl + 1, off), dnode(lvl, off)]);
        }
    }
    for off in 0..width {
        // Base triples tie the two towers together at the deepest level.
        let z = Value::int(2_000_000 + off);
        fs.insert(b.clone(), vec![node(levels, off), dnode(levels, off), z]);
        if rng.gen_bool(c_selectivity) {
            fs.insert(c.clone(), vec![z]);
        }
    }
    fs
}

/// Random EDB derived from a program's schema: every base (EDB) predicate
/// of `program` gets `per_rel` random tuples (deduplicated) over the
/// integer domain `0..n`, at whatever arity the program uses it.
pub fn edb_for(program: &datalog_ast::Program, n: i64, per_rel: usize, seed: u64) -> FactSet {
    let mut fs = FactSet::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let arities = program
        .arities()
        .expect("workload program has consistent arities");
    for pred in program.edb_preds() {
        let arity = arities[&pred];
        for _ in 0..per_rel {
            let t: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.gen_range(0..n)))
                .collect();
            fs.insert(pred.clone(), t);
        }
    }
    fs
}

/// A unary relation `pred(0..n)`.
pub fn unary(pred: &str, n: i64) -> FactSet {
    let mut fs = FactSet::new();
    let p = PredRef::new(pred);
    for i in 0..n {
        fs.insert(p.clone(), vec![Value::int(i)]);
    }
    fs
}

/// Bill-of-materials style DAG for the boolean-cut experiment: `part(P)`
/// subparts via `sub(P, Q)`, plus a large `certified(S)` relation of which
/// only existence matters.
pub fn bom(parts: i64, fanout: i64, certified: i64) -> FactSet {
    let mut fs = FactSet::new();
    let sub = PredRef::new("sub");
    let cert = PredRef::new("certified");
    for p in 0..parts {
        for k in 1..=fanout {
            let q = p * fanout + k;
            if q < parts {
                fs.insert(sub.clone(), vec![Value::int(p), Value::int(q)]);
            }
        }
    }
    for s in 0..certified {
        fs.insert(cert.clone(), vec![Value::int(s)]);
    }
    fs
}

/// A random *safe* Datalog program over a small fixed schema, for
/// differential testing (`cargo run -p datalog-bench --bin fuzz`). Head
/// variables are drawn from the generated body, so every program validates.
/// The query is `?- q(X, _)` (existential) or `?- q(X, Y)`.
pub fn random_program(seed: u64) -> datalog_ast::Program {
    use datalog_ast::{Atom, PredRef, Program, Query, Rule, Term, Var};
    let mut rng = StdRng::seed_from_u64(seed);
    let idb: [(&str, usize); 2] = [("q", 2), ("r", 1)];
    let edb: [(&str, usize); 3] = [("e", 2), ("f", 1), ("g", 3)];
    let vars = ["X", "Y", "Z", "U", "V", "W"];
    let mut rules = Vec::new();
    let n_rules = rng.gen_range(2..=5);
    for k in 0..n_rules {
        // Guarantee at least one rule per IDB pred.
        let (hname, harity) = if k < idb.len() {
            idb[k]
        } else {
            idb[rng.gen_range(0..idb.len())]
        };
        let n_lits = rng.gen_range(1..=3);
        let mut body = Vec::new();
        let mut body_vars: Vec<Var> = Vec::new();
        for _ in 0..n_lits {
            let all: Vec<(&str, usize)> = idb.iter().chain(edb.iter()).copied().collect();
            let (name, arity) = all[rng.gen_range(0..all.len())];
            let terms: Vec<Term> = (0..arity)
                .map(|_| Term::Var(Var::new(vars[rng.gen_range(0..vars.len())])))
                .collect();
            for t in &terms {
                if let Term::Var(v) = t {
                    if !body_vars.contains(v) {
                        body_vars.push(*v);
                    }
                }
            }
            body.push(Atom::new(PredRef::new(name), terms));
        }
        let head_terms: Vec<Term> = (0..harity)
            .map(|_| Term::Var(body_vars[rng.gen_range(0..body_vars.len())]))
            .collect();
        rules.push(Rule::new(Atom::new(PredRef::new(hname), head_terms), body));
    }
    let query = if rng.gen_bool(0.5) {
        Atom::new(
            PredRef::new("q"),
            vec![Term::Var(Var::new("X")), Term::Var(Var::fresh_wildcard())],
        )
    } else {
        Atom::app("q", &["X", "Y"])
    };
    let mut p = Program::new(rules);
    p.query = Some(Query::new(query));
    p
}

/// Pad a binary edge EDB into arity `2 + extra` by appending dead columns
/// (used by the arity-scaling experiment E7).
pub fn padded_edges(pred: &str, n: i64, extra: usize, seed: u64) -> FactSet {
    let mut fs = FactSet::new();
    let p = PredRef::new(pred);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let mut t = vec![Value::int(i), Value::int(i + 1)];
        for _ in 0..extra {
            t.push(Value::int(rng.gen_range(0..8)));
        }
        fs.insert(p.clone(), t);
    }
    fs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_counts() {
        let fs = chain("p", 10);
        assert_eq!(fs.count(&PredRef::new("p")), 10);
        assert!(fs.contains(&PredRef::new("p"), &[Value::int(0), Value::int(1)]));
    }

    #[test]
    fn cycle_wraps() {
        let fs = cycle("p", 5);
        assert!(fs.contains(&PredRef::new("p"), &[Value::int(4), Value::int(0)]));
        assert_eq!(fs.count(&PredRef::new("p")), 5);
    }

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph("p", 50, 100, 7);
        let b = random_digraph("p", 50, 100, 7);
        assert_eq!(a, b);
        let c = random_digraph("p", 50, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn tree_node_count() {
        // Binary tree depth 3: 2 + 4 + 8 = 14 edges.
        let fs = tree("p", 2, 3);
        assert_eq!(fs.count(&PredRef::new("p")), 14);
    }

    #[test]
    fn updown_structure() {
        let fs = updown(3, 4, 1.0, 1);
        assert_eq!(fs.count(&PredRef::new("up")), 12);
        assert_eq!(fs.count(&PredRef::new("dn")), 12);
        assert_eq!(fs.count(&PredRef::new("b")), 4);
        assert_eq!(fs.count(&PredRef::new("c")), 4);
        // Selectivity 0: no c facts.
        let fs0 = updown(3, 4, 0.0, 1);
        assert_eq!(fs0.count(&PredRef::new("c")), 0);
    }

    #[test]
    fn padded_edges_arity() {
        let fs = padded_edges("p", 5, 3, 1);
        for (_, t) in fs.iter() {
            assert_eq!(t.len(), 5);
        }
    }

    #[test]
    fn bom_has_certified() {
        let fs = bom(20, 2, 100);
        assert_eq!(fs.count(&PredRef::new("certified")), 100);
        assert!(fs.count(&PredRef::new("sub")) > 0);
    }

    #[test]
    fn edb_for_follows_program_schema() {
        let p = datalog_ast::parse_program("q(X) :- e2(X, Y), e3(X, Y, Z).\n?- q(X).")
            .unwrap()
            .program;
        let fs = edb_for(&p, 10, 5, 3);
        assert!(fs.count(&PredRef::new("e2")) > 0);
        assert!(fs.count(&PredRef::new("e3")) > 0);
        for t in fs.tuples(&PredRef::new("e3")) {
            assert_eq!(t.len(), 3);
        }
        // Derived predicates get no facts.
        assert_eq!(fs.count(&PredRef::new("q")), 0);
        // Deterministic in the seed.
        assert_eq!(fs, edb_for(&p, 10, 5, 3));
    }
}

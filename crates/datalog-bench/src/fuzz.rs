//! Differential fuzzing: random safe programs × random instances, evaluated
//! under every engine/optimizer configuration; any disagreement is a bug.
//!
//! The logic lives here (not in the `fuzz` binary) so the test suite can run
//! a small fixed-seed smoke round on every `cargo test`, keeping the
//! differential oracle exercised without a separate manual step.

use datalog_engine::incremental::{DeltaLimits, Fact, ResidentEval};
use datalog_engine::{evaluate, extract_answers, query_answers, EvalOptions, Strategy};
use datalog_opt::{optimize, OptimizerConfig};

use crate::workloads::{edb_for, random_program};

/// Parallel determinism arm: evaluate one program at 1, 2 and 8 threads —
/// profiled and unprofiled — and require *byte* identity: every relation's
/// rows in insertion order (not just the answer set), the full stats
/// partition, provenance, and (walls aside, which legitimately vary) the
/// profile counters. Returns the number of disagreements found.
fn thread_differential(
    program: &datalog_ast::Program,
    instance: &datalog_engine::FactSet,
    mut complain: impl FnMut(&str),
) -> u64 {
    let mut failures = 0u64;
    for profile in [false, true] {
        let opts = |threads: usize| EvalOptions {
            threads,
            profile,
            record_provenance: true,
            ..EvalOptions::default()
        };
        let serial = evaluate(program, instance, &opts(1)).expect("serial evaluates");
        for threads in [2usize, 8] {
            let label = format!("threads={threads} profile={profile}");
            let par = match evaluate(program, instance, &opts(threads)) {
                Ok(out) => out,
                Err(e) => {
                    complain(&format!("{label}: evaluation failed: {e}"));
                    failures += 1;
                    continue;
                }
            };
            if par.stats != serial.stats {
                complain(&format!(
                    "{label}: stats diverge\n serial: {:?}\n parallel: {:?}",
                    serial.stats, par.stats
                ));
                failures += 1;
            }
            if par.provenance != serial.provenance {
                complain(&format!("{label}: provenance diverges"));
                failures += 1;
            }
            let rows_match = (0..serial.database.pred_count()).all(|p| {
                let id = datalog_engine::PredId(p as u32);
                serial
                    .database
                    .relation(id)
                    .iter()
                    .eq(par.database.relation(id).iter())
            });
            if serial.database.pred_count() != par.database.pred_count() || !rows_match {
                complain(&format!("{label}: databases diverge (row-id order)"));
                failures += 1;
            }
            let sp = serial.profile.as_ref().map(|p| p.counters_only());
            let pp = par.profile.as_ref().map(|p| p.counters_only());
            if sp != pp {
                complain(&format!("{label}: profile counters diverge"));
                failures += 1;
            }
        }
    }
    failures
}

/// Incremental maintenance arm: load half the instance cold into resident
/// semi-naive state at 1 and 4 threads, then ingest the rest in batches.
/// After every batch the two resident frontiers must be *byte* identical
/// (rows in insertion order, provenance, per-batch reports modulo wall
/// time, cumulative stats), and the 1-thread frontier must match a cold
/// full fixpoint over everything applied so far — set-identical database
/// dump and byte-identical query answers. Returns disagreements found.
fn incremental_differential(
    program: &datalog_ast::Program,
    instance: &datalog_engine::FactSet,
    mut complain: impl FnMut(&str),
) -> u64 {
    if !ResidentEval::supports(program) {
        return 0; // non-monotone programs fall outside the resident path
    }
    let mut failures = 0u64;
    let opts = |threads: usize| EvalOptions {
        threads,
        record_provenance: true,
        ..EvalOptions::default()
    };
    // FactSet iteration is BTreeMap-ordered, so the split is deterministic.
    let facts: Vec<Fact> = instance
        .iter()
        .map(|(pred, tuple)| Fact::new(pred.clone(), tuple.clone()))
        .collect();
    let split = facts.len() / 2;
    let mut loaded = datalog_engine::FactSet::new();
    for f in &facts[..split] {
        loaded.insert(f.pred.clone(), f.tuple.clone());
    }
    let mut residents = Vec::new();
    for threads in [1usize, 4] {
        match ResidentEval::new(program, &loaded, &opts(threads)) {
            Ok(r) => residents.push(r),
            Err(e) => {
                complain(&format!("incremental: construction@{threads} failed: {e}"));
                return failures + 1;
            }
        }
    }
    let [ref mut r1, ref mut r4] = residents[..] else {
        unreachable!()
    };
    for batch in facts[split..].chunks(3) {
        let limits = DeltaLimits::default();
        let (rep1, rep4) = match (
            r1.apply_deltas(batch, &limits),
            r4.apply_deltas(batch, &limits),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                complain(&format!("incremental: propagation failed: {a:?} / {b:?}"));
                return failures + 1;
            }
        };
        // Thread identity: reports agree field-for-field (walls aside).
        let strip = |r: &datalog_engine::incremental::DeltaReport| {
            let mut r = *r;
            r.wall_ns = 0;
            r
        };
        if strip(&rep1) != strip(&rep4) {
            complain(&format!(
                "incremental: batch reports diverge across threads\n 1: {rep1:?}\n 4: {rep4:?}"
            ));
            failures += 1;
        }
        if r1.cumulative_stats() != r4.cumulative_stats() {
            complain("incremental: cumulative stats diverge across threads");
            failures += 1;
        }
        if r1.provenance() != r4.provenance() {
            complain("incremental: provenance diverges across threads");
            failures += 1;
        }
        let rows_match = (0..r1.database().pred_count()).all(|p| {
            let id = datalog_engine::PredId(p as u32);
            r1.database()
                .relation(id)
                .iter()
                .eq(r4.database().relation(id).iter())
        });
        if r1.database().pred_count() != r4.database().pred_count() || !rows_match {
            complain("incremental: resident databases diverge (row-id order)");
            failures += 1;
        }
        // Cold identity: a from-scratch fixpoint over everything applied so
        // far must reach the same model and the same rendered answers.
        for f in batch {
            loaded.insert(f.pred.clone(), f.tuple.clone());
        }
        let cold = match evaluate(program, &loaded, &opts(1)) {
            Ok(out) => out,
            Err(e) => {
                complain(&format!("incremental: cold reference failed: {e}"));
                return failures + 1;
            }
        };
        if cold.database.dump() != r1.dump() {
            complain("incremental: resident frontier diverges from cold fixpoint");
            failures += 1;
        }
        if let Some(q) = &program.query {
            if extract_answers(&q.atom, &cold.database) != r1.answers(&q.atom) {
                complain("incremental: resident answers diverge from cold answers");
                failures += 1;
            }
        }
    }
    failures
}

/// Storage differential arm: the sorted-run backend (the default) against
/// the legacy hash-postings backend it replaced, at 1 and 4 threads.
/// Storage sits *below* the logical contract — same row ids, same
/// insertion order, same delta ranges — so everything observable must be
/// byte identical: every relation's rows in row-id order, the full stats
/// partition, provenance, and profile counters. The resident ingest path
/// is replayed under both backends too: after every `apply_deltas` batch
/// the two frontiers and their reports (walls aside) must agree.
/// Returns the number of disagreements found.
fn storage_differential(
    program: &datalog_ast::Program,
    instance: &datalog_engine::FactSet,
    mut complain: impl FnMut(&str),
) -> u64 {
    let mut failures = 0u64;
    let opts = |threads: usize, legacy: bool| EvalOptions {
        threads,
        legacy_storage: legacy,
        profile: true,
        record_provenance: true,
        ..EvalOptions::default()
    };
    for threads in [1usize, 4] {
        let label = format!("storage@threads={threads}");
        let (sorted, legacy) = match (
            evaluate(program, instance, &opts(threads, false)),
            evaluate(program, instance, &opts(threads, true)),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                complain(&format!(
                    "{label}: evaluation failed (sorted err={}, legacy err={})",
                    a.is_err(),
                    b.is_err()
                ));
                return failures + 1;
            }
        };
        if sorted.stats != legacy.stats {
            complain(&format!(
                "{label}: stats diverge\n sorted: {:?}\n legacy: {:?}",
                sorted.stats, legacy.stats
            ));
            failures += 1;
        }
        if sorted.provenance != legacy.provenance {
            complain(&format!("{label}: provenance diverges"));
            failures += 1;
        }
        let rows_match = (0..sorted.database.pred_count()).all(|p| {
            let id = datalog_engine::PredId(p as u32);
            sorted
                .database
                .relation(id)
                .iter()
                .eq(legacy.database.relation(id).iter())
        });
        if sorted.database.pred_count() != legacy.database.pred_count() || !rows_match {
            complain(&format!("{label}: databases diverge (row-id order)"));
            failures += 1;
        }
        let sp = sorted.profile.as_ref().map(|p| p.counters_only());
        let lp = legacy.profile.as_ref().map(|p| p.counters_only());
        if sp != lp {
            complain(&format!("{label}: profile counters diverge"));
            failures += 1;
        }
    }
    // Resident ingest path under both backends.
    if !ResidentEval::supports(program) {
        return failures;
    }
    let facts: Vec<Fact> = instance
        .iter()
        .map(|(pred, tuple)| Fact::new(pred.clone(), tuple.clone()))
        .collect();
    let split = facts.len() / 2;
    let mut loaded = datalog_engine::FactSet::new();
    for f in &facts[..split] {
        loaded.insert(f.pred.clone(), f.tuple.clone());
    }
    let built = (
        ResidentEval::new(program, &loaded, &opts(1, false)),
        ResidentEval::new(program, &loaded, &opts(1, true)),
    );
    let (mut sorted, mut legacy) = match built {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            complain(&format!(
                "storage: resident construction failed (sorted err={}, legacy err={})",
                a.is_err(),
                b.is_err()
            ));
            return failures + 1;
        }
    };
    for batch in facts[split..].chunks(3) {
        let limits = DeltaLimits::default();
        let (rs, rl) = match (
            sorted.apply_deltas(batch, &limits),
            legacy.apply_deltas(batch, &limits),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => {
                complain(&format!(
                    "storage: resident propagation failed: {a:?} / {b:?}"
                ));
                return failures + 1;
            }
        };
        let strip = |r: &datalog_engine::incremental::DeltaReport| {
            let mut r = *r;
            r.wall_ns = 0;
            r
        };
        if strip(&rs) != strip(&rl) {
            complain(&format!(
                "storage: resident batch reports diverge\n sorted: {rs:?}\n legacy: {rl:?}"
            ));
            failures += 1;
        }
        let rows_match = (0..sorted.database().pred_count()).all(|p| {
            let id = datalog_engine::PredId(p as u32);
            sorted
                .database()
                .relation(id)
                .iter()
                .eq(legacy.database().relation(id).iter())
        });
        if sorted.database().pred_count() != legacy.database().pred_count() || !rows_match {
            complain("storage: resident databases diverge (row-id order)");
            failures += 1;
        }
        if sorted.provenance() != legacy.provenance() {
            complain("storage: resident provenance diverges");
            failures += 1;
        }
    }
    failures
}

/// Bound-soundness arm: the static size-bound analysis must never
/// under-approximate. Analyze the program, evaluate its bounds at the
/// instance's *true* EDB cardinalities, run the full fixpoint, and require
/// every derived predicate's actual fact count to sit at or under its
/// certified bound. Also checks the admission contract: a form the
/// analysis classifies unbounded must never be admitted to resident
/// incremental state. Returns the number of violations found.
fn bounds_soundness(
    program: &datalog_ast::Program,
    instance: &datalog_engine::FactSet,
    mut complain: impl FnMut(&str),
) -> u64 {
    let report = match datalog_lint::analyze_bounds(program) {
        Ok(r) => r,
        Err(e) => {
            complain(&format!("bounds: analysis failed on a valid program: {e}"));
            return 1;
        }
    };
    let cards: std::collections::BTreeMap<String, u64> = report
        .edb
        .iter()
        .map(|p| (p.to_string(), instance.count(p) as u64))
        .collect();
    let out = match evaluate(program, instance, &EvalOptions::default()) {
        Ok(o) => o,
        // The reference arm already complained about the failure.
        Err(_) => return 0,
    };
    let mut failures = 0;
    for pred in &report.idb {
        let actual = out
            .database
            .pred_id(pred)
            .map_or(0, |id| out.database.relation(id).len()) as u64;
        let Some(bound) = report.eval_count(pred, &cards) else {
            complain(&format!("bounds: derived predicate {pred} has no verdict"));
            failures += 1;
            continue;
        };
        if actual > bound {
            complain(&format!(
                "bounds: {pred} derived {actual} facts, certified bound is {bound}"
            ));
            failures += 1;
        }
        if report.class_of(pred) == datalog_trace::BoundClass::Unbounded
            && ResidentEval::admits_bound_class(report.class_of(pred))
        {
            complain(&format!(
                "bounds: unbounded-classified {pred} admitted to resident state"
            ));
            failures += 1;
        }
    }
    failures
}

/// Rounds and base seed of the fixed `--smoke` configuration. Small enough
/// for a debug-profile test run, deterministic so failures reproduce.
pub const SMOKE_ROUNDS: u64 = 25;
/// Base seed used by `--smoke`.
pub const SMOKE_BASE_SEED: u64 = 1;

/// Run `rounds` differential rounds starting at `base` seed; returns the
/// number of failures. When `verbose` is false, per-failure diagnostics are
/// suppressed (the caller only wants the count).
pub fn run_rounds(rounds: u64, base: u64, verbose: bool) -> u64 {
    let mut failures = 0u64;
    macro_rules! complain {
        ($($arg:tt)*) => {
            if verbose {
                eprintln!($($arg)*);
            }
        };
    }
    for round in 0..rounds {
        let seed = base.wrapping_add(round);
        let program = random_program(seed);
        if program.validate().is_err() {
            complain!("seed {seed}: generator produced an invalid program");
            failures += 1;
            continue;
        }
        let instance = edb_for(&program, 4, 12, seed ^ 0xabcdef);
        let reference = match query_answers(&program, &instance, &EvalOptions::default()) {
            Ok((a, _)) => a.rows,
            Err(e) => {
                complain!("seed {seed}: reference evaluation failed: {e}");
                failures += 1;
                continue;
            }
        };
        let check =
            |label: &str, rows: &std::collections::BTreeSet<Vec<datalog_ast::Value>>| -> u64 {
                if *rows != reference {
                    complain!(
                        "seed {seed}: {label} disagrees with reference\nprogram:\n{}",
                        program.to_text()
                    );
                    1
                } else {
                    0
                }
            };
        // Naive strategy.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .expect("naive evaluates");
        failures += check("naive", &a.rows);
        // Reordered joins.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                reorder_joins: true,
                ..EvalOptions::default()
            },
        )
        .expect("reordered evaluates");
        failures += check("reorder_joins", &a.rows);
        // Profiled evaluation must not change answers (and partitions the
        // global counters — checked in depth by the engine's tests).
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                profile: true,
                ..EvalOptions::default()
            },
        )
        .expect("profiled evaluates");
        failures += check("profiled", &a.rows);
        // Parallel determinism: byte-identical databases, stats partitions,
        // provenance, and profile counters at 1 vs 2 vs 8 threads.
        failures += thread_differential(&program, &instance, |msg| {
            complain!("seed {seed}: {msg}");
        });
        // Incremental maintenance: resident frontier vs cold fixpoint, at
        // 1 and 4 threads, after every ingested batch.
        failures += incremental_differential(&program, &instance, |msg| {
            complain!("seed {seed}: {msg}");
        });
        // Storage backends: sorted-run (default) vs legacy hash postings
        // must be byte-identical everywhere, cold and resident.
        failures += storage_differential(&program, &instance, |msg| {
            complain!("seed {seed}: {msg}");
        });
        // Static size bounds: actual derived counts never exceed the
        // certified bound at the instance's true cardinalities.
        failures += bounds_soundness(&program, &instance, |msg| {
            complain!("seed {seed}: {msg}");
        });
        // Full optimizer (+ cut).
        match optimize(&program, &OptimizerConfig::default()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("optimized evaluates");
                failures += check("optimizer", &a.rows);
            }
            Err(e) => {
                complain!("seed {seed}: optimizer failed: {e}");
                failures += 1;
            }
        }
        // Aggressive optimizer (auto-fold).
        match optimize(&program, &OptimizerConfig::aggressive()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("aggressive evaluates");
                failures += check("aggressive-optimizer", &a.rows);
            }
            Err(e) => {
                complain!("seed {seed}: aggressive optimizer failed: {e}");
                failures += 1;
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fixed-seed smoke configuration must stay green: it is the same
    /// oracle the `fuzz --smoke` binary invocation runs.
    #[test]
    fn smoke_rounds_find_no_disagreements() {
        assert_eq!(run_rounds(SMOKE_ROUNDS, SMOKE_BASE_SEED, true), 0);
    }
}

//! Differential fuzzing: random safe programs × random instances, evaluated
//! under every engine/optimizer configuration; any disagreement is a bug.
//!
//! The logic lives here (not in the `fuzz` binary) so the test suite can run
//! a small fixed-seed smoke round on every `cargo test`, keeping the
//! differential oracle exercised without a separate manual step.

use datalog_engine::{evaluate, query_answers, EvalOptions, Strategy};
use datalog_opt::{optimize, OptimizerConfig};

use crate::workloads::{edb_for, random_program};

/// Parallel determinism arm: evaluate one program at 1, 2 and 8 threads —
/// profiled and unprofiled — and require *byte* identity: every relation's
/// rows in insertion order (not just the answer set), the full stats
/// partition, provenance, and (walls aside, which legitimately vary) the
/// profile counters. Returns the number of disagreements found.
fn thread_differential(
    program: &datalog_ast::Program,
    instance: &datalog_engine::FactSet,
    mut complain: impl FnMut(&str),
) -> u64 {
    let mut failures = 0u64;
    for profile in [false, true] {
        let opts = |threads: usize| EvalOptions {
            threads,
            profile,
            record_provenance: true,
            ..EvalOptions::default()
        };
        let serial = evaluate(program, instance, &opts(1)).expect("serial evaluates");
        for threads in [2usize, 8] {
            let label = format!("threads={threads} profile={profile}");
            let par = match evaluate(program, instance, &opts(threads)) {
                Ok(out) => out,
                Err(e) => {
                    complain(&format!("{label}: evaluation failed: {e}"));
                    failures += 1;
                    continue;
                }
            };
            if par.stats != serial.stats {
                complain(&format!(
                    "{label}: stats diverge\n serial: {:?}\n parallel: {:?}",
                    serial.stats, par.stats
                ));
                failures += 1;
            }
            if par.provenance != serial.provenance {
                complain(&format!("{label}: provenance diverges"));
                failures += 1;
            }
            let rows_match = (0..serial.database.pred_count()).all(|p| {
                let id = datalog_engine::PredId(p as u32);
                serial
                    .database
                    .relation(id)
                    .iter()
                    .eq(par.database.relation(id).iter())
            });
            if serial.database.pred_count() != par.database.pred_count() || !rows_match {
                complain(&format!("{label}: databases diverge (row-id order)"));
                failures += 1;
            }
            let sp = serial.profile.as_ref().map(|p| p.counters_only());
            let pp = par.profile.as_ref().map(|p| p.counters_only());
            if sp != pp {
                complain(&format!("{label}: profile counters diverge"));
                failures += 1;
            }
        }
    }
    failures
}

/// Rounds and base seed of the fixed `--smoke` configuration. Small enough
/// for a debug-profile test run, deterministic so failures reproduce.
pub const SMOKE_ROUNDS: u64 = 25;
/// Base seed used by `--smoke`.
pub const SMOKE_BASE_SEED: u64 = 1;

/// Run `rounds` differential rounds starting at `base` seed; returns the
/// number of failures. When `verbose` is false, per-failure diagnostics are
/// suppressed (the caller only wants the count).
pub fn run_rounds(rounds: u64, base: u64, verbose: bool) -> u64 {
    let mut failures = 0u64;
    macro_rules! complain {
        ($($arg:tt)*) => {
            if verbose {
                eprintln!($($arg)*);
            }
        };
    }
    for round in 0..rounds {
        let seed = base.wrapping_add(round);
        let program = random_program(seed);
        if program.validate().is_err() {
            complain!("seed {seed}: generator produced an invalid program");
            failures += 1;
            continue;
        }
        let instance = edb_for(&program, 4, 12, seed ^ 0xabcdef);
        let reference = match query_answers(&program, &instance, &EvalOptions::default()) {
            Ok((a, _)) => a.rows,
            Err(e) => {
                complain!("seed {seed}: reference evaluation failed: {e}");
                failures += 1;
                continue;
            }
        };
        let check =
            |label: &str, rows: &std::collections::BTreeSet<Vec<datalog_ast::Value>>| -> u64 {
                if *rows != reference {
                    complain!(
                        "seed {seed}: {label} disagrees with reference\nprogram:\n{}",
                        program.to_text()
                    );
                    1
                } else {
                    0
                }
            };
        // Naive strategy.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .expect("naive evaluates");
        failures += check("naive", &a.rows);
        // Reordered joins.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                reorder_joins: true,
                ..EvalOptions::default()
            },
        )
        .expect("reordered evaluates");
        failures += check("reorder_joins", &a.rows);
        // Profiled evaluation must not change answers (and partitions the
        // global counters — checked in depth by the engine's tests).
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                profile: true,
                ..EvalOptions::default()
            },
        )
        .expect("profiled evaluates");
        failures += check("profiled", &a.rows);
        // Parallel determinism: byte-identical databases, stats partitions,
        // provenance, and profile counters at 1 vs 2 vs 8 threads.
        failures += thread_differential(&program, &instance, |msg| {
            complain!("seed {seed}: {msg}");
        });
        // Full optimizer (+ cut).
        match optimize(&program, &OptimizerConfig::default()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("optimized evaluates");
                failures += check("optimizer", &a.rows);
            }
            Err(e) => {
                complain!("seed {seed}: optimizer failed: {e}");
                failures += 1;
            }
        }
        // Aggressive optimizer (auto-fold).
        match optimize(&program, &OptimizerConfig::aggressive()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("aggressive evaluates");
                failures += check("aggressive-optimizer", &a.rows);
            }
            Err(e) => {
                complain!("seed {seed}: aggressive optimizer failed: {e}");
                failures += 1;
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fixed-seed smoke configuration must stay green: it is the same
    /// oracle the `fuzz --smoke` binary invocation runs.
    #[test]
    fn smoke_rounds_find_no_disagreements() {
        assert_eq!(run_rounds(SMOKE_ROUNDS, SMOKE_BASE_SEED, true), 0);
    }
}

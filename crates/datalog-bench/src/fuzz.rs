//! Differential fuzzing: random safe programs × random instances, evaluated
//! under every engine/optimizer configuration; any disagreement is a bug.
//!
//! The logic lives here (not in the `fuzz` binary) so the test suite can run
//! a small fixed-seed smoke round on every `cargo test`, keeping the
//! differential oracle exercised without a separate manual step.

use datalog_engine::{query_answers, EvalOptions, Strategy};
use datalog_opt::{optimize, OptimizerConfig};

use crate::workloads::{edb_for, random_program};

/// Rounds and base seed of the fixed `--smoke` configuration. Small enough
/// for a debug-profile test run, deterministic so failures reproduce.
pub const SMOKE_ROUNDS: u64 = 25;
/// Base seed used by `--smoke`.
pub const SMOKE_BASE_SEED: u64 = 1;

/// Run `rounds` differential rounds starting at `base` seed; returns the
/// number of failures. When `verbose` is false, per-failure diagnostics are
/// suppressed (the caller only wants the count).
pub fn run_rounds(rounds: u64, base: u64, verbose: bool) -> u64 {
    let mut failures = 0u64;
    macro_rules! complain {
        ($($arg:tt)*) => {
            if verbose {
                eprintln!($($arg)*);
            }
        };
    }
    for round in 0..rounds {
        let seed = base.wrapping_add(round);
        let program = random_program(seed);
        if program.validate().is_err() {
            complain!("seed {seed}: generator produced an invalid program");
            failures += 1;
            continue;
        }
        let instance = edb_for(&program, 4, 12, seed ^ 0xabcdef);
        let reference = match query_answers(&program, &instance, &EvalOptions::default()) {
            Ok((a, _)) => a.rows,
            Err(e) => {
                complain!("seed {seed}: reference evaluation failed: {e}");
                failures += 1;
                continue;
            }
        };
        let check =
            |label: &str, rows: &std::collections::BTreeSet<Vec<datalog_ast::Value>>| -> u64 {
                if *rows != reference {
                    complain!(
                        "seed {seed}: {label} disagrees with reference\nprogram:\n{}",
                        program.to_text()
                    );
                    1
                } else {
                    0
                }
            };
        // Naive strategy.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .expect("naive evaluates");
        failures += check("naive", &a.rows);
        // Reordered joins.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                reorder_joins: true,
                ..EvalOptions::default()
            },
        )
        .expect("reordered evaluates");
        failures += check("reorder_joins", &a.rows);
        // Profiled evaluation must not change answers (and partitions the
        // global counters — checked in depth by the engine's tests).
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                profile: true,
                ..EvalOptions::default()
            },
        )
        .expect("profiled evaluates");
        failures += check("profiled", &a.rows);
        // Full optimizer (+ cut).
        match optimize(&program, &OptimizerConfig::default()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("optimized evaluates");
                failures += check("optimizer", &a.rows);
            }
            Err(e) => {
                complain!("seed {seed}: optimizer failed: {e}");
                failures += 1;
            }
        }
        // Aggressive optimizer (auto-fold).
        match optimize(&program, &OptimizerConfig::aggressive()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("aggressive evaluates");
                failures += check("aggressive-optimizer", &a.rows);
            }
            Err(e) => {
                complain!("seed {seed}: aggressive optimizer failed: {e}");
                failures += 1;
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fixed-seed smoke configuration must stay green: it is the same
    /// oracle the `fuzz --smoke` binary invocation runs.
    #[test]
    fn smoke_rounds_find_no_disagreements() {
        assert_eq!(run_rounds(SMOKE_ROUNDS, SMOKE_BASE_SEED, true), 0);
    }
}

//! Shared scaffolding for the criterion benches (one bench target per
//! experiment; see `benches/`).

use criterion::Criterion;
use datalog_ast::Program;
use datalog_engine::{query_answers, EvalOptions, FactSet};

/// Register one `(variant, program)` timing under `group/variant/params`.
pub fn bench_variant(
    c: &mut Criterion,
    group: &str,
    variant: &str,
    params: &str,
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) {
    let mut g = c.benchmark_group(group);
    // Keep the full suite's wall time reasonable: these are macro-benches
    // whose per-iteration time is far above criterion's noise floor.
    g.sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    g.bench_function(format!("{variant}/{params}"), |b| {
        b.iter(|| {
            let (ans, _) = query_answers(program, input, opts).expect("bench program evaluates");
            criterion::black_box(ans.len())
        })
    });
    g.finish();
}

//! # datalog-bench
//!
//! Workload generators and the experiment harness that regenerates every
//! claim-backed table of the reproduction (DESIGN.md §5, EXPERIMENTS.md).
//!
//! *Why a harness and not just criterion?* The paper (PODS 1988, a theory
//! paper) reports no absolute numbers; its performance claims are about
//! machine-independent work — facts derived, duplicate-elimination hits,
//! join scans. The harness prints those counters next to wall time so the
//! *shape* of each claim (who wins, by how much, where it crosses over) is
//! visible and reproducible. The criterion benches in `benches/` time the
//! same program pairs for statistically careful wall-clock comparisons.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p datalog-bench --release --bin harness -- all
//! cargo run -p datalog-bench --release --bin harness -- e3 --json
//! ```

pub mod bench_support;
pub mod experiments;
pub mod fuzz;
pub mod measure;
pub mod workloads;

pub use experiments::{all, by_id};
pub use measure::{measure, ExperimentResult, Measurement};

//! Measurement plumbing: run a program on an EDB several times, collect
//! engine statistics and median wall time, and render aligned tables.

use std::time::{Duration, Instant};

use datalog_ast::Program;
use datalog_engine::{query_answers, EvalOptions, EvalStats};
use serde::Serialize;

/// One measured row of an experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Variant label, e.g. `original` / `optimized`.
    pub label: String,
    /// Workload parameters, e.g. `chain n=1024`.
    pub params: String,
    /// Number of distinct query answers.
    pub answers: usize,
    /// Facts derived by the fixpoint.
    pub facts: u64,
    /// Duplicate-elimination hits.
    pub duplicates: u64,
    /// Tuples scanned across all joins.
    pub scanned: u64,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Rules retired by the boolean cut.
    pub retired: u64,
    /// Median wall time in microseconds.
    pub wall_us: u128,
}

/// A full experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `e1`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper anchor + expectation notes, printed above the table.
    pub notes: Vec<String>,
    /// Table rows.
    pub rows: Vec<Measurement>,
}

impl ExperimentResult {
    /// New empty result.
    pub fn new(id: &str, title: &str) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        let headers = [
            "params", "variant", "answers", "facts", "dups", "scanned", "iters", "retired",
            "wall_us",
        ];
        let mut cells: Vec<[String; 9]> = vec![headers.map(String::from)];
        for r in &self.rows {
            cells.push([
                r.params.clone(),
                r.label.clone(),
                r.answers.to_string(),
                r.facts.to_string(),
                r.duplicates.to_string(),
                r.scanned.to_string(),
                r.iterations.to_string(),
                r.retired.to_string(),
                r.wall_us.to_string(),
            ]);
        }
        let widths: Vec<usize> = (0..9)
            .map(|c| cells.iter().map(|row| row[c].len()).max().unwrap_or(0))
            .collect();
        for (i, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
            if i == 0 {
                let _ = writeln!(out, "  {}", "-".repeat(widths.iter().sum::<usize>() + 16));
            }
        }
        out
    }
}

/// Evaluate `program` on `input` `runs` times; record stats from the first
/// run (they are deterministic) and the median wall time.
pub fn measure(
    result: &mut ExperimentResult,
    label: &str,
    params: &str,
    program: &Program,
    input: &datalog_engine::FactSet,
    opts: &EvalOptions,
    runs: usize,
) -> EvalStats {
    let mut walls: Vec<Duration> = Vec::with_capacity(runs.max(1));
    let mut stats = EvalStats::default();
    let mut answers = 0;
    for i in 0..runs.max(1) {
        let t0 = Instant::now();
        let (ans, st) = query_answers(program, input, opts).expect("experiment program evaluates");
        walls.push(t0.elapsed());
        if i == 0 {
            stats = st;
            answers = ans.len();
        }
    }
    walls.sort();
    let median = walls[walls.len() / 2];
    result.rows.push(Measurement {
        label: label.into(),
        params: params.into(),
        answers,
        facts: stats.facts_derived,
        duplicates: stats.duplicates,
        scanned: stats.tuples_scanned,
        iterations: stats.iterations,
        retired: stats.rules_retired,
        wall_us: median.as_micros(),
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::chain;
    use datalog_ast::parse_program;

    #[test]
    fn measure_fills_rows() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        let mut r = ExperimentResult::new("t", "test");
        r.note("a note");
        let stats = measure(&mut r, "orig", "chain n=8", &p, &chain("p", 8), &EvalOptions::default(), 3);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].answers, 36);
        assert!(stats.facts_derived >= 36);
        let table = r.to_table();
        assert!(table.contains("chain n=8"));
        assert!(table.contains("a note"));
        assert!(table.contains("answers"));
    }
}

//! Measurement plumbing: run a program on an EDB several times, collect
//! engine statistics and median wall time, and render aligned tables.

use std::time::{Duration, Instant};

use datalog_ast::Program;
use datalog_engine::{query_answers, query_answers_full, EvalOptions, EvalStats};
use datalog_trace::{Json, RuleProfile};

/// One measured row of an experiment table.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Variant label, e.g. `original` / `optimized`.
    pub label: String,
    /// Workload parameters, e.g. `chain n=1024`.
    pub params: String,
    /// Number of distinct query answers.
    pub answers: usize,
    /// Facts derived by the fixpoint.
    pub facts: u64,
    /// Duplicate-elimination hits.
    pub duplicates: u64,
    /// Tuples scanned across all joins.
    pub scanned: u64,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Rules retired by the boolean cut.
    pub retired: u64,
    /// Median wall time in microseconds.
    pub wall_us: u128,
    /// Per-rule profiles from one extra *untimed* profiled run (the timed
    /// runs always execute with profiling off, so the medians stay clean).
    pub rules: Vec<RuleProfile>,
}

impl Measurement {
    /// JSON object for export.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("label", self.label.as_str())
            .with("params", self.params.as_str())
            .with("answers", self.answers)
            .with("facts", self.facts)
            .with("duplicates", self.duplicates)
            .with("scanned", self.scanned)
            .with("iterations", self.iterations)
            .with("retired", self.retired)
            .with("wall_us", self.wall_us as u64)
            .with(
                "rules",
                Json::Arr(self.rules.iter().map(RuleProfile::to_json).collect()),
            )
    }
}

/// A full experiment result.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `e1`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper anchor + expectation notes, printed above the table.
    pub notes: Vec<String>,
    /// The host's available parallelism at measurement time. Recorded in
    /// the exported JSON so archived numbers are interpretable: wall times
    /// from a 1-core host say nothing about parallel speedup, and a
    /// multi-core re-record is distinguishable from the original.
    pub host_parallelism: usize,
    /// Table rows.
    pub rows: Vec<Measurement>,
}

impl ExperimentResult {
    /// New empty result.
    pub fn new(id: &str, title: &str) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            rows: Vec::new(),
        }
    }

    /// Add a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// JSON object for export.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with("host_parallelism", self.host_parallelism as u64)
            .with(
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::from(n.as_str())).collect()),
            )
            .with(
                "rows",
                Json::Arr(self.rows.iter().map(Measurement::to_json).collect()),
            )
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        let headers = [
            "params", "variant", "answers", "facts", "dups", "scanned", "iters", "retired",
            "wall_us",
        ];
        let mut cells: Vec<[String; 9]> = vec![headers.map(String::from)];
        for r in &self.rows {
            cells.push([
                r.params.clone(),
                r.label.clone(),
                r.answers.to_string(),
                r.facts.to_string(),
                r.duplicates.to_string(),
                r.scanned.to_string(),
                r.iterations.to_string(),
                r.retired.to_string(),
                r.wall_us.to_string(),
            ]);
        }
        let widths: Vec<usize> = (0..9)
            .map(|c| cells.iter().map(|row| row[c].len()).max().unwrap_or(0))
            .collect();
        for (i, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
            if i == 0 {
                let _ = writeln!(out, "  {}", "-".repeat(widths.iter().sum::<usize>() + 16));
            }
        }
        out
    }
}

/// Evaluate `program` on `input` `runs` times; record stats from the first
/// run (they are deterministic) and the median wall time. One extra
/// *untimed* run with profiling enabled supplies the per-rule profiles, so
/// the timed runs measure the production (profile-off) configuration.
pub fn measure(
    result: &mut ExperimentResult,
    label: &str,
    params: &str,
    program: &Program,
    input: &datalog_engine::FactSet,
    opts: &EvalOptions,
    runs: usize,
) -> EvalStats {
    let profiled_opts = EvalOptions {
        profile: true,
        ..opts.clone()
    };
    let (ans, out) =
        query_answers_full(program, input, &profiled_opts).expect("experiment program evaluates");
    let stats = out.stats;
    let answers = ans.len();
    let rules = out.profile.map(|p| p.rules).unwrap_or_default();
    let mut walls: Vec<Duration> = Vec::with_capacity(runs.max(1));
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let _ = query_answers(program, input, opts).expect("experiment program evaluates");
        walls.push(t0.elapsed());
    }
    walls.sort();
    let median = walls[walls.len() / 2];
    result.rows.push(Measurement {
        label: label.into(),
        params: params.into(),
        answers,
        facts: stats.facts_derived,
        duplicates: stats.duplicates,
        scanned: stats.tuples_scanned,
        iterations: stats.iterations,
        retired: stats.rules_retired,
        wall_us: median.as_micros(),
        rules,
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::chain;
    use datalog_ast::parse_program;

    #[test]
    fn measure_fills_rows() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        let mut r = ExperimentResult::new("t", "test");
        r.note("a note");
        let stats = measure(
            &mut r,
            "orig",
            "chain n=8",
            &p,
            &chain("p", 8),
            &EvalOptions::default(),
            3,
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].answers, 36);
        assert!(stats.facts_derived >= 36);
        let table = r.to_table();
        assert!(table.contains("chain n=8"));
        assert!(table.contains("a note"));
        assert!(table.contains("answers"));
    }

    #[test]
    fn measure_attaches_per_rule_profiles() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        let mut r = ExperimentResult::new("t", "test");
        let stats = measure(
            &mut r,
            "orig",
            "chain n=8",
            &p,
            &chain("p", 8),
            &EvalOptions::default(),
            1,
        );
        let rules = &r.rows[0].rules;
        assert_eq!(rules.len(), 2);
        // The per-rule partition covers the global counters exactly.
        assert_eq!(
            rules.iter().map(|rp| rp.derivations).sum::<u64>(),
            stats.derivations
        );
        let j = r.to_json().to_string();
        assert!(j.contains("\"rules\""), "{j}");
        assert!(j.contains("\"wall_ns\""), "{j}");
        assert!(r.host_parallelism >= 1);
        assert!(j.contains("\"host_parallelism\""), "{j}");
    }
}

//! The experiment suite (E1–E12). See DESIGN.md §5 for the index mapping
//! each experiment to its paper anchor, and EXPERIMENTS.md for recorded
//! results and shape expectations.
//!
//! Every experiment compares *the same answers computed with less work*:
//! rows report facts derived, duplicate hits, tuples scanned, iterations
//! and median wall time for each program variant on each workload.

use datalog_ast::{parse_program, Program};
use datalog_engine::{EvalOptions, Strategy};
use datalog_magic::magic_rewrite;
use datalog_opt::paper;
use datalog_opt::{optimize, OptimizerConfig};

use crate::measure::{measure, ExperimentResult};
use crate::workloads;

fn parse(src: &str) -> Program {
    parse_program(src)
        .expect("experiment program parses")
        .program
}

fn optimized(src: &str) -> Program {
    optimize(&parse(src), &OptimizerConfig::default())
        .expect("experiment program optimizes")
        .program
}

const RUNS: usize = 3;

/// E1 — Examples 1/3: projection pushing turns binary transitive closure
/// into unary reachability.
pub fn e1(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e1",
        "projection pushing: binary TC vs unary reachability (Examples 1/3/4)",
    );
    r.note("expect: optimized derives O(n) facts vs O(n^2); gap grows with n");
    let original = parse(paper::EXAMPLE_1);
    let opt = optimized(paper::EXAMPLE_1);
    r.note(format!(
        "optimized program: {}",
        opt.to_text().replace('\n', "  ")
    ));
    let sizes: &[i64] = if quick {
        &[32, 64]
    } else {
        &[128, 256, 512, 1024]
    };
    for &n in sizes {
        let edb = workloads::chain("p", n);
        let params = format!("chain n={n}");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "optimized",
            &params,
            &opt,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    let gsizes: &[(i64, usize)] = if quick {
        &[(64, 128)]
    } else {
        &[(256, 512), (512, 1024)]
    };
    for &(n, m) in gsizes {
        let edb = workloads::random_digraph("p", n, m, 42);
        let params = format!("rand n={n} m={m}");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "optimized",
            &params,
            &opt,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E2 — Example 2 / §3.1: boolean-cut retirement of existential subqueries.
pub fn e2(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e2",
        "boolean cut: existential subquery fenced behind a boolean (Example 2, section 3.1)",
    );
    r.note(
        "expect: original rescans `certified` per binding; optimized proves b1 once and retires it",
    );
    const SRC: &str = "q(X, Y) :- sub(X, Z), q(Z, Y), certified(W).\n\
                       q(X, Y) :- sub(X, Y), certified(W).\n\
                       ?- q(X, _).";
    let original = parse(SRC);
    let opt = optimized(SRC);
    let cut_opts = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    let certs: &[i64] = if quick {
        &[100, 1000]
    } else {
        &[100, 1000, 10_000, 100_000]
    };
    for &c in certs {
        let mut edb = workloads::bom(if quick { 64 } else { 256 }, 2, c);
        edb.extend(&workloads::chain("unused", 0));
        let params = format!("bom certified={c}");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "optimized+cut",
            &params,
            &opt,
            &edb,
            &cut_opts,
            RUNS,
        );
    }
    r
}

/// E3 — Examples 5/6 / §4: uniform query equivalence eliminates the
/// recursion that uniform equivalence cannot touch.
pub fn e3(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e3",
        "uniform query equivalence: left-recursive TC collapses to its exit rule (Examples 5/6)",
    );
    r.note("expect: uniform-only keeps all four adorned rules; UQE leaves one non-recursive rule");
    const SRC: &str = "a(X, Y) :- a(X, Z), p(Z, Y).\n\
                       a(X, Y) :- p(X, Y).\n\
                       ?- a(X, _).";
    let original = parse(SRC);
    let full = optimized(SRC);
    let uniform_only = {
        let mut cfg = OptimizerConfig::default();
        cfg.freeze.uqe = false;
        cfg.summary.add_cover_unit_rules = false;
        optimize(&original, &cfg).unwrap().program
    };
    r.note(format!(
        "uniform-only: {} rule(s); full: {} rule(s)",
        uniform_only.rules.len(),
        full.rules.len()
    ));
    let sizes: &[i64] = if quick {
        &[32, 64]
    } else {
        &[128, 256, 512, 1024]
    };
    for &n in sizes {
        let edb = workloads::chain("p", n);
        let params = format!("chain n={n}");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "uniform-only",
            &params,
            &uniform_only,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "uqe-full",
            &params,
            &full,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E4 — Examples 7/8/10: summary-based deletion (Lemmas 5.1/5.3,
/// Algorithms 5.1/5.2) on the paper's own programs.
pub fn e4(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e4",
        "summary-based rule deletion on the paper's programs (Examples 7/8/10)",
    );
    let n: i64 = if quick { 16 } else { 64 };
    let per: usize = if quick { 64 } else { 512 };
    for name in ["example_7", "example_8", "example_10"] {
        let original = paper::parse_example(name).unwrap();
        let out = optimize(&original, &OptimizerConfig::default()).unwrap();
        r.note(format!(
            "{name}: {} -> {} rules (weakest level {})",
            out.report.rules_before,
            out.report.rules_after,
            out.report.weakest_level()
        ));
        let edb = workloads::edb_for(&original, n, per, 11);
        let params = format!("{name} n={n} per_rel={per}");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "optimized",
            &params,
            &out.program,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E5 — Example 12 / §6: the literal-moving transformation reduces the
/// recursive predicate's arity from 3 to 2.
pub fn e5(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e5",
        "Example 12: moving c(Z) out of the recursion (arity 3 -> 2)",
    );
    r.note("expect: transformed scans c once per base triple instead of once per recursive step");
    let adorned = parse(paper::EXAMPLE_12_ADORNED);
    let transformed = parse(paper::EXAMPLE_12_TRANSFORMED);
    let shapes: &[(i64, i64, f64)] = if quick {
        &[(16, 8, 0.5)]
    } else {
        &[(64, 32, 1.0), (64, 32, 0.5), (64, 32, 0.1), (256, 32, 0.5)]
    };
    for &(levels, width, sel) in shapes {
        let edb = workloads::updown(levels, width, sel, 5);
        let params = format!("updown levels={levels} width={width} c_sel={sel}");
        measure(
            &mut r,
            "adorned(3-ary)",
            &params,
            &adorned,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "transformed(2-ary)",
            &params,
            &transformed,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E6 — §1/§6 orthogonality: existential optimization composes with Magic
/// Sets on a bound existential query.
pub fn e6(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e6",
        "orthogonality: existential optimization x Magic Sets (bound existential query)",
    );
    r.note("expect: each rewriting helps alone; the composition does least work");
    const SRC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                       a(X, Y) :- p(X, Y).\n\
                       ?- a(0, _).";
    let original = parse(SRC);
    let magic_only = magic_rewrite(&original).unwrap().program;
    let exist_only = optimized(SRC);
    let both = magic_rewrite(&exist_only).unwrap().program;
    let sizes: &[i64] = if quick { &[64] } else { &[256, 512, 1024] };
    for &n in sizes {
        // Chain starting at n/2 so magic can skip half the graph; query
        // binds node 0 which reaches everything -> worst case for magic,
        // so also use a random graph where 0 reaches a fraction.
        let edb = workloads::random_digraph("p", n, (n as usize) * 2, 9);
        let params = format!("rand n={n} m={}", n * 2);
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "magic",
            &params,
            &magic_only,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "existential",
            &params,
            &exist_only,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "both",
            &params,
            &both,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// Build a TC program whose predicates carry `k` extra payload columns that
/// the query does not need.
fn padded_tc(k: usize) -> String {
    let es: Vec<String> = (1..=k).map(|i| format!("E{i}")).collect();
    let fs: Vec<String> = (1..=k).map(|i| format!("F{i}")).collect();
    let tail = |v: &[String]| {
        if v.is_empty() {
            String::new()
        } else {
            format!(", {}", v.join(", "))
        }
    };
    format!(
        "a(X, Y{e}) :- p(X, Z{f}), a(Z, Y{e}).\n\
         a(X, Y{e}) :- p(X, Y{e}).\n\
         ?- a(X, _{w}).",
        e = tail(&es),
        f = tail(&fs),
        w = ", _".repeat(k),
    )
}

/// E7 — §3.2 scaling: the cost of carrying `k` dead columns through a
/// recursion, vs projecting them away.
pub fn e7(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e7",
        "arity scaling: k dead payload columns through TC vs projected (section 3.2)",
    );
    r.note("expect: original cost grows with k (wider tuples, more dedup); optimized is flat (always unary)");
    let ks: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 3, 4] };
    let n: i64 = if quick { 64 } else { 256 };
    for &k in ks {
        let src = padded_tc(k);
        let original = parse(&src);
        let opt = optimized(&src);
        let edb = workloads::padded_edges("p", n, k, 3);
        let params = format!("chain n={n} k={k}");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "optimized",
            &params,
            &opt,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E8 — Theorem 3.3: regular chain programs admit a monadic equivalent;
/// the palindromic program does not (not certifiably regular).
pub fn e8(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e8",
        "Theorem 3.3 boundary: monadic rewriting for regular chain grammars",
    );
    const RIGHT: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                         a(X, Y) :- p(X, Y).\n\
                         ?- a(X, Y).";
    const PAL: &str = "s(X, Y) :- up(X, A), s(A, B), dn(B, Y).\n\
                       s(X, Y) :- up(X, A), flat(A, B), dn(B, Y).\n\
                       ?- s(X, Y).";
    use datalog_grammar::regular::{monadic_equivalent, KeptArg};
    let right = parse(RIGHT);
    let rewrite = monadic_equivalent(&right, KeptArg::First)
        .unwrap()
        .expect("right-linear TC is regular");
    r.note(format!(
        "right-linear TC: regular, DFA states = {}; palindrome grammar: {}",
        rewrite.dfa_states,
        match monadic_equivalent(&parse(PAL), KeptArg::First).unwrap() {
            Some(_) => "unexpectedly regular?!",
            None => "not certifiably regular (monadic rewrite refused)",
        }
    ));
    // Compare π1(a) via the binary program vs the synthesized monadic one.
    let mut projected = right.clone();
    projected.query = Some(datalog_ast::Query::new(
        datalog_ast::parse_atom("a(X, _)").unwrap(),
    ));
    let sizes: &[i64] = if quick { &[64] } else { &[256, 512, 1024] };
    for &n in sizes {
        let edb = workloads::chain("p", n);
        let params = format!("chain n={n}");
        measure(
            &mut r,
            "binary-TC",
            &params,
            &projected,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "monadic(Thm3.3)",
            &params,
            &rewrite.program,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E9 — substrate sanity (§1.1 bottom-up model): naive vs semi-naive.
pub fn e9(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new("e9", "engine baseline: naive vs semi-naive fixpoint");
    r.note("expect: semi-naive does asymptotically fewer derivations; identical answers");
    const SRC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                       a(X, Y) :- p(X, Y).\n\
                       ?- a(X, Y).";
    let p = parse(SRC);
    let naive = EvalOptions {
        strategy: Strategy::Naive,
        ..EvalOptions::default()
    };
    let sizes: &[i64] = if quick { &[32] } else { &[64, 128, 256] };
    for &n in sizes {
        let edb = workloads::chain("p", n);
        let params = format!("chain n={n}");
        measure(&mut r, "naive", &params, &p, &edb, &naive, RUNS);
        measure(
            &mut r,
            "semi-naive",
            &params,
            &p,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    let gr: &[(i64, usize)] = if quick {
        &[(48, 96)]
    } else {
        &[(128, 256), (192, 768)]
    };
    for &(n, m) in gr {
        let edb = workloads::random_digraph("p", n, m, 21);
        let params = format!("rand n={n} m={m}");
        measure(&mut r, "naive", &params, &p, &edb, &naive, RUNS);
        measure(
            &mut r,
            "semi-naive",
            &params,
            &p,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
    }
    r
}

/// E10 — pipeline ablation: cumulative phases on the flagship program.
pub fn e10(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e10",
        "ablation: adorn-only / +components / +projection / +deletion (flagship program)",
    );
    const SRC: &str = "query(X) :- a(X, Y), audit(W).\n\
                       a(X, Y) :- p(X, Z), a(Z, Y).\n\
                       a(X, Y) :- p(X, Y).\n\
                       ?- query(X).";
    let original = parse(SRC);
    let stage = |components: bool, projection: bool, deletion: bool| -> Program {
        let mut cfg = OptimizerConfig::rewrite_only();
        cfg.components = components;
        cfg.projection = projection;
        if deletion {
            cfg = OptimizerConfig::default();
        }
        optimize(&original, &cfg).unwrap().program
    };
    // NOTE: projection=false forbids components from dangling heads; the
    // adorn-only and components-only stages are therefore conservative.
    let adorn_only = stage(false, false, false);
    let components_only = stage(true, false, false);
    let projected = stage(true, true, false);
    let full = stage(true, true, true);
    r.note(format!(
        "rules: original={} adorned={} +components={} +projection={} full={}",
        original.rules.len(),
        adorn_only.rules.len(),
        components_only.rules.len(),
        projected.rules.len(),
        full.rules.len()
    ));
    let sizes: &[i64] = if quick { &[64] } else { &[256, 512] };
    let cut = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    for &n in sizes {
        let mut edb = workloads::chain("p", n);
        edb.extend(&workloads::unary("audit", 128));
        let params = format!("chain n={n} + audit");
        measure(
            &mut r,
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "adorned",
            &params,
            &adorn_only,
            &edb,
            &EvalOptions::default(),
            RUNS,
        );
        measure(
            &mut r,
            "+components",
            &params,
            &components_only,
            &edb,
            &cut,
            RUNS,
        );
        measure(&mut r, "+projection", &params, &projected, &edb, &cut, RUNS);
        measure(&mut r, "full", &params, &full, &edb, &cut, RUNS);
    }
    r
}

/// E11 — the query server: prepared-form cache vs the cold optimizer
/// path, answer memoization, and throughput at 1/4/8 concurrent clients.
///
/// Engine counters (facts/dups/scanned/iters) do not apply to the wire
/// measurements and are reported as 0; `wall_us` is the client-observed
/// median round trip, except for the `throughput` rows where it is the
/// total wall time of the whole run (queries/sec goes in the notes).
pub fn e11(quick: bool) -> ExperimentResult {
    use datalog_server::{Client, Server, ServerConfig};
    use std::time::Instant;

    let mut r = ExperimentResult::new(
        "e11",
        "server: prepared-query cache vs cold optimizer; qps at 1/4/8 clients",
    );
    r.note("expect: warm-prepared ≪ cold-miss (skips §2 adornment + §3 pipeline);");
    r.note("answers-memo ≪ warm-prepared (skips evaluation too); qps holds under concurrency");

    let n: i64 = if quick { 64 } else { 256 };
    let per_client: usize = if quick { 50 } else { 200 };
    let repeats: usize = if quick { 20 } else { 60 };

    // Rules + a chain EDB, served from a file exactly as a client would.
    let mut src = String::from("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n");
    for i in 0..n {
        src.push_str(&format!("p({i}, {}).\n", i + 1));
    }
    let dir = std::env::temp_dir().join(format!("datalog-bench-e11-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for e11");
    let file = dir.join("chain.dl");
    std::fs::write(&file, &src).expect("write e11 workload");
    let path = file.to_str().expect("utf-8 temp path").to_string();

    let median_us = |mut walls: Vec<u128>| -> u128 {
        walls.sort();
        walls[walls.len() / 2]
    };
    let row = |r: &mut ExperimentResult, label: &str, params: &str, answers: usize, us: u128| {
        r.rows.push(crate::measure::Measurement {
            label: label.into(),
            params: params.into(),
            answers,
            facts: 0,
            duplicates: 0,
            scanned: 0,
            iterations: 0,
            retired: 0,
            wall_us: us,
            rules: Vec::new(),
        });
    };
    let params = format!("chain n={n}");

    // Cold misses: the first sighting of each adornment form pays the full
    // optimizer (visible as PhaseEvents in TRACE); fresh server per sample
    // so every form is genuinely cold.
    {
        let mut walls = Vec::new();
        let mut answers = 0;
        for _ in 0..3 {
            let server = Server::spawn(&ServerConfig::default()).expect("bind");
            let mut c = Client::connect(server.addr()).expect("connect");
            assert!(c.load(&path).expect("load").ok);
            for q in ["?- a(X, _).", "?- a(X, Y).", "?- a(_, Y)."] {
                let t0 = Instant::now();
                let resp = c.query(q).expect("query");
                walls.push(t0.elapsed().as_micros());
                assert_eq!(resp.get("cache"), Some("miss"), "{q} was not cold");
                answers = resp
                    .get("answers")
                    .and_then(|a| a.parse().ok())
                    .unwrap_or(0);
            }
            c.shutdown().expect("shutdown");
            server.join();
        }
        let p = format!("{params} first-seen form");
        row(&mut r, "cold-miss", &p, answers, median_us(walls));
    }

    // Residency off: E11 measures prepared-form reuse and answer
    // memoization in isolation; the resident frontier is E14's subject.
    let server = Server::spawn(&ServerConfig {
        threads: 8,
        resident_forms: 0,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let mut c = Client::connect(addr).expect("connect");
    assert!(c.load(&path).expect("load").ok);
    assert_eq!(
        c.query("?- a(X, _).").expect("warm").get("cache"),
        Some("miss")
    );

    // Warm prepared: same form, rotating constants — the optimized program
    // is reused, only evaluation runs (the answer slot misses on purpose).
    {
        let mut walls = Vec::new();
        let mut answers = 0;
        for i in 0..repeats {
            let q = format!("?- a({}, _).", i as i64 % n);
            let t0 = Instant::now();
            let resp = c.query(&q).expect("query");
            walls.push(t0.elapsed().as_micros());
            assert_eq!(resp.get("cache"), Some("hit"), "{q} missed the cache");
            answers = resp
                .get("answers")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0);
        }
        let p = format!("{params} rotating const");
        row(&mut r, "warm-prepared", &p, answers, median_us(walls));
    }

    // Answer memoization: the identical query text is served straight from
    // the watermark-validated answer slot.
    {
        let mut walls = Vec::new();
        let mut answers = 0;
        let _ = c.query("?- a(X, _).").expect("prime");
        for _ in 0..repeats {
            let t0 = Instant::now();
            let resp = c.query("?- a(X, _).").expect("query");
            walls.push(t0.elapsed().as_micros());
            assert_eq!(resp.get("cache"), Some("answers"));
            answers = resp
                .get("answers")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0);
        }
        let p = format!("{params} repeat text");
        row(&mut r, "answers-memo", &p, answers, median_us(walls));
    }

    // Throughput: C clients hammer the warm prepared form concurrently.
    for clients in [1usize, 4, 8] {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for i in 0..per_client {
                        let q = format!("?- a({}, _).", (tid * per_client + i) as i64 % n);
                        let resp = c.query(&q).expect("query");
                        assert!(resp.ok, "{}", resp.error);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let total = t0.elapsed();
        let qps = (clients * per_client) as f64 / total.as_secs_f64();
        r.note(format!("clients={clients}: {qps:.0} queries/sec"));
        row(
            &mut r,
            "throughput",
            &format!("clients={clients} q={per_client} each"),
            0,
            total.as_micros(),
        );
    }

    c.shutdown().expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
    r
}

/// E12 — scaling: the parallel semi-naive fan-out at 1/2/4/8 threads on
/// recursive workloads (transitive closure over a dense digraph, BOM
/// subpart reachability). Every thread count computes byte-identical
/// results; only wall time may move, and only as far as the host's cores
/// allow — the recorded `host parallelism` note is the ceiling.
pub fn e12(quick: bool) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e12",
        "scaling: parallel semi-naive at 1/2/4/8 threads (frozen-index fan-out)",
    );
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    r.note(format!(
        "host parallelism: {host} (speedup is bounded by this; 1 core => ~1x everywhere)"
    ));
    r.note("expect: identical answers/facts/scans at every thread count (determinism);");
    r.note("wall time drops on iteration-heavy workloads as threads approach host cores");

    const TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                      a(X, Y) :- p(X, Y).\n\
                      ?- a(X, _).";
    const BOM: &str = "reach(X, Y) :- sub(X, Z), reach(Z, Y).\n\
                       reach(X, Y) :- sub(X, Y).\n\
                       ?- reach(X, _).";
    let (n, m, parts) = if quick {
        (96i64, 384usize, 1024i64)
    } else {
        (384, 1536, 16384)
    };
    let cases = [
        (
            parse(TC),
            workloads::random_digraph("p", n, m, 7),
            format!("tc digraph n={n} m={m}"),
        ),
        (
            parse(BOM),
            workloads::bom(parts, 4, 0),
            format!("bom parts={parts} fanout=4"),
        ),
    ];
    for (program, edb, params) in &cases {
        let mut base_us: u128 = 0;
        for threads in [1usize, 2, 4, 8] {
            measure(
                &mut r,
                &format!("threads={threads}"),
                params,
                program,
                edb,
                &EvalOptions {
                    threads,
                    ..EvalOptions::default()
                },
                RUNS,
            );
            let wall = r.rows.last().expect("measure pushed a row").wall_us;
            if threads == 1 {
                base_us = wall;
            } else if wall > 0 {
                r.note(format!(
                    "{params}: threads={threads} speedup {:.2}x",
                    base_us as f64 / wall as f64
                ));
            }
        }
    }
    r
}

/// E13 — telemetry overhead: the identical server workload with the
/// metrics registry enabled (the default) vs the no-op baseline
/// (`metrics: false` — histograms reduce to one branch, counters still
/// count). Reported per client count (1/4/8): qps and the client-observed
/// p99 round trip. The acceptance budget is <2% qps regression with
/// instrumentation on.
///
/// `wall_us` per row is the total wall time of the run; qps and p99 go in
/// the notes (engine counters do not apply to wire measurements).
pub fn e13(quick: bool) -> ExperimentResult {
    use datalog_server::{Client, Server, ServerConfig};
    use std::time::Instant;

    let mut r = ExperimentResult::new(
        "e13",
        "telemetry overhead: metrics on vs no-op registry; qps + p99 at 1/4/8 clients",
    );
    r.note("expect: <2% qps regression with the registry enabled (the always-on budget);");
    r.note("per request the cost is a few relaxed fetch_adds + two Instant::now() per span");

    let n: i64 = if quick { 64 } else { 256 };
    let per_client: usize = if quick { 100 } else { 400 };

    let mut src = String::from("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n");
    for i in 0..n {
        src.push_str(&format!("p({i}, {}).\n", i + 1));
    }
    let dir = std::env::temp_dir().join(format!("datalog-bench-e13-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for e13");
    let file = dir.join("chain.dl");
    std::fs::write(&file, &src).expect("write e13 workload");
    let path = file.to_str().expect("utf-8 temp path").to_string();

    let row = |r: &mut ExperimentResult, label: &str, params: &str, us: u128| {
        r.rows.push(crate::measure::Measurement {
            label: label.into(),
            params: params.into(),
            answers: 0,
            facts: 0,
            duplicates: 0,
            scanned: 0,
            iterations: 0,
            retired: 0,
            wall_us: us,
            rules: Vec::new(),
        });
    };

    // One run: a server with the given registry mode, C clients hammering
    // the warm prepared form with rotating constants (the answer slot
    // misses on purpose, so every request records the full span set).
    // Returns (total wall, p99 of per-request round trips).
    let run = |enabled: bool, clients: usize| -> (std::time::Duration, u128) {
        let server = Server::spawn(&ServerConfig {
            threads: 8,
            metrics: enabled,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let mut c = Client::connect(addr).expect("connect");
        assert!(c.load(&path).expect("load").ok);
        // Warm the form cache so every timed request takes the same path.
        assert!(c.query("?- a(0, _).").expect("warm").ok);
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut walls = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let q = format!("?- a({}, _).", (tid * per_client + i) as i64 % n);
                        let t = Instant::now();
                        let resp = c.query(&q).expect("query");
                        walls.push(t.elapsed().as_micros());
                        assert!(resp.ok, "{}", resp.error);
                    }
                    walls
                })
            })
            .collect();
        let mut walls: Vec<u128> = Vec::new();
        for h in handles {
            walls.extend(h.join().expect("client thread"));
        }
        let total = t0.elapsed();
        walls.sort();
        let p99 = walls[(walls.len() * 99) / 100 - 1];
        c.shutdown().expect("shutdown");
        server.join();
        (total, p99)
    };

    let trials: usize = if quick { 2 } else { 3 };
    for clients in [1usize, 4, 8] {
        let queries = (clients * per_client) as f64;
        // Interleave the two modes and keep each mode's best trial: on a
        // shared host, comparing peak capability is what isolates the
        // instrumentation cost from scheduler noise.
        let (mut off_best, mut on_best) = (
            None::<(std::time::Duration, u128)>,
            None::<(std::time::Duration, u128)>,
        );
        for _ in 0..trials {
            let off = run(false, clients);
            let on = run(true, clients);
            if off_best.map_or(true, |b| off.0 < b.0) {
                off_best = Some(off);
            }
            if on_best.map_or(true, |b| on.0 < b.0) {
                on_best = Some(on);
            }
        }
        let (off_total, off_p99) = off_best.expect("at least one trial");
        let (on_total, on_p99) = on_best.expect("at least one trial");
        let qps_off = queries / off_total.as_secs_f64();
        let qps_on = queries / on_total.as_secs_f64();
        let overhead = (qps_off - qps_on) / qps_off * 100.0;
        r.note(format!(
            "clients={clients}: enabled {qps_on:.0} qps p99={on_p99}us; \
             no-op {qps_off:.0} qps p99={off_p99}us; qps delta {overhead:+.2}% \
             (best of {trials})"
        ));
        let params = format!("clients={clients} q={per_client} each");
        row(&mut r, "metrics-enabled", &params, on_total.as_micros());
        row(&mut r, "metrics-noop", &params, off_total.as_micros());
    }

    let _ = std::fs::remove_dir_all(&dir);
    r
}

/// E14 — incremental serving: an ingest-heavy mix (every client alternates
/// one FACT with one query on the warm form) served from the resident
/// semi-naive frontier (`resident_forms: 8`, the default) vs the
/// invalidate-and-recompute baseline (`resident_forms: 0`). Reported per
/// client count (1/4/8): query qps and the client-observed p99 round trip.
/// Answers are byte-identical either way — the delta propagation only
/// changes *when* the fixpoint work happens, never what it produces.
///
/// `wall_us` per row is the total wall time of the run; qps and p99 go in
/// the notes (engine counters do not apply to wire measurements).
pub fn e14(quick: bool) -> ExperimentResult {
    use datalog_server::{Client, Server, ServerConfig};
    use std::time::Instant;

    let mut r = ExperimentResult::new(
        "e14",
        "incremental serving: resident delta propagation vs invalidate-recompute \
         under an ingest-heavy mix; qps + p99 at 1/4/8 clients",
    );
    r.note("expect: resident wins grow with the saturated database size — each ingested");
    r.note("fact costs one small delta propagation instead of a full recomputation per query");

    let n: i64 = if quick { 64 } else { 256 };
    let per_client: usize = if quick { 25 } else { 100 };

    let mut src = String::from("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n");
    for i in 0..n {
        src.push_str(&format!("p({i}, {}).\n", i + 1));
    }
    let dir = std::env::temp_dir().join(format!("datalog-bench-e14-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for e14");
    let file = dir.join("chain.dl");
    std::fs::write(&file, &src).expect("write e14 workload");
    let path = file.to_str().expect("utf-8 temp path").to_string();

    let row = |r: &mut ExperimentResult, label: &str, params: &str, us: u128| {
        r.rows.push(crate::measure::Measurement {
            label: label.into(),
            params: params.into(),
            answers: 0,
            facts: 0,
            duplicates: 0,
            scanned: 0,
            iterations: 0,
            retired: 0,
            wall_us: us,
            rules: Vec::new(),
        });
    };

    // One run: every client interleaves a fresh FACT (isolated edge, far
    // from the chain — it invalidates the form without growing the closure
    // much) with a query on the warm form. Queries rotate constants so the
    // answer slot never hits; the contested path is resident catch-up vs
    // full recomputation. Returns (total wall, p99 of query round trips).
    let run = |resident_forms: usize, clients: usize| -> (std::time::Duration, u128) {
        let server = Server::spawn(&ServerConfig {
            threads: 8,
            resident_forms,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let mut c = Client::connect(addr).expect("connect");
        assert!(c.load(&path).expect("load").ok);
        // Warm the form cache (and pin the resident, when enabled).
        assert!(c.query("?- a(0, _).").expect("warm").ok);
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut walls = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let x = 1_000_000 + (tid * per_client + i) as i64;
                        let resp = c.fact(&format!("p({x}, {}).", x + 1)).expect("fact");
                        assert!(resp.ok, "{}", resp.error);
                        let q = format!("?- a({}, _).", (tid * per_client + i) as i64 % n);
                        let t = Instant::now();
                        let resp = c.query(&q).expect("query");
                        walls.push(t.elapsed().as_micros());
                        assert!(resp.ok, "{}", resp.error);
                    }
                    walls
                })
            })
            .collect();
        let mut walls: Vec<u128> = Vec::new();
        for h in handles {
            walls.extend(h.join().expect("client thread"));
        }
        let total = t0.elapsed();
        walls.sort();
        let p99 = walls[(walls.len() * 99) / 100 - 1];
        c.shutdown().expect("shutdown");
        server.join();
        (total, p99)
    };

    let trials: usize = if quick { 2 } else { 3 };
    for clients in [1usize, 4, 8] {
        let queries = (clients * per_client) as f64;
        // Interleave the two modes and keep each mode's best trial (same
        // rationale as E13: peak capability isolates the mechanism under
        // test from scheduler noise on a shared host).
        let (mut cold_best, mut inc_best) = (
            None::<(std::time::Duration, u128)>,
            None::<(std::time::Duration, u128)>,
        );
        for _ in 0..trials {
            let cold = run(0, clients);
            let inc = run(8, clients);
            if cold_best.map_or(true, |b| cold.0 < b.0) {
                cold_best = Some(cold);
            }
            if inc_best.map_or(true, |b| inc.0 < b.0) {
                inc_best = Some(inc);
            }
        }
        let (cold_total, cold_p99) = cold_best.expect("at least one trial");
        let (inc_total, inc_p99) = inc_best.expect("at least one trial");
        let qps_cold = queries / cold_total.as_secs_f64();
        let qps_inc = queries / inc_total.as_secs_f64();
        let speedup = qps_inc / qps_cold;
        r.note(format!(
            "clients={clients}: incremental {qps_inc:.0} qps p99={inc_p99}us; \
             recompute {qps_cold:.0} qps p99={cold_p99}us; speedup {speedup:.2}x \
             (best of {trials})"
        ));
        let params = format!("clients={clients} q={per_client} each");
        row(&mut r, "incremental", &params, inc_total.as_micros());
        row(
            &mut r,
            "invalidate-recompute",
            &params,
            cold_total.as_micros(),
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    r
}

/// E15 — bounded-staleness serving: query tail latency under an ingest
/// burst. A dedicated writer floods isolated `FACT`s for the whole
/// measurement window while 1/4/8 clients time query round trips on the
/// warm recursive form, under three serving disciplines:
///
/// * `recompute-baseline` — `resident_forms: 0`: every query re-runs the
///   fixpoint after each invalidation (the pre-incremental server);
/// * `fresh-sync` — resident frontier with synchronous catch-up: each
///   query pays the pending delta drain before answering (protocol v4
///   `fresh`, the default — byte-identical answers, staleness 0);
/// * `bounded-stale` — `drain_sync_cost: 0` defers every drain to the
///   maintenance thread and clients ask for `staleness=50`: reads come
///   off the last published frontier while drains run behind.
///
/// Reported per client count: p50/p99 round trip per discipline plus the
/// number of `ERR stale` refusals (bounded reads whose budget could not
/// be met). `wall_us` per row is the run's total wall time.
pub fn e15(quick: bool) -> ExperimentResult {
    use datalog_server::{Client, Consistency, Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let mut r = ExperimentResult::new(
        "e15",
        "bounded-staleness serving: query p50/p99 under a FACT flood; \
         recompute baseline vs synchronous fresh vs staleness=50 at 1/4/8 clients",
    );
    r.note("expect: bounded-stale trims the ingest-burst tail — queries stop paying");
    r.note("for drains they did not cause; fresh keeps byte-identity and pays catch-up");

    let n: i64 = if quick { 64 } else { 256 };
    let per_client: usize = if quick { 25 } else { 100 };

    let mut src = String::from("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n");
    for i in 0..n {
        src.push_str(&format!("p({i}, {}).\n", i + 1));
    }
    let dir = std::env::temp_dir().join(format!("datalog-bench-e15-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for e15");
    let file = dir.join("chain.dl");
    std::fs::write(&file, &src).expect("write e15 workload");
    let path = file.to_str().expect("utf-8 temp path").to_string();

    let row = |r: &mut ExperimentResult, label: &str, params: &str, us: u128| {
        r.rows.push(crate::measure::Measurement {
            label: label.into(),
            params: params.into(),
            answers: 0,
            facts: 0,
            duplicates: 0,
            scanned: 0,
            iterations: 0,
            retired: 0,
            wall_us: us,
            rules: Vec::new(),
        });
    };

    // Isolated-edge source shared by every burst writer across runs, so
    // no run ever re-ingests a duplicate (duplicates skip invalidation
    // and would quietly relax the burst).
    let next_edge = Arc::new(AtomicI64::new(10_000_000));
    // The burst is a fixed-size salvo, not an open faucet: an unbounded
    // writer grows the database (and the recompute bill) without limit,
    // turning the baseline run into a measurement of the flood instead
    // of the serving discipline.
    let burst: usize = if quick { 250 } else { 1500 };

    // One run: a writer floods a fixed burst of FACTs while clients time
    // query round trips at the given consistency. Returns
    // (total, p50, p99, stale refusals).
    let run = |resident_forms: usize,
               drain_sync_cost: u64,
               mode: Consistency,
               clients: usize|
     -> (std::time::Duration, u128, u128, usize) {
        let server = Server::spawn(&ServerConfig {
            threads: 8,
            resident_forms,
            drain_sync_cost,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let mut c = Client::connect(addr).expect("connect");
        assert!(c.load(&path).expect("load").ok);
        assert!(c.query("?- a(0, _).").expect("warm").ok);

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = Arc::clone(&stop);
            let next_edge = Arc::clone(&next_edge);
            std::thread::spawn(move || {
                let mut w = Client::connect(addr).expect("writer connect");
                for _ in 0..burst {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let x = next_edge.fetch_add(2, Ordering::Relaxed);
                    let resp = w.fact(&format!("p({x}, {}).", x + 1)).expect("fact");
                    assert!(resp.ok, "{}", resp.error);
                }
            })
        };

        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|tid| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut walls = Vec::with_capacity(per_client);
                    let mut refused = 0usize;
                    for i in 0..per_client {
                        let q = format!("?- a({}, _).", (tid * per_client + i) as i64 % n);
                        let t = Instant::now();
                        let resp = c.query_at(mode, &q).expect("query");
                        walls.push(t.elapsed().as_micros());
                        if !resp.ok {
                            // Only a bounded budget may refuse, and only
                            // with the structured stale code.
                            assert!(resp.stale_bound_ms().is_some(), "{}: {}", q, resp.error);
                            refused += 1;
                        }
                    }
                    (walls, refused)
                })
            })
            .collect();
        let mut walls: Vec<u128> = Vec::new();
        let mut refused = 0usize;
        for h in handles {
            let (w, rf) = h.join().expect("client thread");
            walls.extend(w);
            refused += rf;
        }
        let total = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
        walls.sort();
        let p50 = walls[walls.len() / 2];
        let p99 = walls[(walls.len() * 99) / 100 - 1];
        c.shutdown().expect("shutdown");
        server.join();
        (total, p50, p99, refused)
    };

    let trials: usize = if quick { 2 } else { 3 };
    let disciplines: [(&str, usize, u64, Consistency); 3] = [
        ("recompute-baseline", 0, u64::MAX, Consistency::Fresh),
        ("fresh-sync", 8, u64::MAX, Consistency::Fresh),
        ("bounded-stale", 8, 0, Consistency::Bounded(50)),
    ];
    for clients in [1usize, 4, 8] {
        let params = format!("clients={clients} q={per_client} each");
        for (label, forms, sync_cost, mode) in disciplines {
            // Best-of-trials, same rationale as E13/E14: peak capability
            // isolates the serving discipline from scheduler noise.
            let mut best: Option<(std::time::Duration, u128, u128, usize)> = None;
            for _ in 0..trials {
                let t = run(forms, sync_cost, mode, clients);
                if best.as_ref().map_or(true, |b| t.0 < b.0) {
                    best = Some(t);
                }
            }
            let (total, p50, p99, refused) = best.expect("at least one trial");
            let qps = (clients * per_client) as f64 / total.as_secs_f64();
            r.note(format!(
                "clients={clients} {label}: {qps:.0} qps p50={p50}us p99={p99}us \
                 refusals={refused} (best of {trials})"
            ));
            row(&mut r, label, &params, total.as_micros());
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    r
}

/// E16 — sorted-run storage, three axes against the legacy hash-postings
/// backend it replaced (results are byte-identical; this measures cost):
///
/// (a) **ingest**: N inserts (~25% duplicates) into a [`Relation`] under
///     each backend, with the acceleration-structure overhead estimate as
///     memory notes — sorted runs retire the boxed-tuple `seen` set and
///     posting lists for 4-byte id arrays plus ~1 byte/row of bloom bits;
/// (b) **cold probes**: M point probes (~75% absent keys) against a
///     sealed, indexed relation; each sorted run gates its binary search
///     behind a bloom filter, and the measured skip rate is reported;
/// (c) **crash recovery**: ingest through a WAL-backed server, then time a
///     cold `ServerState::from_config` on the surviving directory — text
///     log replay (parse + per-row hashed insert per record) vs the
///     manifest swap (typed run files bulk-loaded with one order-
///     preserving sort-dedup per predicate, log tail on top).
pub fn e16(quick: bool) -> ExperimentResult {
    use datalog_ast::Value;
    use datalog_engine::{storage_counters, Relation, StorageMode};
    use datalog_server::{Client, FsyncPolicy, Server, ServerConfig, ServerState};
    use std::time::Instant;

    let mut r = ExperimentResult::new(
        "e16",
        "sorted-run storage: ingest + cold-probe + crash-recovery walls, \
         legacy hash postings vs merge-joinable runs",
    );
    r.note("expect: dedup memory drops (no duplicate tuple storage), cold probes");
    r.note("short-circuit on bloom skips, and manifest recovery beats text replay");

    let row = |r: &mut ExperimentResult, label: &str, params: &str, facts: u64, us: u128| {
        r.rows.push(crate::measure::Measurement {
            label: label.into(),
            params: params.into(),
            answers: 0,
            facts,
            duplicates: 0,
            scanned: 0,
            iterations: 0,
            retired: 0,
            wall_us: us,
            rules: Vec::new(),
        });
    };

    // Deterministic key stream with ~25% duplicates (xorshift into a key
    // space three-quarters the insert count).
    let n: u64 = if quick { 20_000 } else { 120_000 };
    let keyspace = (n * 3 / 4).max(1) as i64;
    let tuples: Vec<[Value; 2]> = {
        let mut s = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let k = (s % keyspace as u64) as i64;
                [Value::int(k), Value::int(k + 1)]
            })
            .collect()
    };

    // (a) Ingest: per-backend median wall over several fresh relations
    // (single-pass walls on a shared host are too noisy to compare) +
    // overhead estimate.
    let reps: usize = if quick { 3 } else { 5 };
    let params = format!("ingest n={n} (~25% dup)");
    for (label, mode) in [
        ("legacy-postings", StorageMode::Legacy),
        ("sorted-runs", StorageMode::SortedRun),
    ] {
        let mut walls = Vec::with_capacity(reps);
        let mut kept = None;
        for _ in 0..reps {
            let mut rel = Relation::with_mode(2, mode);
            rel.ensure_index(&[0]);
            let t0 = Instant::now();
            for t in &tuples {
                rel.insert(t);
            }
            walls.push(t0.elapsed());
            rel.seal();
            kept = Some(rel);
        }
        walls.sort();
        let wall = walls[walls.len() / 2];
        let rel = kept.expect("at least one ingest rep");
        r.note(format!(
            "{label}: ingest {}us (median of {reps}), {} rows, overhead ~{} KiB, {} runs",
            wall.as_micros(),
            rel.len(),
            rel.overhead_bytes_estimate() / 1024,
            rel.run_count()
        ));
        row(&mut r, label, &params, rel.len() as u64, wall.as_micros());
    }

    // (b) Cold probes: ~75% of probed keys are absent; the sorted backend
    // skips those runs on the bloom gate instead of binary-searching.
    // Probes run against the read-optimized serving state — fully
    // consolidated to one run, as the maintenance path leaves it.
    let m: u64 = if quick { 60_000 } else { 400_000 };
    let params = format!("probe m={m} (~75% absent)");
    for (label, mode) in [
        ("legacy-postings", StorageMode::Legacy),
        ("sorted-runs", StorageMode::SortedRun),
    ] {
        let mut rel = Relation::with_mode(2, mode);
        rel.ensure_index(&[0]);
        for t in &tuples {
            rel.insert(t);
        }
        rel.consolidate();
        let before = storage_counters();
        let mut walls = Vec::with_capacity(reps);
        let mut hits = 0u64;
        for rep in 0..reps {
            let mut rep_hits = 0u64;
            let t0 = Instant::now();
            for i in 0..m {
                // Probe space 4x the key space: ~1 in 4 keys exist.
                let k = ((i.wrapping_mul(2654435761)) % (4 * keyspace as u64)) as i64;
                rep_hits += rel.probe_range(&[0], &[Value::int(k)], 0, rel.len()).len() as u64;
            }
            walls.push(t0.elapsed());
            if rep == 0 {
                hits = rep_hits;
            }
        }
        walls.sort();
        let wall = walls[walls.len() / 2];
        let after = storage_counters();
        let probes = after.bloom_probes - before.bloom_probes;
        let skips = after.bloom_skips - before.bloom_skips;
        let rate = if probes > 0 {
            skips as f64 / probes as f64 * 100.0
        } else {
            0.0
        };
        r.note(format!(
            "{label}: {m} probes in {}us (median of {reps}), {hits} hits, \
             bloom skip rate {rate:.1}% ({skips}/{probes})",
            wall.as_micros()
        ));
        row(&mut r, label, &params, hits, wall.as_micros());
    }

    // (c) Crash recovery: same ingest volume through a WAL-backed server;
    // `compact_every: 0` leaves a pure text log to replay, `256` leaves a
    // run-file manifest plus a short log tail. The restart is measured as
    // a cold `ServerState::from_config` on the surviving directory.
    let facts: i64 = if quick { 1_000 } else { 6_000 };
    let params = format!("recover facts={facts}");
    let base = std::env::temp_dir().join(format!("datalog-bench-e16-{}", std::process::id()));
    for (label, compact_every) in [("text-replay", 0u64), ("manifest-swap", 256)] {
        let dir = base.join(label);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir for e16");
        let cfg = ServerConfig {
            threads: 2,
            wal_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Never,
            compact_every,
            ..ServerConfig::default()
        };
        {
            let server = Server::spawn(&cfg).expect("bind");
            let mut c = Client::connect(server.addr()).expect("connect");
            for i in 0..facts {
                assert!(c.fact(&format!("p({i}, {}).", i + 1)).expect("fact").ok);
            }
            c.shutdown().expect("shutdown");
            server.join();
        }
        let t0 = Instant::now();
        let state = ServerState::from_config(&cfg).expect("recover");
        let wall = t0.elapsed();
        assert!(state.recovery().is_some(), "{label}: no recovery summary");
        let recovered = state.recovery().map(|j| j.to_string()).unwrap_or_default();
        r.note(format!(
            "{label}: restart {}us, {} facts, recovery {recovered}",
            wall.as_micros(),
            facts
        ));
        row(&mut r, label, &params, facts as u64, wall.as_micros());
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
    r
}

/// All experiments in order.
pub fn all(quick: bool) -> Vec<ExperimentResult> {
    vec![
        e1(quick),
        e2(quick),
        e3(quick),
        e4(quick),
        e5(quick),
        e6(quick),
        e7(quick),
        e8(quick),
        e9(quick),
        e10(quick),
        e11(quick),
        e12(quick),
        e13(quick),
        e14(quick),
        e15(quick),
        e16(quick),
    ]
}

/// Look up one experiment by id.
pub fn by_id(id: &str, quick: bool) -> Option<ExperimentResult> {
    match id {
        "e1" => Some(e1(quick)),
        "e2" => Some(e2(quick)),
        "e3" => Some(e3(quick)),
        "e4" => Some(e4(quick)),
        "e5" => Some(e5(quick)),
        "e6" => Some(e6(quick)),
        "e7" => Some(e7(quick)),
        "e8" => Some(e8(quick)),
        "e9" => Some(e9(quick)),
        "e10" => Some(e10(quick)),
        "e11" => Some(e11(quick)),
        "e12" => Some(e12(quick)),
        "e13" => Some(e13(quick)),
        "e14" => Some(e14(quick)),
        "e15" => Some(e15(quick)),
        "e16" => Some(e16(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each experiment runs in quick mode and the optimized variant never
    /// does more derivation work than the original on the same workload.
    #[test]
    fn quick_experiments_run_and_improve() {
        for result in all(true) {
            assert!(!result.rows.is_empty(), "{} empty", result.id);
            // Group rows by params: the first variant is the baseline.
            let mut by_params: std::collections::BTreeMap<&str, Vec<&crate::measure::Measurement>> =
                std::collections::BTreeMap::new();
            for row in &result.rows {
                by_params.entry(&row.params).or_default().push(row);
            }
            for (params, rows) in by_params {
                let baseline = rows[0];
                for r in &rows[1..] {
                    assert_eq!(
                        r.answers, baseline.answers,
                        "{} {params}: answers differ ({} vs {})",
                        result.id, r.label, baseline.label
                    );
                }
            }
        }
    }

    #[test]
    fn padded_tc_generates_valid_programs() {
        for k in 0..4 {
            let p = parse(&padded_tc(k));
            p.validate().unwrap();
            assert_eq!(p.rules[0].head.arity(), 2 + k);
        }
    }

    #[test]
    fn by_id_dispatch() {
        assert!(by_id("e1", true).is_some());
        assert!(by_id("e42", true).is_none());
    }
}

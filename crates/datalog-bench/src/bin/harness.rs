//! Experiment harness: regenerates the tables of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! harness all [--quick] [--json]
//! harness e1 e3 [--quick] [--json]
//! harness list
//! ```

use std::io::Write as _;

use datalog_bench::experiments;

/// Print to stdout, exiting quietly on a broken pipe (e.g. `harness all | head`).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("stdout: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if ids.iter().any(|a| a.as_str() == "list") {
        emit("available experiments: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 (or `all`)\n");
        return;
    }
    if ids.is_empty() {
        eprintln!("usage: harness <all | e1..e14 ...> [--quick] [--json]");
        std::process::exit(2);
    }

    let results = if ids.iter().any(|a| a.as_str() == "all") {
        experiments::all(quick)
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match experiments::by_id(id, quick) {
                Some(r) => out.push(r),
                None => {
                    eprintln!("unknown experiment '{id}' (try `harness list`)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    if json {
        let doc = datalog_trace::Json::Arr(results.iter().map(|r| r.to_json()).collect());
        emit(&doc.to_pretty());
        emit("\n");
    } else {
        for r in &results {
            emit(&r.to_table());
            emit("\n");
        }
    }
}

//! Differential fuzzer: random safe programs × random instances, evaluated
//! under every engine/optimizer configuration; any disagreement is a bug.
//!
//! ```text
//! cargo run -p datalog-bench --release --bin fuzz -- [rounds] [base-seed]
//! ```

use datalog_bench::workloads::{edb_for, random_program};
use datalog_engine::{query_answers, EvalOptions, Strategy};
use datalog_opt::{optimize, OptimizerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rounds: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(200);
    let base: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let mut failures = 0u64;
    for round in 0..rounds {
        let seed = base.wrapping_add(round);
        let program = random_program(seed);
        if program.validate().is_err() {
            eprintln!("seed {seed}: generator produced an invalid program");
            failures += 1;
            continue;
        }
        let instance = edb_for(&program, 4, 12, seed ^ 0xabcdef);
        let reference = match query_answers(&program, &instance, &EvalOptions::default()) {
            Ok((a, _)) => a.rows,
            Err(e) => {
                eprintln!("seed {seed}: reference evaluation failed: {e}");
                failures += 1;
                continue;
            }
        };
        let check = |label: &str,
                     rows: &std::collections::BTreeSet<Vec<datalog_ast::Value>>|
         -> u64 {
            if *rows != reference {
                eprintln!(
                    "seed {seed}: {label} disagrees with reference\nprogram:\n{}",
                    program.to_text()
                );
                1
            } else {
                0
            }
        };
        // Naive strategy.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .expect("naive evaluates");
        failures += check("naive", &a.rows);
        // Reordered joins.
        let (a, _) = query_answers(
            &program,
            &instance,
            &EvalOptions {
                reorder_joins: true,
                ..EvalOptions::default()
            },
        )
        .expect("reordered evaluates");
        failures += check("reorder_joins", &a.rows);
        // Full optimizer (+ cut).
        match optimize(&program, &OptimizerConfig::default()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("optimized evaluates");
                failures += check("optimizer", &a.rows);
            }
            Err(e) => {
                eprintln!("seed {seed}: optimizer failed: {e}");
                failures += 1;
            }
        }
        // Aggressive optimizer (auto-fold).
        match optimize(&program, &OptimizerConfig::aggressive()) {
            Ok(out) => {
                let (a, _) = query_answers(
                    &out.program,
                    &instance,
                    &EvalOptions {
                        boolean_cut: true,
                        ..EvalOptions::default()
                    },
                )
                .expect("aggressive evaluates");
                failures += check("aggressive-optimizer", &a.rows);
            }
            Err(e) => {
                eprintln!("seed {seed}: aggressive optimizer failed: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("fuzz: {rounds} rounds, no disagreements");
    } else {
        println!("fuzz: {failures} failure(s) over {rounds} rounds");
        std::process::exit(1);
    }
}

//! Differential fuzzer: random safe programs × random instances, evaluated
//! under every engine/optimizer configuration; any disagreement is a bug.
//!
//! ```text
//! cargo run -p datalog-bench --release --bin fuzz -- [rounds] [base-seed]
//! cargo run -p datalog-bench --release --bin fuzz -- --smoke
//! ```
//!
//! `--smoke` runs the fixed-seed configuration the test suite also runs
//! (small, deterministic), so CI scripts can invoke it without choosing
//! parameters.

use datalog_bench::fuzz::{run_rounds, SMOKE_BASE_SEED, SMOKE_ROUNDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rounds, base) = if args.iter().any(|a| a == "--smoke") {
        (SMOKE_ROUNDS, SMOKE_BASE_SEED)
    } else {
        (
            args.first().and_then(|a| a.parse().ok()).unwrap_or(200),
            args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1),
        )
    };
    let failures = run_rounds(rounds, base, true);
    if failures == 0 {
        println!("fuzz: {rounds} rounds, no disagreements");
    } else {
        println!("fuzz: {failures} failure(s) over {rounds} rounds");
        std::process::exit(1);
    }
}

//! E6 (sections 1/6): composing the existential optimizer with Magic Sets.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_magic::magic_rewrite;
use datalog_opt::{optimize, OptimizerConfig};

const SRC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                   a(X, Y) :- p(X, Y).\n\
                   ?- a(0, _).";

fn bench(c: &mut Criterion) {
    let original = parse_program(SRC).unwrap().program;
    let magic = magic_rewrite(&original).unwrap().program;
    let exist = optimize(&original, &OptimizerConfig::default())
        .unwrap()
        .program;
    let both = magic_rewrite(&exist).unwrap().program;
    for n in [256i64, 1024] {
        let edb = workloads::random_digraph("p", n, (n as usize) * 2, 9);
        let params = format!("rand_n{n}");
        bench_variant(
            c,
            "e6_magic",
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e6_magic",
            "magic",
            &params,
            &magic,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e6_magic",
            "existential",
            &params,
            &exist,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e6_magic",
            "both",
            &params,
            &both,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 (Examples 7/8/10): summary-based deletion on the paper's programs.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::{optimize, paper, OptimizerConfig};

fn bench(c: &mut Criterion) {
    for name in ["example_7", "example_8", "example_10"] {
        let original = paper::parse_example(name).unwrap();
        let optimized = optimize(&original, &OptimizerConfig::default())
            .unwrap()
            .program;
        let edb = workloads::edb_for(&original, 48, 256, 11);
        bench_variant(
            c,
            "e4_summaries",
            "original",
            name,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e4_summaries",
            "optimized",
            name,
            &optimized,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E7 (section 3.2): cost of carrying k dead columns through a recursion.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::{optimize, OptimizerConfig};

fn padded_tc(k: usize) -> String {
    let es: Vec<String> = (1..=k).map(|i| format!("E{i}")).collect();
    let fs: Vec<String> = (1..=k).map(|i| format!("F{i}")).collect();
    let tail = |v: &[String]| {
        if v.is_empty() {
            String::new()
        } else {
            format!(", {}", v.join(", "))
        }
    };
    format!(
        "a(X, Y{e}) :- p(X, Z{f}), a(Z, Y{e}).\na(X, Y{e}) :- p(X, Y{e}).\n?- a(X, _{w}).",
        e = tail(&es),
        f = tail(&fs),
        w = ", _".repeat(k),
    )
}

fn bench(c: &mut Criterion) {
    for k in [0usize, 2, 4] {
        let src = padded_tc(k);
        let original = parse_program(&src).unwrap().program;
        let optimized = optimize(&original, &OptimizerConfig::default())
            .unwrap()
            .program;
        let edb = workloads::padded_edges("p", 192, k, 3);
        let params = format!("k{k}");
        bench_variant(
            c,
            "e7_arity",
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e7_arity",
            "optimized",
            &params,
            &optimized,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

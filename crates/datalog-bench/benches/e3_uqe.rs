//! E3 (Examples 5/6): uniform-query-equivalence deletion makes the
//! left-recursive existential TC non-recursive.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::{optimize, OptimizerConfig};

const SRC: &str = "a(X, Y) :- a(X, Z), p(Z, Y).\n\
                   a(X, Y) :- p(X, Y).\n\
                   ?- a(X, _).";

fn bench(c: &mut Criterion) {
    let original = parse_program(SRC).unwrap().program;
    let full = optimize(&original, &OptimizerConfig::default())
        .unwrap()
        .program;
    let uniform_only = {
        let mut cfg = OptimizerConfig::default();
        cfg.freeze.uqe = false;
        cfg.summary.add_cover_unit_rules = false;
        optimize(&original, &cfg).unwrap().program
    };
    for n in [128i64, 512] {
        let edb = workloads::chain("p", n);
        let params = format!("chain_n{n}");
        bench_variant(
            c,
            "e3_uqe",
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e3_uqe",
            "uniform_only",
            &params,
            &uniform_only,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e3_uqe",
            "uqe_full",
            &params,
            &full,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E9 (section 1.1 substrate): naive vs semi-naive fixpoint.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::{EvalOptions, Strategy};

const SRC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                   a(X, Y) :- p(X, Y).\n\
                   ?- a(X, Y).";

fn bench(c: &mut Criterion) {
    let p = parse_program(SRC).unwrap().program;
    let naive = EvalOptions {
        strategy: Strategy::Naive,
        ..EvalOptions::default()
    };
    for n in [64i64, 192] {
        let edb = workloads::chain("p", n);
        let params = format!("chain_n{n}");
        bench_variant(c, "e9_seminaive", "naive", &params, &p, &edb, &naive);
        bench_variant(
            c,
            "e9_seminaive",
            "semi_naive",
            &params,
            &p,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E1 (Examples 1/3): binary TC vs projected unary reachability.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::{optimize, paper, OptimizerConfig};

fn bench(c: &mut Criterion) {
    let original = parse_program(paper::EXAMPLE_1).unwrap().program;
    let optimized = optimize(&original, &OptimizerConfig::default())
        .unwrap()
        .program;
    for n in [128i64, 512] {
        let edb = workloads::chain("p", n);
        let params = format!("chain_n{n}");
        bench_variant(
            c,
            "e1_projection",
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e1_projection",
            "optimized",
            &params,
            &optimized,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E10: pipeline ablation on the flagship program.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::{optimize, OptimizerConfig};

const SRC: &str = "query(X) :- a(X, Y), audit(W).\n\
                   a(X, Y) :- p(X, Z), a(Z, Y).\n\
                   a(X, Y) :- p(X, Y).\n\
                   ?- query(X).";

fn bench(c: &mut Criterion) {
    let original = parse_program(SRC).unwrap().program;
    let rewrite_only = optimize(&original, &OptimizerConfig::rewrite_only())
        .unwrap()
        .program;
    let full = optimize(&original, &OptimizerConfig::default())
        .unwrap()
        .program;
    let cut = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    for n in [256i64, 512] {
        let mut edb = workloads::chain("p", n);
        edb.extend(&workloads::unary("audit", 128));
        let params = format!("chain_n{n}");
        bench_variant(
            c,
            "e10_ablation",
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e10_ablation",
            "rewrite_only",
            &params,
            &rewrite_only,
            &edb,
            &cut,
        );
        bench_variant(c, "e10_ablation", "full", &params, &full, &edb, &cut);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E8 (Theorem 3.3): DFA-synthesized monadic program vs the binary TC.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::{parse_atom, parse_program, Query};
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_grammar::regular::{monadic_equivalent, KeptArg};

const SRC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                   a(X, Y) :- p(X, Y).\n\
                   ?- a(X, Y).";

fn bench(c: &mut Criterion) {
    let right = parse_program(SRC).unwrap().program;
    let rewrite = monadic_equivalent(&right, KeptArg::First).unwrap().unwrap();
    let mut projected = right.clone();
    projected.query = Some(Query::new(parse_atom("a(X, _)").unwrap()));
    for n in [256i64, 1024] {
        let edb = workloads::chain("p", n);
        let params = format!("chain_n{n}");
        bench_variant(
            c,
            "e8_grammar",
            "binary_tc",
            &params,
            &projected,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e8_grammar",
            "monadic",
            &params,
            &rewrite.program,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E2 (Example 2 / section 3.1): boolean-cut retirement of existential
//! subqueries.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::{optimize, OptimizerConfig};

const SRC: &str = "q(X, Y) :- sub(X, Z), q(Z, Y), certified(W).\n\
                   q(X, Y) :- sub(X, Y), certified(W).\n\
                   ?- q(X, _).";

fn bench(c: &mut Criterion) {
    let original = parse_program(SRC).unwrap().program;
    let optimized = optimize(&original, &OptimizerConfig::default())
        .unwrap()
        .program;
    let cut = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    for certs in [1_000i64, 20_000] {
        let edb = workloads::bom(128, 2, certs);
        let params = format!("certified_{certs}");
        bench_variant(
            c,
            "e2_cut",
            "original",
            &params,
            &original,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e2_cut",
            "optimized_cut",
            &params,
            &optimized,
            &edb,
            &cut,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

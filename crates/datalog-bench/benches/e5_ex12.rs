//! E5 (Example 12): arity-reducing literal motion on the up/dn program.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog_ast::parse_program;
use datalog_bench::bench_support::bench_variant;
use datalog_bench::workloads;
use datalog_engine::EvalOptions;
use datalog_opt::paper;

fn bench(c: &mut Criterion) {
    let adorned = parse_program(paper::EXAMPLE_12_ADORNED).unwrap().program;
    let transformed = parse_program(paper::EXAMPLE_12_TRANSFORMED)
        .unwrap()
        .program;
    for (levels, sel) in [(64i64, 1.0f64), (64, 0.1)] {
        let edb = workloads::updown(levels, 32, sel, 5);
        let params = format!("levels{levels}_sel{sel}");
        bench_variant(
            c,
            "e5_ex12",
            "adorned_3ary",
            &params,
            &adorned,
            &edb,
            &EvalOptions::default(),
        );
        bench_variant(
            c,
            "e5_ex12",
            "transformed_2ary",
            &params,
            &transformed,
            &edb,
            &EvalOptions::default(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Sorted-run (LSM-style) storage primitives shared by [`crate::relation`]
//! and [`crate::shared`].
//!
//! A relation's rows stay append-only in insertion order (that contract is
//! what semi-naive delta ranges and byte-identical parallel merges are built
//! on); what changes is the *acceleration structure* beside them. Instead of
//! a duplicate `seen: HashSet<Box<[Value]>>` plus hash postings per index,
//! rows are covered by a small mutable tail and a stack of immutable sorted
//! **runs**:
//!
//! - a **dedup run** ([`TupleRuns`]) holds `(tuple hash, id)` pairs for a
//!   contiguous insertion range, sorted by hash — membership is a
//!   bloom-gated binary search over a flat `u64` array, touching the row
//!   store only to verify the rare hash match;
//! - an **index run** ([`IndexRuns`]) holds the same id range sorted by
//!   (projection hash, projection, id), with the hashes and projection
//!   keys materialized in flat arrays — a probe binary-searches the
//!   contiguous `u64` hash array, compares real keys only inside the
//!   equal-hash span, and clamps the key's group to the requested delta
//!   range; per-row box pointers are never chased.
//!
//! Every run covers a contiguous id range and runs are stacked in range
//! order, so emitting per-run group slices in run order (then the tail)
//! yields ids in globally ascending order — exactly the order the legacy
//! hash postings produced. That is the invariant that keeps evaluation
//! byte-identical across storage backends.
//!
//! Runs are sealed at the freeze barrier (and when the tail exceeds
//! [`TAIL_LIMIT`]) and consolidated geometrically so at most O(log n) runs
//! exist. Consolidation is a deterministic two-way merge over the runs'
//! own materialized keys — rows are hashed/projected once at first seal
//! and never revisited, so merges are linear passes over flat arrays.
//!
//! Telemetry (bloom probe/skip counts, consolidations, index rebuilds,
//! consolidation durations) is recorded in process-wide atomics so the
//! server can surface it without threading handles through the evaluator.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use datalog_ast::Value;

/// Rows covered by the mutable tail before an automatic seal.
pub const TAIL_LIMIT: usize = 1024;

/// Legacy hash postings: projection key → ascending ids (std hashing —
/// this is the preserved pre-sorted-run layout).
pub type Postings = HashMap<Box<[Value]>, Vec<u32>>;

/// Hasher state for run tails (see [`FastHasher`]). Tail maps are never
/// iterated — only probed and cleared — so the hasher cannot leak into
/// any observable ordering.
pub type FastBuild = std::hash::BuildHasherDefault<FastHasher>;

/// A sorted-run index's mutable tail: projection key → ascending ids,
/// fast-hashed (the tail is bounded by [`TAIL_LIMIT`] and hot).
pub type TailPostings = HashMap<Box<[Value]>, Vec<u32>, FastBuild>;

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

static BLOOM_PROBES: AtomicU64 = AtomicU64::new(0);
static BLOOM_SKIPS: AtomicU64 = AtomicU64::new(0);
static CONSOLIDATIONS: AtomicU64 = AtomicU64::new(0);
static INDEX_REBUILDS: AtomicU64 = AtomicU64::new(0);
/// Durations of recent consolidations, drained by the metrics scrape.
static CONSOLIDATION_NS: Mutex<Vec<u64>> = Mutex::new(Vec::new());
const CONSOLIDATION_NS_CAP: usize = 4096;

/// A snapshot of the process-wide storage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    pub bloom_probes: u64,
    pub bloom_skips: u64,
    pub consolidations: u64,
    pub index_rebuilds: u64,
}

/// Read the process-wide storage counters (monotone).
pub fn storage_counters() -> StorageCounters {
    StorageCounters {
        bloom_probes: BLOOM_PROBES.load(Ordering::Relaxed),
        bloom_skips: BLOOM_SKIPS.load(Ordering::Relaxed),
        consolidations: CONSOLIDATIONS.load(Ordering::Relaxed),
        index_rebuilds: INDEX_REBUILDS.load(Ordering::Relaxed),
    }
}

/// Drain the recorded consolidation durations (ns) since the last drain.
pub fn take_consolidation_ns() -> Vec<u64> {
    match CONSOLIDATION_NS.lock() {
        Ok(mut v) => std::mem::take(&mut *v),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

/// Record one consolidation pass (count + duration).
pub fn note_consolidation(ns: u64) {
    CONSOLIDATIONS.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut v) = CONSOLIDATION_NS.lock() {
        if v.len() < CONSOLIDATION_NS_CAP {
            v.push(ns);
        }
    }
}

fn note_index_rebuild() {
    INDEX_REBUILDS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Hashing + bloom filter
// ---------------------------------------------------------------------------

/// A fast multiply-rotate hasher in the FxHash family. These hashes feed
/// bloom filters and dedup runs that live only in memory (run files on
/// disk store raw values), so we trade SipHash's collision hardening for
/// a few nanoseconds per key — the dedup path verifies real tuples on
/// every hash match anyway, so collisions cost time, never correctness.
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so the low bits (used by the bloom mask) carry
        // entropy from the whole state.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.fold(i as u64);
    }
}

/// Deterministic fast 64-bit hash of a value sequence (see [`FastHasher`]).
pub fn hash_key(vals: impl Iterator<Item = Value>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = FastHasher::default();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// A small bloom filter over 64-bit key hashes (two probes derived from the
/// halves of one hash). Sized at ~8 bits per element, rounded up to a
/// power of two, so the false-positive rate stays under ~5%.
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Box<[u64]>,
    mask: u64,
}

impl Bloom {
    /// Build a filter holding every hash in `hashes`.
    pub fn build(hashes: impl Iterator<Item = u64>, count_hint: usize) -> Bloom {
        let bits = (count_hint.max(8) * 8).next_power_of_two() as u64;
        let mut f = Bloom {
            bits: vec![0u64; (bits / 64) as usize].into_boxed_slice(),
            mask: bits - 1,
        };
        for h in hashes {
            for bit in f.probes(h) {
                f.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        f
    }

    fn probes(&self, h: u64) -> [u64; 2] {
        [h & self.mask, (h >> 32 ^ h << 17) & self.mask]
    }

    /// False means the hash is definitely absent; true means "maybe".
    pub fn may_contain(&self, h: u64) -> bool {
        self.probes(h)
            .iter()
            .all(|&bit| self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    /// Heap footprint of the bit array.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

// ---------------------------------------------------------------------------
// Probe results
// ---------------------------------------------------------------------------

const INLINE_SEGS: usize = 8;

/// The result of a sorted-run probe: a handful of id slices (one per run
/// plus the tail) whose concatenation is ascending. Runs are consolidated
/// to O(log n), so the inline segment array almost never spills.
#[derive(Debug)]
pub struct ProbeHits<'a> {
    inline: [&'a [u32]; INLINE_SEGS],
    inline_len: usize,
    spill: Vec<&'a [u32]>,
}

impl<'a> ProbeHits<'a> {
    /// An empty result.
    pub fn new() -> ProbeHits<'a> {
        ProbeHits {
            inline: [&[]; INLINE_SEGS],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// Append a segment (ids ascending, all greater than prior segments).
    pub fn push(&mut self, seg: &'a [u32]) {
        if seg.is_empty() {
            return;
        }
        if self.inline_len < INLINE_SEGS {
            self.inline[self.inline_len] = seg;
            self.inline_len += 1;
        } else {
            self.spill.push(seg);
        }
    }

    /// Iterate the hit ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.inline[..self.inline_len]
            .iter()
            .chain(self.spill.iter())
            .flat_map(|seg| seg.iter().copied())
    }

    /// Total number of hits.
    pub fn len(&self) -> usize {
        self.inline[..self.inline_len]
            .iter()
            .chain(self.spill.iter())
            .map(|seg| seg.len())
            .sum()
    }

    /// Whether there are no hits.
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    /// Collect the hits (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl Default for ProbeHits<'_> {
    fn default() -> Self {
        ProbeHits::new()
    }
}

// ---------------------------------------------------------------------------
// Dedup runs
// ---------------------------------------------------------------------------

/// One immutable dedup run covering rows `[start, start + ids.len())`:
/// parallel `(hash, id)` arrays sorted by (hash, id), plus a bloom filter
/// over the hashes. Tuples are hashed once when first sealed; merges and
/// membership probes then work over the flat hash array and only touch
/// the row store to verify an actual hash match.
#[derive(Debug, Clone)]
struct DedupRun {
    start: u32,
    hashes: Vec<u64>,
    ids: Vec<u32>,
    bloom: Bloom,
}

/// Duplicate elimination over an external row store: sealed sorted runs
/// plus a bounded mutable tail. The row store keeps the only full copy of
/// every sealed tuple — runs hold a hash and a 4-byte id per row.
#[derive(Debug, Clone, Default)]
pub struct TupleRuns {
    runs: Vec<DedupRun>,
    /// Rows `[0, sealed)` are covered by `runs`; `[sealed, len)` by `tail`.
    sealed: usize,
    tail: HashSet<Box<[Value]>, FastBuild>,
}

impl TupleRuns {
    /// Membership test against `rows` (the external row store).
    pub fn contains(&self, rows: &[Box<[Value]>], tuple: &[Value]) -> bool {
        if self.tail.contains(tuple) {
            return true;
        }
        if self.runs.is_empty() {
            return false;
        }
        let h = hash_key(tuple.iter().copied());
        let (mut probes, mut skips) = (0u64, 0u64);
        let mut found = false;
        for run in &self.runs {
            probes += 1;
            if !run.bloom.may_contain(h) {
                skips += 1;
                continue;
            }
            let lo = run.hashes.partition_point(|&x| x < h);
            for i in lo..run.hashes.len() {
                if run.hashes[i] != h {
                    break;
                }
                if rows[run.ids[i] as usize][..] == *tuple {
                    found = true;
                    break;
                }
            }
            if found {
                break;
            }
        }
        BLOOM_PROBES.fetch_add(probes, Ordering::Relaxed);
        if skips != 0 {
            BLOOM_SKIPS.fetch_add(skips, Ordering::Relaxed);
        }
        found
    }

    /// Record a freshly inserted (known-new) tuple in the tail.
    pub fn note_insert(&mut self, tuple: Box<[Value]>) {
        self.tail.insert(tuple);
    }

    /// Number of rows in the mutable tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// First row id not covered by a sealed run.
    pub fn sealed(&self) -> usize {
        self.sealed
    }

    /// Number of sealed runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The (start, end) id ranges of the sealed runs, in id order.
    pub fn bounds(&self) -> Vec<(usize, usize)> {
        self.runs
            .iter()
            .map(|r| (r.start as usize, r.start as usize + r.ids.len()))
            .collect()
    }

    /// Seal rows `[self.sealed, end)` into a new run and clear the tail.
    /// Each row is hashed exactly once here; later merges reuse the
    /// stored hashes.
    pub fn seal_to(&mut self, rows: &[Box<[Value]>], end: usize) {
        let start = self.sealed;
        debug_assert!(end >= start && end <= rows.len());
        if end == start {
            return;
        }
        let mut pairs: Vec<(u64, u32)> = (start..end)
            .map(|id| (hash_key(rows[id].iter().copied()), id as u32))
            .collect();
        pairs.sort_unstable();
        let bloom = Bloom::build(pairs.iter().map(|&(h, _)| h), pairs.len());
        let (hashes, ids) = pairs.into_iter().unzip();
        self.runs.push(DedupRun {
            start: start as u32,
            hashes,
            ids,
            bloom,
        });
        self.sealed = end;
        self.tail.clear();
    }

    /// Whether the geometric invariant calls for merging the last two runs.
    pub fn wants_merge(&self) -> bool {
        let n = self.runs.len();
        n >= 2 && self.runs[n - 2].ids.len() < 2 * self.runs[n - 1].ids.len()
    }

    /// Merge the last two runs: one linear pass over the stored `(hash,
    /// id)` pairs, no row access. Ties on hash keep the left run's pair
    /// first (its ids are always smaller), so the order stays (hash, id).
    pub fn merge_last_two(&mut self) {
        let right = self.runs.pop().expect("merge without runs");
        let left = self.runs.pop().expect("merge without a second run");
        let n = left.ids.len() + right.ids.len();
        let mut hashes = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let (mut i, mut j) = (0, 0);
        while i < left.ids.len() && j < right.ids.len() {
            if left.hashes[i] <= right.hashes[j] {
                hashes.push(left.hashes[i]);
                ids.push(left.ids[i]);
                i += 1;
            } else {
                hashes.push(right.hashes[j]);
                ids.push(right.ids[j]);
                j += 1;
            }
        }
        hashes.extend_from_slice(&left.hashes[i..]);
        ids.extend_from_slice(&left.ids[i..]);
        hashes.extend_from_slice(&right.hashes[j..]);
        ids.extend_from_slice(&right.ids[j..]);
        let bloom = Bloom::build(hashes.iter().copied(), hashes.len());
        self.runs.push(DedupRun {
            start: left.start,
            hashes,
            ids,
            bloom,
        });
    }

    /// Merge every sealed run into one. The geometric policy bounds
    /// amortized ingest cost; this is the read-optimized endpoint for
    /// idle/maintenance compaction — one bloom check and one binary
    /// search per membership probe afterwards.
    pub fn consolidate(&mut self) {
        while self.runs.len() > 1 {
            self.merge_last_two();
        }
    }

    /// Estimated heap footprint: run hash/id arrays + blooms + tail tuples.
    pub fn bytes_estimate(&self, arity: usize) -> usize {
        let runs: usize = self
            .runs
            .iter()
            .map(|r| r.ids.len() * 12 + r.bloom.bytes())
            .sum();
        runs + self.tail.len() * tail_entry_bytes(arity)
    }
}

/// Estimated heap cost of one `HashSet<Box<[Value]>>` entry: the fat box
/// pointer, the boxed values, and amortized table overhead.
pub fn tail_entry_bytes(arity: usize) -> usize {
    16 + arity * std::mem::size_of::<Value>() + 16
}

// ---------------------------------------------------------------------------
// Index runs
// ---------------------------------------------------------------------------

/// One immutable index run: ids of rows `[start, end)` sorted by
/// (projection hash, projection, id), with the hashes and the flattened
/// projection keys (stride = column count) materialized in parallel
/// arrays. A probe binary-searches the flat `u64` hash array and compares
/// actual keys only within the (almost always single-key) equal-hash
/// span; merges reuse the stored hashes — no rehashing, no row access.
#[derive(Debug, Clone)]
struct IndexRun {
    start: u32,
    end: u32,
    hashes: Vec<u64>,
    keys: Vec<Value>,
    ids: Vec<u32>,
    bloom: Bloom,
}

impl IndexRun {
    #[inline]
    fn key_at(&self, stride: usize, i: usize) -> &[Value] {
        &self.keys[i * stride..(i + 1) * stride]
    }

    /// The contiguous id group whose projection equals `key` (hash `h`).
    /// Ids within a group are ascending.
    fn group(&self, key: &[Value], h: u64) -> &[u32] {
        let stride = key.len();
        // Equal-hash span: pure u64 binary searches over contiguous memory.
        let lo = self.hashes.partition_point(|&x| x < h);
        let hi = lo + self.hashes[lo..].partition_point(|&x| x == h);
        // Within the span, entries sort by (key, id); distinct keys in one
        // span are rare hash collisions, so a couple of binary-search key
        // comparisons pin down the group.
        let (mut a, mut b) = (lo, hi);
        while a < b {
            let mid = (a + b) / 2;
            if self.key_at(stride, mid) < key {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        let first = a;
        b = hi;
        while a < b {
            let mid = (a + b) / 2;
            if self.key_at(stride, mid) <= key {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        &self.ids[first..a]
    }
}

/// A composite index backed by sorted runs plus tail postings. Run
/// boundaries are kept in lockstep with the owning relation's dedup runs:
/// `seal_range` and `merge_last_two` are driven by the same decisions.
#[derive(Debug, Clone, Default)]
pub struct IndexRuns {
    runs: Vec<IndexRun>,
    /// Postings for rows past the last sealed run.
    tail: TailPostings,
}

impl IndexRuns {
    /// Build an index over already-stored rows from the dedup run bounds
    /// (cheap contiguous range scans, no full-table hash build). Counts a
    /// rebuild in the process-wide telemetry when rows exist.
    pub fn build(
        rows: &[Box<[Value]>],
        cols: &[usize],
        bounds: &[(usize, usize)],
        sealed: usize,
    ) -> IndexRuns {
        let mut idx = IndexRuns::default();
        for &(start, end) in bounds {
            idx.seal_range(rows, cols, start, end);
        }
        for (id, row) in rows.iter().enumerate().skip(sealed) {
            idx.tail_insert(cols, row, id as u32);
        }
        if !rows.is_empty() {
            note_index_rebuild();
        }
        idx
    }

    /// Add a tail posting for a freshly inserted row.
    pub fn tail_insert(&mut self, cols: &[usize], row: &[Value], id: u32) {
        let key: Box<[Value]> = cols.iter().map(|&c| row[c]).collect();
        self.tail.entry(key).or_default().push(id);
    }

    /// Seal rows `[start, end)` into a new run and drop their tail
    /// postings. Projections are materialized and hashed once into flat
    /// arrays and sorted there; neither the row store nor the hash
    /// function is consulted again afterwards.
    pub fn seal_range(&mut self, rows: &[Box<[Value]>], cols: &[usize], start: usize, end: usize) {
        if end == start {
            return;
        }
        let stride = cols.len();
        let n = end - start;
        let mut flat: Vec<Value> = Vec::with_capacity(n * stride);
        for row in &rows[start..end] {
            flat.extend(cols.iter().map(|&c| row[c]));
        }
        let row_hashes: Vec<u64> = flat
            .chunks(stride)
            .map(|k| hash_key(k.iter().copied()))
            .collect();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            row_hashes[a]
                .cmp(&row_hashes[b])
                .then_with(|| {
                    flat[a * stride..(a + 1) * stride].cmp(&flat[b * stride..(b + 1) * stride])
                })
                .then(a.cmp(&b))
        });
        let mut hashes = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(n * stride);
        let mut ids = Vec::with_capacity(n);
        for &rel in &order {
            let rel = rel as usize;
            hashes.push(row_hashes[rel]);
            keys.extend_from_slice(&flat[rel * stride..(rel + 1) * stride]);
            ids.push((start + rel) as u32);
        }
        let bloom = Bloom::build(hashes.iter().copied(), n);
        self.runs.push(IndexRun {
            start: start as u32,
            end: end as u32,
            hashes,
            keys,
            ids,
            bloom,
        });
        self.tail.clear();
    }

    /// Merge the last two runs (kept in lockstep with the dedup runs):
    /// one linear pass over the stored hashes and materialized keys, no
    /// row access and no rehashing. Ties keep the left run's entries
    /// first — their ids are always smaller.
    pub fn merge_last_two(&mut self, cols: &[usize]) {
        let stride = cols.len();
        let right = self.runs.pop().expect("merge without runs");
        let left = self.runs.pop().expect("merge without a second run");
        let n = left.ids.len() + right.ids.len();
        let mut hashes = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(n * stride);
        let mut ids = Vec::with_capacity(n);
        let (mut i, mut j) = (0, 0);
        while i < left.ids.len() && j < right.ids.len() {
            let take_left = match left.hashes[i].cmp(&right.hashes[j]) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => left.key_at(stride, i) <= right.key_at(stride, j),
            };
            if take_left {
                hashes.push(left.hashes[i]);
                keys.extend_from_slice(left.key_at(stride, i));
                ids.push(left.ids[i]);
                i += 1;
            } else {
                hashes.push(right.hashes[j]);
                keys.extend_from_slice(right.key_at(stride, j));
                ids.push(right.ids[j]);
                j += 1;
            }
        }
        hashes.extend_from_slice(&left.hashes[i..]);
        keys.extend_from_slice(&left.keys[i * stride..]);
        ids.extend_from_slice(&left.ids[i..]);
        hashes.extend_from_slice(&right.hashes[j..]);
        keys.extend_from_slice(&right.keys[j * stride..]);
        ids.extend_from_slice(&right.ids[j..]);
        let bloom = Bloom::build(hashes.iter().copied(), n);
        self.runs.push(IndexRun {
            start: left.start,
            end: right.end,
            hashes,
            keys,
            ids,
            bloom,
        });
    }

    /// Number of sealed runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Merge every sealed run into one (idle/maintenance compaction,
    /// kept in lockstep with [`TupleRuns::consolidate`]).
    pub fn consolidate(&mut self, cols: &[usize]) {
        while self.runs.len() > 1 {
            self.merge_last_two(cols);
        }
    }

    /// Ids in `[start, end)` whose projection equals `key`, pushed into
    /// `out` as per-run group slices (run order, then tail) — ascending
    /// overall because runs cover disjoint ascending id ranges.
    pub fn probe<'a>(&'a self, key: &[Value], start: usize, end: usize, out: &mut ProbeHits<'a>) {
        if !self.runs.is_empty() {
            let h = hash_key(key.iter().copied());
            let (mut probes, mut skips) = (0u64, 0u64);
            for run in &self.runs {
                if run.end as usize <= start {
                    continue;
                }
                if run.start as usize >= end {
                    break;
                }
                probes += 1;
                if !run.bloom.may_contain(h) {
                    skips += 1;
                    continue;
                }
                let group = run.group(key, h);
                let a = group.partition_point(|&id| (id as usize) < start);
                let b = group.partition_point(|&id| (id as usize) < end);
                out.push(&group[a..b]);
            }
            if probes != 0 {
                BLOOM_PROBES.fetch_add(probes, Ordering::Relaxed);
            }
            if skips != 0 {
                BLOOM_SKIPS.fetch_add(skips, Ordering::Relaxed);
            }
        }
        if let Some(postings) = self.tail.get(key) {
            let a = postings.partition_point(|&id| (id as usize) < start);
            let b = postings.partition_point(|&id| (id as usize) < end);
            out.push(&postings[a..b]);
        }
    }

    /// Estimated heap footprint: run hash/key/id arrays + blooms + tail
    /// postings.
    pub fn bytes_estimate(&self, cols: usize) -> usize {
        let runs: usize = self
            .runs
            .iter()
            .map(|r| {
                r.ids.len() * 12 + r.keys.len() * std::mem::size_of::<Value>() + r.bloom.bytes()
            })
            .sum();
        let tail: usize = self
            .tail
            .iter()
            .map(|(k, v)| 16 + k.len() * std::mem::size_of::<Value>() + v.len() * 4 + 16)
            .sum();
        let _ = cols;
        runs + tail
    }
}

/// Which backing structure a [`crate::relation::Relation`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Append-only rows + duplicate `seen` set + hash postings (the
    /// pre-sorted-run layout, kept as a differential-testing oracle).
    Legacy,
    /// Sorted runs + bounded tail (the default).
    #[default]
    SortedRun,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rowset(tuples: &[&[i64]]) -> Vec<Box<[Value]>> {
        tuples
            .iter()
            .map(|t| t.iter().map(|&v| Value::int(v)).collect())
            .collect()
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let hashes: Vec<u64> = (0..500u64)
            .map(|i| hash_key([Value::int(i as i64)].into_iter()))
            .collect();
        let bloom = Bloom::build(hashes.iter().copied(), hashes.len());
        for h in &hashes {
            assert!(bloom.may_contain(*h));
        }
        // And it does reject most strangers (not a correctness property,
        // but a sanity check that the filter is not degenerate).
        let misses = (1000..2000u64)
            .filter(|&i| !bloom.may_contain(hash_key([Value::int(i as i64)].into_iter())))
            .count();
        assert!(misses > 800, "bloom rejects only {misses}/1000 strangers");
    }

    #[test]
    fn fast_hash_is_deterministic_and_spreads() {
        let a = hash_key([Value::int(1), Value::sym("x")].into_iter());
        let b = hash_key([Value::int(1), Value::sym("x")].into_iter());
        assert_eq!(a, b);
        // Distinct low-entropy inputs land on distinct hashes.
        let hashes: HashSet<u64> = (0..10_000i64)
            .map(|i| hash_key([Value::int(i)].into_iter()))
            .collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn probe_hits_spill_past_inline_capacity() {
        let segs: Vec<Vec<u32>> = (0..12u32).map(|i| vec![i * 2, i * 2 + 1]).collect();
        let mut hits = ProbeHits::new();
        for seg in &segs {
            hits.push(seg);
        }
        assert_eq!(hits.len(), 24);
        assert_eq!(hits.to_vec(), (0..24).collect::<Vec<u32>>());
    }

    #[test]
    fn tuple_runs_dedup_across_seal_and_merge() {
        let rows = rowset(&[&[1, 2], &[3, 4], &[5, 6], &[7, 8], &[9, 10]]);
        let mut runs = TupleRuns::default();
        for row in &rows[..2] {
            runs.note_insert(row.clone());
        }
        runs.seal_to(&rows[..2], 2);
        for row in &rows[2..] {
            runs.note_insert(row.clone());
        }
        runs.seal_to(&rows, 5);
        assert!(runs.wants_merge());
        runs.merge_last_two();
        assert_eq!(runs.run_count(), 1);
        for row in &rows {
            assert!(runs.contains(&rows, row));
        }
        assert!(!runs.contains(&rows, &rowset(&[&[2, 1]])[0]));
    }

    #[test]
    fn dedup_verifies_tuples_behind_hash_matches() {
        // Membership must verify the actual tuple behind a hash match:
        // absent tuples answer false even when the bloom says "maybe".
        let rows: Vec<Box<[Value]>> = (0..2000i64)
            .map(|i| [Value::int(i), Value::int(i * 3)].into_iter().collect())
            .collect();
        let mut runs = TupleRuns::default();
        runs.seal_to(&rows, rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert!(runs.contains(&rows, row), "row {i} lost");
            let absent = [row[0], Value::int(-1)];
            assert!(!runs.contains(&rows, &absent));
        }
    }

    #[test]
    fn index_runs_probe_matches_linear_scan() {
        // Rows with key = i % 3 in column 0.
        let tuples: Vec<Vec<i64>> = (0..50i64).map(|i| vec![i % 3, i]).collect();
        let rows: Vec<Box<[Value]>> = tuples
            .iter()
            .map(|t| t.iter().map(|&v| Value::int(v)).collect())
            .collect();
        let cols = [0usize];
        let mut idx = IndexRuns::default();
        idx.seal_range(&rows, &cols, 0, 20);
        idx.seal_range(&rows, &cols, 20, 35);
        idx.merge_last_two(&cols);
        for (id, row) in rows.iter().enumerate().skip(35) {
            idx.tail_insert(&cols, row, id as u32);
        }
        for key in 0..3i64 {
            for (start, end) in [(0, 50), (5, 40), (17, 23), (35, 50), (40, 40)] {
                let mut hits = ProbeHits::new();
                idx.probe(&[Value::int(key)], start, end, &mut hits);
                let expect: Vec<u32> = (start..end)
                    .filter(|&i| tuples[i][0] == key)
                    .map(|i| i as u32)
                    .collect();
                assert_eq!(hits.to_vec(), expect, "key {key} range {start}..{end}");
            }
        }
    }
}

//! Derivation-tree provenance.
//!
//! §1.1 of the paper defines the answer semantics via *derivation trees*:
//! every derived fact has a finite tree whose root is the fact, whose
//! leaves are base facts, and whose internal nodes are labeled by the rule
//! that generated them. The engine records the *first* justification of
//! each derived fact (sufficient for exhibiting one derivation tree, which
//! is all the paper's proofs need).

use std::collections::HashMap;

use datalog_ast::Value;

use crate::database::{Database, PredId};

/// One recorded justification: which rule fired, from which premise rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Justification {
    /// Index of the rule in the evaluated program.
    pub rule_idx: usize,
    /// The premise facts, as `(predicate, row-id)` pairs in body order.
    pub premises: Vec<(PredId, u32)>,
}

/// First-derivation provenance for one evaluation.
///
/// Equality compares the full fact → justification map; the parallel
/// evaluator's determinism tests use it to assert that any thread count
/// records byte-identical provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    just: HashMap<(PredId, u32), Justification>,
}

/// A materialized derivation tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivationTree {
    /// A base (or seeded) fact: no recorded justification.
    Leaf {
        /// Rendered fact, e.g. `p(1, 2)`.
        fact: String,
    },
    /// A derived fact.
    Node {
        /// Rendered fact.
        fact: String,
        /// Rule index that generated the fact.
        rule_idx: usize,
        /// Subtrees for the body facts.
        children: Vec<DerivationTree>,
    },
}

impl DerivationTree {
    /// Height of the tree; a base fact "may be viewed as a derivation tree
    /// of height one" (§1.1).
    pub fn height(&self) -> usize {
        match self {
            DerivationTree::Leaf { .. } => 1,
            DerivationTree::Node { children, .. } => {
                1 + children.iter().map(|c| c.height()).max().unwrap_or(0)
            }
        }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        match self {
            DerivationTree::Leaf { .. } => 1,
            DerivationTree::Node { children, .. } => {
                1 + children.iter().map(|c| c.size()).sum::<usize>()
            }
        }
    }

    /// Render as an indented outline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            DerivationTree::Leaf { fact } => {
                let _ = writeln!(out, "{pad}{fact}   [base]");
            }
            DerivationTree::Node {
                fact,
                rule_idx,
                children,
            } => {
                let _ = writeln!(out, "{pad}{fact}   [rule {rule_idx}]");
                for c in children {
                    c.render_into(out, depth + 1);
                }
            }
        }
    }
}

impl Provenance {
    /// Empty provenance store.
    pub fn new() -> Provenance {
        Provenance::default()
    }

    /// Record the first justification of a fact (later ones are ignored).
    pub fn record(
        &mut self,
        pred: PredId,
        row: u32,
        rule_idx: usize,
        premises: Vec<(PredId, u32)>,
    ) {
        self.just
            .entry((pred, row))
            .or_insert(Justification { rule_idx, premises });
    }

    /// Look up a recorded justification.
    pub fn justification(&self, pred: PredId, row: u32) -> Option<&Justification> {
        self.just.get(&(pred, row))
    }

    /// Number of recorded justifications.
    pub fn len(&self) -> usize {
        self.just.len()
    }

    /// Whether no justification was recorded.
    pub fn is_empty(&self) -> bool {
        self.just.is_empty()
    }

    /// Materialize the derivation tree for a fact given by value, or `None`
    /// if the fact is not in the database.
    pub fn derivation_tree(
        &self,
        db: &Database,
        pred: PredId,
        tuple: &[Value],
    ) -> Option<DerivationTree> {
        let rel = db.relation(pred);
        // Locate the row id (linear scan is fine: provenance is a debugging
        // / proof-exhibition facility, not a hot path).
        let row = rel.iter().position(|r| r == tuple)?;
        Some(self.tree_for(db, pred, row as u32))
    }

    fn tree_for(&self, db: &Database, pred: PredId, row: u32) -> DerivationTree {
        let fact = render_fact(db, pred, row);
        match self.just.get(&(pred, row)) {
            None => DerivationTree::Leaf { fact },
            Some(j) => DerivationTree::Node {
                fact,
                rule_idx: j.rule_idx,
                children: j
                    .premises
                    .iter()
                    .map(|&(p, r)| self.tree_for(db, p, r))
                    .collect(),
            },
        }
    }
}

fn render_fact(db: &Database, pred: PredId, row: u32) -> String {
    let pref = db.pred_ref(pred);
    let values = db.relation(pred).row(row as usize);
    if values.is_empty() {
        pref.to_string()
    } else {
        let args: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        format!("{pref}({})", args.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use datalog_ast::PredRef;

    #[test]
    fn record_keeps_first_justification() {
        let mut p = Provenance::new();
        p.record(PredId(0), 0, 1, vec![]);
        p.record(PredId(0), 0, 2, vec![(PredId(1), 3)]);
        assert_eq!(p.justification(PredId(0), 0).unwrap().rule_idx, 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn tree_materialization() {
        let mut db = Database::new();
        let e = db.register(&PredRef::new("e"), 2);
        let a = db.register(&PredRef::new("a"), 2);
        db.insert(e, &[Value::int(1), Value::int(2)]);
        db.insert(e, &[Value::int(2), Value::int(3)]);
        db.insert(a, &[Value::int(2), Value::int(3)]); // row 0
        db.insert(a, &[Value::int(1), Value::int(3)]); // row 1
        let mut p = Provenance::new();
        p.record(a, 0, 1, vec![(e, 1)]);
        p.record(a, 1, 0, vec![(e, 0), (a, 0)]);
        let tree = p
            .derivation_tree(&db, a, &[Value::int(1), Value::int(3)])
            .unwrap();
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.size(), 4);
        let s = tree.render();
        assert!(s.contains("a(1, 3)"));
        assert!(s.contains("[base]"));
        assert!(s.contains("[rule 0]"));
        // Missing fact: no tree.
        assert!(p
            .derivation_tree(&db, a, &[Value::int(9), Value::int(9)])
            .is_none());
    }
}

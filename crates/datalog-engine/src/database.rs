//! Databases: interned predicates plus their relations.

use std::collections::BTreeSet;
use std::collections::HashMap;

use datalog_ast::{PredRef, Value};

use crate::facts::FactSet;
use crate::relation::Relation;
use crate::storage::StorageMode;

/// Dense predicate id within one [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// A database: one [`Relation`] per registered predicate.
///
/// Per the paper's §1.1, the EDB and the derived (IDB) predicates live in
/// the same store; evaluation starts from the EDB facts (plus any seeded
/// IDB facts when running *uniform*-equivalence tests) and monotonically
/// grows the IDB relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    by_ref: HashMap<PredRef, PredId>,
    refs: Vec<PredRef>,
    relations: Vec<Relation>,
    mode: StorageMode,
}

impl Database {
    /// Empty database (sorted-run storage).
    pub fn new() -> Database {
        Database::default()
    }

    /// Empty database with an explicit storage backend for its relations.
    pub fn with_storage(mode: StorageMode) -> Database {
        Database {
            mode,
            ..Database::default()
        }
    }

    /// The storage backend newly registered relations use.
    pub fn storage_mode(&self) -> StorageMode {
        self.mode
    }

    /// Register (or look up) a predicate with the given arity.
    ///
    /// # Panics
    /// Panics if the predicate was already registered with another arity —
    /// programs are arity-validated before they reach the engine.
    pub fn register(&mut self, pred: &PredRef, arity: usize) -> PredId {
        if let Some(&id) = self.by_ref.get(pred) {
            assert_eq!(
                self.relations[id.0 as usize].arity(),
                arity,
                "predicate {pred} re-registered with different arity"
            );
            return id;
        }
        let id = PredId(self.refs.len() as u32);
        self.by_ref.insert(pred.clone(), id);
        self.refs.push(pred.clone());
        self.relations.push(Relation::with_mode(arity, self.mode));
        id
    }

    /// Look up a registered predicate.
    pub fn pred_id(&self, pred: &PredRef) -> Option<PredId> {
        self.by_ref.get(pred).copied()
    }

    /// The `PredRef` behind an id.
    pub fn pred_ref(&self, id: PredId) -> &PredRef {
        &self.refs[id.0 as usize]
    }

    /// Number of registered predicates.
    pub fn pred_count(&self) -> usize {
        self.refs.len()
    }

    /// Relation for a predicate id.
    pub fn relation(&self, id: PredId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Mutable relation for a predicate id.
    pub fn relation_mut(&mut self, id: PredId) -> &mut Relation {
        &mut self.relations[id.0 as usize]
    }

    /// Build the index over `cols` on a predicate's relation (see
    /// [`Relation::ensure_index`]). The evaluator calls this for every
    /// probe column set its compiled join plans need, *before* the first
    /// iteration — after that the whole database can be probed through
    /// `&Database` and therefore shared across worker threads.
    pub fn ensure_index(&mut self, id: PredId, cols: &[usize]) {
        self.relations[id.0 as usize].ensure_index(cols);
    }

    /// Insert a fact; predicate must be registered. Returns `true` if new.
    pub fn insert(&mut self, id: PredId, tuple: &[Value]) -> bool {
        self.relations[id.0 as usize].insert(tuple)
    }

    /// Load every fact of a [`FactSet`], registering unregistered
    /// predicates with the arity observed in the data.
    pub fn load(&mut self, facts: &FactSet) {
        for (pred, tuple) in facts.iter() {
            let id = self.register(pred, tuple.len());
            self.insert(id, tuple);
        }
    }

    /// Export all facts as a [`FactSet`].
    pub fn dump(&self) -> FactSet {
        let mut fs = FactSet::new();
        for (i, rel) in self.relations.iter().enumerate() {
            let pred = &self.refs[i];
            for row in rel.iter() {
                fs.insert(pred.clone(), row.to_vec());
            }
        }
        fs
    }

    /// Export the facts of a single predicate.
    pub fn dump_pred(&self, id: PredId) -> Vec<Vec<Value>> {
        self.relation(id).iter().map(|r| r.to_vec()).collect()
    }

    /// All constants stored anywhere (active domain).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations
            .iter()
            .flat_map(|r| r.iter().flat_map(|row| row.iter().copied()))
            .collect()
    }

    /// Total stored tuples.
    pub fn total_facts(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Seal every relation's mutable tail into sorted runs (no-op on
    /// legacy storage). The evaluator calls this at each freeze barrier.
    pub fn seal_storage(&mut self) {
        for rel in &mut self.relations {
            rel.seal();
        }
    }

    /// Total sealed sorted runs across all relations (0 on legacy).
    pub fn storage_runs(&self) -> usize {
        self.relations.iter().map(|r| r.run_count()).sum()
    }

    /// Estimated heap bytes of acceleration structures across relations.
    pub fn storage_overhead_bytes(&self) -> usize {
        self.relations
            .iter()
            .map(|r| r.overhead_bytes_estimate())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut db = Database::new();
        let p = PredRef::new("p");
        let a = db.register(&p, 2);
        let b = db.register(&p, 2);
        assert_eq!(a, b);
        assert_eq!(db.pred_count(), 1);
        assert_eq!(db.pred_ref(a), &p);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn register_arity_clash_panics() {
        let mut db = Database::new();
        let p = PredRef::new("p");
        db.register(&p, 2);
        db.register(&p, 3);
    }

    #[test]
    fn load_dump_roundtrip() {
        let mut fs = FactSet::new();
        fs.insert(PredRef::new("p"), vec![Value::int(1), Value::int(2)]);
        fs.insert(PredRef::new("q"), vec![Value::sym("a")]);
        let mut db = Database::new();
        db.load(&fs);
        assert_eq!(db.total_facts(), 2);
        assert_eq!(db.dump(), fs);
        let id = db.pred_id(&PredRef::new("p")).unwrap();
        assert_eq!(db.dump_pred(id).len(), 1);
    }

    #[test]
    fn adorned_predicates_get_separate_relations() {
        let mut db = Database::new();
        let p_nn = db.register(&PredRef::adorned("p", "nn"), 2);
        let p_nd = db.register(&PredRef::adorned("p", "nd"), 1);
        assert_ne!(p_nn, p_nd);
        db.insert(p_nn, &[Value::int(1), Value::int(2)]);
        db.insert(p_nd, &[Value::int(1)]);
        assert_eq!(db.relation(p_nn).len(), 1);
        assert_eq!(db.relation(p_nd).len(), 1);
    }
}

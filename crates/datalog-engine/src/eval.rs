//! Naive and semi-naive bottom-up fixpoint evaluation.
//!
//! This is the execution model of §1.1 of the paper: start from the EDB
//! (plus any seeded IDB facts, for uniform-equivalence tests), apply every
//! rule to a fixpoint, then select/project the query predicate.
//!
//! The semi-naive strategy addresses each rule once per *delta literal*: at
//! iteration `k` the literal designated as the delta ranges over the rows
//! its predicate gained during iteration `k-1`; literals to its left see the
//! full relation as of the start of iteration `k`, literals to its right see
//! the relation as of the start of iteration `k-1`. This enumerates every
//! new body instantiation exactly once.
//!
//! The **boolean-cut runtime** of §3.1 is implemented here: when the program
//! was rewritten so that existential subqueries became zero-arity `B`
//! predicates, enabling [`EvalOptions::boolean_cut`] retires each `B` rule
//! from the fixpoint as soon as `B` is proven, then transitively retires
//! rules whose head predicate no longer has any consumer (the paper's
//! "if `q4` does not appear anywhere else in the program, the rule defining
//! it can also be discarded after `B2` is shown true").
//!
//! # Execution model: freeze, fan out, merge
//!
//! Each fixpoint iteration runs in two halves. First the database is
//! *frozen*: the iteration's work is decomposed into [`Task`]s — one per
//! (rule, delta-variant, chunk) — whose enumeration reads only state fixed
//! at the iteration barrier (rows below the iteration-start marks, plus the
//! up-front composite indexes). Enumeration writes candidate tuples and
//! their premises into per-task buffers. Then the buffers are *merged*:
//! applied to the database in the fixed task order, which is where
//! deduplication, provenance, the fact budget, and the per-rule profile
//! attribution happen.
//!
//! Because the task list is planned from frozen state and the merge replays
//! buffers in task order, the executor is irrelevant to the result: running
//! tasks serially or fanning them out over [`EvalOptions::threads`] workers
//! (a `std::thread::scope` pool — enumeration needs only `&Database`)
//! produces byte-identical databases, stats, provenance, and profile
//! counters at any thread count.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use datalog_ast::{subst, Program, Term, Value};
use datalog_trace::metrics::EvalHists;
use datalog_trace::{EvalProfile, IterationProfile, PredDelta, RuleProfile};

use crate::cancel::CancelToken;
use crate::database::{Database, PredId};
use crate::facts::{AnswerSet, FactSet};
use crate::provenance::Provenance;
use crate::stats::EvalStats;
use crate::EngineError;

/// How many joined rows a rule application may enumerate between
/// cooperative limit checks (deadline / cancellation). Small enough that a
/// single pathological cross product observes its deadline well within the
/// 2× envelope the server promises; large enough that the check (one
/// `Instant::now()` + two atomic loads) is amortized to noise.
const LIMIT_CHECK_INTERVAL: u32 = 4096;

/// Minimum outer-literal rows per chunk when splitting a large range across
/// tasks. Chunk boundaries are a pure function of the frozen range length
/// (never of the thread count), so the task list — and with it every stat —
/// is identical no matter how many workers execute it.
const CHUNK_MIN_ROWS: usize = 1024;

/// Upper bound on chunks per join variant, so tiny per-chunk buffers don't
/// drown the merge in overhead on huge deltas.
const MAX_CHUNKS_PER_VARIANT: usize = 8;

/// Minimum estimated work (sum of every task's body-literal range lengths)
/// before an iteration engages the worker pool. Below this, thread spawn
/// overhead exceeds the enumeration itself; since the executor cannot
/// change the result, falling back to the serial path is free.
const PARALLEL_MIN_WORK: usize = 2048;

/// Fixpoint strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-derive everything from the full relations each iteration.
    Naive,
    /// Standard semi-naive (delta-driven) evaluation.
    #[default]
    SemiNaive,
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Fixpoint strategy (default: semi-naive).
    pub strategy: Strategy,
    /// Enable the §3.1 boolean-cut runtime.
    pub boolean_cut: bool,
    /// Record derivation provenance (first derivation per fact).
    pub record_provenance: bool,
    /// Greedily reorder body literals at compile time so that each literal
    /// shares variables with (or has constants bound before) the ones
    /// already placed — turning cold scans into index probes. Off by
    /// default so the experiment counters reflect source order.
    pub reorder_joins: bool,
    /// Collect a per-rule / per-iteration [`EvalProfile`]: each rule's
    /// share of the [`EvalStats`] counters plus wall time, the
    /// per-iteration predicate-growth timeline, and the iteration at which
    /// the §3.1 cut retired each rule. Off by default; when off, the only
    /// cost is one branch per rule per iteration (the join inner loops are
    /// untouched either way — attribution works by differencing the global
    /// counters around each rule's join variants).
    pub profile: bool,
    /// Safety bound on fixpoint iterations.
    pub max_iterations: usize,
    /// Wall-clock deadline. Checked cooperatively at every iteration
    /// boundary and every [`LIMIT_CHECK_INTERVAL`] joined rows inside a
    /// rule application; exceeding it returns
    /// [`EngineError::DeadlineExceeded`] with the partial [`EvalStats`].
    pub deadline: Option<Instant>,
    /// Bound on *new* derived facts. Checked exactly, at every successful
    /// derivation; exceeding it returns [`EngineError::BudgetExceeded`].
    pub fact_budget: Option<u64>,
    /// Cooperative cancellation flag, polled on the same cadence as the
    /// deadline. Triggering it returns [`EngineError::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Worker threads for the enumeration half of each fixpoint iteration
    /// (`0` and `1` both mean serial). Any value yields byte-identical
    /// results: tasks are planned from frozen iteration-start state, workers
    /// only enumerate into buffers, and the merge replays the buffers in
    /// fixed (rule, variant, chunk) order.
    pub threads: usize,
    /// Always-on telemetry histograms (task enumeration wall, per-worker
    /// queue wait, merge stall), shared with a server's metric registry.
    /// `None` costs one branch per task; a handle from a disabled registry
    /// costs one more branch inside [`datalog_trace::Histogram::record`].
    pub metrics: Option<EvalHists>,
    /// Per-predicate row-count estimates (rendered predicate name →
    /// estimated rows) that [`EvalOptions::reorder_joins`] uses as cost
    /// tie-breaks: among literals sharing equally many bound variables,
    /// the cheaper relation is joined first, and the seed literal prefers
    /// the smallest estimate. The server evaluates these from the static
    /// size-bound analysis (`datalog_lint::bounds`) against live EDB
    /// cardinalities; `None` keeps the purely structural greedy order
    /// byte-for-byte.
    pub cost_hints: Option<std::sync::Arc<std::collections::BTreeMap<String, u64>>>,
    /// Evaluate on the legacy append-only storage backend (duplicate
    /// `seen` set + hash postings) instead of sorted runs. Results are
    /// byte-identical either way — this exists for differential testing
    /// (`fuzz --smoke`) and the E16 storage experiment.
    pub legacy_storage: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            strategy: Strategy::SemiNaive,
            boolean_cut: false,
            record_provenance: false,
            reorder_joins: false,
            profile: false,
            max_iterations: 1_000_000,
            deadline: None,
            fact_budget: None,
            cancel: None,
            threads: 1,
            metrics: None,
            cost_hints: None,
            legacy_storage: false,
        }
    }
}

/// Result of a fixpoint evaluation.
#[derive(Debug)]
pub struct EvalOutput {
    /// The saturated database (EDB + all derived facts).
    pub database: Database,
    /// Instrumentation counters.
    pub stats: EvalStats,
    /// Provenance, if requested.
    pub provenance: Option<Provenance>,
    /// Per-rule / per-iteration profile, if [`EvalOptions::profile`] was
    /// set. Its per-rule counters partition the global [`EvalStats`]: each
    /// counter summed over all rules equals the global value.
    pub profile: Option<EvalProfile>,
}

/// A term slot in a compiled rule: constant or rule-local variable index.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Const(Value),
    Var(u16),
}

#[derive(Debug, Clone)]
struct LitPlan {
    pred: PredId,
    slots: Vec<Slot>,
    /// Columns bound when the join reaches this literal (constants plus
    /// variables bound by earlier body literals), sorted ascending. Planned
    /// at compile time; non-empty sets name the composite index the literal
    /// probes, and the union over all plans is built up front so probing
    /// never mutates the database. Empty means the literal scans its range.
    probe: Box<[usize]>,
}

#[derive(Debug, Clone)]
pub(crate) struct RulePlan {
    rule_idx: usize,
    head: PredId,
    head_slots: Vec<Slot>,
    body: Vec<LitPlan>,
    /// Negated literals, checked once the positive body is fully matched.
    /// Safety guarantees all their variables are bound by then, and
    /// stratification guarantees their relations are complete.
    negatives: Vec<LitPlan>,
    nvars: usize,
}

/// Which row range a literal reads in one join variant.
#[derive(Debug, Clone, Copy)]
enum Range {
    Full,
    Delta,
    Old,
}

/// Which resource limit tripped mid-evaluation. Converted to an
/// [`EngineError`] (with the freshest stats and elapsed time) once the
/// join recursion has unwound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Trip {
    Deadline,
    Budget(u64),
    Cancelled,
}

/// One schedulable unit of an iteration: a (rule, delta-variant, chunk)
/// triple. `outer` is the row-id range the *first* body literal enumerates
/// (its delta or full range, possibly one chunk of it); every other literal
/// derives its range from the variant and the frozen marks. Planned from
/// frozen state, so the task list is identical at any thread count.
#[derive(Debug, Clone, Copy)]
struct Task {
    plan_idx: usize,
    /// `None` = all literals read `Full` (naive strategy / seed round).
    delta_idx: Option<usize>,
    outer: (usize, usize),
    /// First chunk of its variant: carries the variant's `evals` count in
    /// the profile so chunking doesn't inflate it.
    lead: bool,
}

/// The frozen, shareable view of one iteration: everything enumeration
/// needs, none of it mutable. `&IterView` is `Send + Sync`, which is what
/// lets `std::thread::scope` workers run [`enumerate_task`] concurrently.
struct IterView<'a> {
    db: &'a Database,
    plans: &'a [RulePlan],
    mark_prev: &'a [usize],
    mark_cur: &'a [usize],
    boolean_cut: bool,
    deadline: Option<Instant>,
    cancel: Option<&'a CancelToken>,
}

impl IterView<'_> {
    fn bounds(&self, pred: PredId, range: Range) -> (usize, usize) {
        let p = pred.0 as usize;
        match range {
            Range::Full => (0, self.mark_cur[p]),
            Range::Delta => (self.mark_prev[p], self.mark_cur[p]),
            Range::Old => (0, self.mark_prev[p]),
        }
    }
}

/// One buffered candidate: the head tuple and its premise rows.
type Emission = (Box<[Value]>, Box<[(PredId, u32)]>);

/// Everything one task's enumeration produced: the candidate tuples (with
/// premises, for provenance) in discovery order, plus the counters the
/// merge folds into the global [`EvalStats`].
#[derive(Debug, Default)]
struct TaskOut {
    emissions: Vec<Emission>,
    derivations: u64,
    tuples_scanned: u64,
    index_probes: u64,
    wall_ns: u64,
    /// Deadline or cancellation observed mid-enumeration. The merge adopts
    /// it (in task order) after applying this task's buffer.
    trip: Option<Trip>,
}

/// Enumerate one task against the frozen view. Pure with respect to the
/// database: all effects land in the returned [`TaskOut`].
fn enumerate_task(view: &IterView<'_>, task: Task) -> TaskOut {
    let t0 = Instant::now();
    let mut en = Enumerator {
        view,
        plan: &view.plans[task.plan_idx],
        delta_idx: task.delta_idx,
        until_check: LIMIT_CHECK_INTERVAL,
        stop: false,
        out: TaskOut::default(),
    };
    let mut bindings: Vec<Option<Value>> = vec![None; en.plan.nvars];
    let mut premises: Vec<(PredId, u32)> = Vec::with_capacity(en.plan.body.len());
    en.join_from(task.outer, 0, &mut bindings, &mut premises);
    en.out.wall_ns = t0.elapsed().as_nanos() as u64;
    en.out
}

/// The per-task join state. Reads only the frozen [`IterView`]; writes only
/// its own [`TaskOut`].
struct Enumerator<'v> {
    view: &'v IterView<'v>,
    plan: &'v RulePlan,
    delta_idx: Option<usize>,
    /// Countdown to the next cooperative limit check.
    until_check: u32,
    /// Set once a boolean head found its witness (§3.1): unwind, one
    /// emission is all the merge will keep anyway.
    stop: bool,
    out: TaskOut,
}

impl Enumerator<'_> {
    /// Poll deadline and cancellation. Returns `true` (recording the trip)
    /// if enumeration must unwind. The fact budget is *not* checked here:
    /// it counts distinct new facts, which only the merge can know.
    fn check_limits(&mut self) -> bool {
        if self.out.trip.is_some() {
            return true;
        }
        if let Some(d) = self.view.deadline {
            if Instant::now() >= d {
                self.out.trip = Some(Trip::Deadline);
                return true;
            }
        }
        if let Some(c) = self.view.cancel {
            if c.is_cancelled() {
                self.out.trip = Some(Trip::Cancelled);
                return true;
            }
        }
        false
    }

    fn join_from(
        &mut self,
        outer: (usize, usize),
        lit: usize,
        bindings: &mut Vec<Option<Value>>,
        premises: &mut Vec<(PredId, u32)>,
    ) {
        let plan = self.plan;
        if lit == plan.body.len() {
            if self.negatives_hold(bindings) {
                self.emit(bindings, premises);
            }
            return;
        }
        let lp = &plan.body[lit];
        let (start, end) = if lit == 0 {
            outer
        } else {
            let range = match self.delta_idx {
                None => Range::Full,
                Some(d) if lit < d => Range::Full,
                Some(d) if lit == d => Range::Delta,
                Some(_) => Range::Old,
            };
            self.view.bounds(lp.pred, range)
        };
        if start >= end {
            return;
        }
        if lp.probe.is_empty() {
            // No bound column: scan the range.
            for row_id in start as u32..end as u32 {
                if !self.try_row(outer, lit, row_id, bindings, premises) {
                    return;
                }
            }
        } else {
            // Probe the composite index over every bound column; the
            // binary-searched subslice holds exactly this range's hits.
            self.out.index_probes += 1;
            let key: Vec<Value> = lp
                .probe
                .iter()
                .map(|&col| match &lp.slots[col] {
                    Slot::Const(c) => *c,
                    Slot::Var(v) => bindings[*v as usize]
                        .expect("compile plans only bound columns as probe columns"),
                })
                .collect();
            let hits = self
                .view
                .db
                .relation(lp.pred)
                .probe_range(&lp.probe, &key, start, end);
            for row_id in hits.iter() {
                if !self.try_row(outer, lit, row_id, bindings, premises) {
                    return;
                }
            }
        }
    }

    /// Match one candidate row at `lit` and recurse. Returns `false` when
    /// the enumeration must unwind (limit trip or boolean stop).
    fn try_row(
        &mut self,
        outer: (usize, usize),
        lit: usize,
        row_id: u32,
        bindings: &mut Vec<Option<Value>>,
        premises: &mut Vec<(PredId, u32)>,
    ) -> bool {
        self.out.tuples_scanned += 1;
        // Cooperative limit check: a task enumerating a pathological cross
        // product must still observe its deadline (or cancellation)
        // promptly, not only at the iteration barrier.
        self.until_check -= 1;
        if self.until_check == 0 {
            self.until_check = LIMIT_CHECK_INTERVAL;
            if self.check_limits() {
                return false;
            }
        }
        let lp = &self.plan.body[lit];
        let row = self.view.db.relation(lp.pred).row(row_id as usize);
        // Match the row against the slots, recording new bindings so we can
        // undo them on backtrack.
        let mut bound_here: Vec<u16> = Vec::new();
        let ok = lp.slots.iter().enumerate().all(|(col, s)| match s {
            Slot::Const(c) => row[col] == *c,
            Slot::Var(v) => match bindings[*v as usize] {
                Some(val) => val == row[col],
                None => {
                    bindings[*v as usize] = Some(row[col]);
                    bound_here.push(*v);
                    true
                }
            },
        });
        if ok {
            premises.push((lp.pred, row_id));
            self.join_from(outer, lit + 1, bindings, premises);
            premises.pop();
        }
        for v in bound_here {
            bindings[v as usize] = None;
        }
        !(self.stop || self.out.trip.is_some())
    }

    /// Check the negated literals under fully-bound `bindings`.
    /// Stratification guarantees the negated relations are complete, so a
    /// plain membership test implements negation-as-failure.
    fn negatives_hold(&mut self, bindings: &[Option<Value>]) -> bool {
        for neg in &self.plan.negatives {
            let tuple: Vec<Value> = neg
                .slots
                .iter()
                .map(|s| match s {
                    Slot::Const(c) => *c,
                    Slot::Var(v) => bindings[*v as usize]
                        .expect("safety guarantees negated variables are bound"),
                })
                .collect();
            self.out.index_probes += 1;
            if self.view.db.relation(neg.pred).contains(&tuple) {
                return false;
            }
        }
        true
    }

    fn emit(&mut self, bindings: &[Option<Value>], premises: &[(PredId, u32)]) {
        self.out.derivations += 1;
        let tuple: Box<[Value]> = self
            .plan
            .head_slots
            .iter()
            .map(|s| match s {
                Slot::Const(c) => *c,
                Slot::Var(v) => {
                    bindings[*v as usize].expect("safety guarantees head variables are bound")
                }
            })
            .collect();
        self.out.emissions.push((tuple, premises.into()));
        // One witness suffices for a boolean head (section 3.1's cut).
        if self.view.boolean_cut && self.plan.head_slots.is_empty() {
            self.stop = true;
        }
    }
}

pub(crate) struct Machine<'a> {
    pub(crate) db: &'a mut Database,
    pub(crate) plans: Vec<RulePlan>,
    /// Active rule mask (boolean cut retires rules by clearing bits).
    pub(crate) active: Vec<bool>,
    /// Per-predicate row-count at the start of the previous iteration.
    pub(crate) mark_prev: Vec<usize>,
    /// Per-predicate row-count at the start of the current iteration.
    pub(crate) mark_cur: Vec<usize>,
    pub(crate) stats: EvalStats,
    pub(crate) provenance: Option<Provenance>,
    /// Per-rule counters + timeline, accumulated when profiling is on.
    pub(crate) profile: Option<EvalProfile>,
    pub(crate) query_pred: Option<PredId>,
    pub(crate) boolean_cut: bool,
    /// Worker threads for the enumeration half (1 = serial).
    pub(crate) threads: usize,
    /// Telemetry histograms shared with the serving layer (see
    /// [`EvalOptions::metrics`]).
    pub(crate) metrics: Option<EvalHists>,
    /// Wall-clock start of the evaluation (for deadline checks and the
    /// `elapsed_ms` a deadline trip reports).
    pub(crate) started: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) fact_budget: Option<u64>,
    pub(crate) cancel: Option<CancelToken>,
    /// A tripped limit; once set, the merge stops applying buffers and the
    /// fixpoint loop converts it into the corresponding [`EngineError`].
    pub(crate) trip: Option<Trip>,
}

impl<'a> Machine<'a> {
    /// Poll deadline and cancellation. Returns `true` (and records the
    /// trip) if the evaluation must unwind. The derived-fact budget is
    /// checked exactly in [`Machine::emit_head`] instead.
    fn check_limits(&mut self) -> bool {
        if self.trip.is_some() {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.trip = Some(Trip::Deadline);
                return true;
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                self.trip = Some(Trip::Cancelled);
                return true;
            }
        }
        false
    }

    /// Convert a recorded trip into its error, with up-to-date stats.
    fn take_trip(&mut self) -> Option<EngineError> {
        self.trip.take().map(|t| match t {
            Trip::Deadline => EngineError::DeadlineExceeded {
                elapsed_ms: self.started.elapsed().as_millis() as u64,
                stats: self.stats,
            },
            Trip::Budget(budget) => EngineError::BudgetExceeded {
                budget,
                stats: self.stats,
            },
            Trip::Cancelled => EngineError::Cancelled { stats: self.stats },
        })
    }

    fn bounds(&self, pred: PredId, range: Range) -> (usize, usize) {
        let p = pred.0 as usize;
        match range {
            Range::Full => (0, self.mark_cur[p]),
            Range::Delta => (self.mark_prev[p], self.mark_cur[p]),
            Range::Old => (0, self.mark_prev[p]),
        }
    }

    /// The frozen, shareable view of the current iteration.
    fn view(&self) -> IterView<'_> {
        IterView {
            db: self.db,
            plans: &self.plans,
            mark_prev: &self.mark_prev,
            mark_cur: &self.mark_cur,
            boolean_cut: self.boolean_cut,
            deadline: self.deadline,
            cancel: self.cancel.as_ref(),
        }
    }

    /// Decompose one iteration into its tasks, in the fixed (rule, variant,
    /// chunk) merge order, plus an estimate of the total enumeration work
    /// (sum of body-literal range lengths) used to decide whether the
    /// worker pool is worth engaging. Reads only frozen iteration-start
    /// state — never the thread count — so every executor applies the
    /// identical task sequence.
    fn plan_tasks(&self, mine: &[usize], seed_round: bool) -> (Vec<Task>, usize) {
        let mut tasks = Vec::new();
        let mut work = 0usize;
        for &i in mine {
            if !self.active[i] {
                continue;
            }
            let plan = &self.plans[i];
            // Under the boolean cut, a proven zero-arity head needs no
            // further derivations at all.
            if self.boolean_cut
                && plan.head_slots.is_empty()
                && !self.db.relation(plan.head).is_empty()
            {
                continue;
            }
            if seed_round {
                work += self.push_variant(&mut tasks, i, None);
            } else {
                for lit in 0..plan.body.len() {
                    let (s, e) = self.bounds(plan.body[lit].pred, Range::Delta);
                    if s < e {
                        work += self.push_variant(&mut tasks, i, Some(lit));
                    }
                }
            }
        }
        (tasks, work)
    }

    /// Push one join variant's tasks, splitting a large outer range into
    /// chunks, and return the variant's estimated work. Chunk count and
    /// boundaries depend only on the frozen range length.
    fn push_variant(
        &self,
        tasks: &mut Vec<Task>,
        plan_idx: usize,
        delta_idx: Option<usize>,
    ) -> usize {
        let plan = &self.plans[plan_idx];
        let outer = match plan.body.first() {
            None => (0, 0),
            Some(l0) => {
                let range = match delta_idx {
                    Some(0) => Range::Delta,
                    _ => Range::Full,
                };
                self.bounds(l0.pred, range)
            }
        };
        let len = outer.1 - outer.0;
        let work: usize = len
            + plan
                .body
                .iter()
                .skip(1)
                .map(|l| {
                    let (s, e) = self.bounds(l.pred, Range::Full);
                    e - s
                })
                .sum::<usize>();
        // A boolean head stops at its first witness; chunking it would only
        // enumerate witnesses the merge discards.
        let chunks = if plan.body.is_empty() || (self.boolean_cut && plan.head_slots.is_empty()) {
            1
        } else {
            (len / CHUNK_MIN_ROWS).clamp(1, MAX_CHUNKS_PER_VARIANT)
        };
        for c in 0..chunks {
            tasks.push(Task {
                plan_idx,
                delta_idx,
                outer: (outer.0 + len * c / chunks, outer.0 + len * (c + 1) / chunks),
                lead: c == 0,
            });
        }
        work
    }

    /// Serial executor: enumerate and merge each task in order. Returns
    /// (enumeration ns, merge ns) for the profiler's iteration split.
    fn run_serial(&mut self, tasks: &[Task]) -> (u64, u64) {
        let mut enum_ns = 0u64;
        let mut merge_ns = 0u64;
        for &task in tasks {
            if self.trip.is_some() {
                break;
            }
            let out = enumerate_task(&self.view(), task);
            enum_ns += out.wall_ns;
            if let Some(h) = &self.metrics {
                h.task_enum.record(out.wall_ns);
            }
            let t0 = Instant::now();
            self.apply_task(task, out);
            merge_ns += t0.elapsed().as_nanos() as u64;
        }
        if let Some(h) = &self.metrics {
            h.merge.record(merge_ns);
        }
        (enum_ns, merge_ns)
    }

    /// Parallel executor: fan enumeration out over `workers` scoped threads
    /// (work-stealing off a shared atomic cursor), then merge the buffers
    /// in task order — the same order [`Machine::run_serial`] applies them.
    fn run_parallel(&mut self, tasks: &[Task], workers: usize) -> (u64, u64) {
        let t0 = Instant::now();
        let mut slots: Vec<Option<TaskOut>> = Vec::new();
        slots.resize_with(tasks.len(), || None);
        {
            let view = self.view();
            let next = AtomicUsize::new(0);
            let hists = self.metrics.clone();
            let per_worker: Vec<Vec<(usize, TaskOut)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let view = &view;
                        let next = &next;
                        let hists = hists.clone();
                        s.spawn(move || {
                            let mut done = Vec::new();
                            let mut waited = false;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&task) = tasks.get(i) else { break };
                                if let Some(h) = &hists {
                                    if !waited {
                                        // Queue wait: fan-out start to this
                                        // worker's first claim (spawn +
                                        // scheduling latency).
                                        h.task_wait.record_duration(t0.elapsed());
                                        waited = true;
                                    }
                                }
                                let out = enumerate_task(view, task);
                                if let Some(h) = &hists {
                                    h.task_enum.record(out.wall_ns);
                                }
                                done.push((i, out));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("enumeration worker panicked"))
                    .collect()
            });
            for (i, out) in per_worker.into_iter().flatten() {
                slots[i] = Some(out);
            }
        }
        let enum_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        for (&task, out) in tasks.iter().zip(slots) {
            if self.trip.is_some() {
                break;
            }
            self.apply_task(task, out.expect("every task enumerated exactly once"));
        }
        let merge_ns = t1.elapsed().as_nanos() as u64;
        if let Some(h) = &self.metrics {
            h.merge.record(merge_ns);
        }
        (enum_ns, merge_ns)
    }

    /// Merge one task's buffer into the database, in emission order. This
    /// is the single mutation point of the fixpoint: dedup, provenance, the
    /// exact fact budget, and profile attribution all live here, so they
    /// behave identically under any executor.
    fn apply_task(&mut self, task: Task, out: TaskOut) {
        let profiling = self.profile.is_some();
        let before = profiling.then_some(self.stats);
        let t0 = profiling.then(Instant::now);
        self.stats.derivations += out.derivations;
        self.stats.tuples_scanned += out.tuples_scanned;
        self.stats.index_probes += out.index_probes;
        let head = self.plans[task.plan_idx].head;
        let rule_idx = self.plans[task.plan_idx].rule_idx;
        for (tuple, premises) in &out.emissions {
            if self.trip.is_some() {
                break;
            }
            let rel = self.db.relation_mut(head);
            let row_id = rel.len() as u32;
            if rel.insert(tuple) {
                self.stats.facts_derived += 1;
                if let Some(p) = &mut self.provenance {
                    p.record(head, row_id, rule_idx, premises.to_vec());
                }
                // Exact budget enforcement: the (budget+1)-th new fact
                // trips. Checked here, not during enumeration, because only
                // the merge knows which candidates are new.
                if let Some(budget) = self.fact_budget {
                    if self.stats.facts_derived > budget {
                        self.trip = Some(Trip::Budget(budget));
                    }
                }
            } else {
                self.stats.duplicates += 1;
            }
        }
        if self.trip.is_none() {
            self.trip = out.trip;
        }
        if let (Some(before), Some(t0)) = (before, t0) {
            let after = self.stats;
            let rule = &mut self.profile.as_mut().expect("profiling is on").rules[task.plan_idx];
            if task.lead {
                rule.evals += 1;
            }
            rule.derivations += after.derivations - before.derivations;
            rule.facts_derived += after.facts_derived - before.facts_derived;
            rule.duplicates += after.duplicates - before.duplicates;
            rule.tuples_scanned += after.tuples_scanned - before.tuples_scanned;
            rule.index_probes += after.index_probes - before.index_probes;
            rule.wall_ns += out.wall_ns + t0.elapsed().as_nanos() as u64;
        }
    }

    /// Append one iteration to the profile timeline: every predicate's
    /// growth relative to the iteration-start marks, the enumeration/merge
    /// wall split, plus rules retired by the boolean cut this iteration.
    #[allow(clippy::too_many_arguments)]
    fn record_iteration(
        &mut self,
        stratum: usize,
        wall_ns: u64,
        parallel_ns: u64,
        merge_ns: u64,
        tasks: u64,
        retired: u64,
    ) {
        let iteration = self.stats.iterations;
        let mut deltas = Vec::new();
        for p in 0..self.db.pred_count() {
            let id = PredId(p as u32);
            let total = self.db.relation(id).len();
            let new = total - self.mark_cur[p];
            if new > 0 {
                deltas.push(PredDelta {
                    pred: self.db.pred_ref(id).to_string(),
                    new_facts: new as u64,
                    total: total as u64,
                });
            }
        }
        if let Some(profile) = &mut self.profile {
            profile.timeline.push(IterationProfile {
                iteration,
                stratum,
                wall_ns,
                parallel_ns,
                merge_ns,
                tasks,
                deltas,
                rules_retired: retired,
            });
        }
    }

    /// Record the iteration at which the boolean cut retired rule `i`.
    fn mark_retired(&mut self, i: usize) {
        let iteration = self.stats.iterations;
        if let Some(profile) = &mut self.profile {
            let slot = &mut profile.rules[i].retired_at;
            if slot.is_none() {
                *slot = Some(iteration);
            }
        }
    }

    /// Run one stratum's fixpoint to convergence: the freeze → plan →
    /// fan-out → merge loop shared verbatim by [`evaluate`] (cold runs,
    /// `seed_first = true`) and the incremental resident state
    /// ([`crate::incremental::ResidentEval::apply_deltas`], `seed_first =
    /// false`: iteration 1 already has its deltas — the rows inserted past
    /// the converged marks — so no all-`Full` seed round is needed, and the
    /// delta-variant discipline enumerates exactly the new instantiations).
    ///
    /// Sharing this loop is what makes incremental propagation
    /// byte-identical across thread counts: the task list is planned from
    /// frozen marks, the merge replays buffers in fixed order, and nothing
    /// here reads the executor width.
    pub(crate) fn run_stratum(
        &mut self,
        mine: &[usize],
        stratum: usize,
        strategy: Strategy,
        max_iterations: usize,
        seed_first: bool,
    ) -> Result<(), EngineError> {
        if mine.is_empty() {
            return Ok(());
        }
        // Relations registered since the last call (incremental batches may
        // introduce predicates) start with empty history: mark 0 makes all
        // their rows the delta.
        let n_preds = self.db.pred_count();
        self.mark_prev.resize(n_preds, 0);
        self.mark_cur.resize(n_preds, 0);
        let mut local_iter = 0usize;
        loop {
            if self.stats.iterations >= max_iterations {
                return Err(EngineError::IterationLimit {
                    limit: max_iterations,
                    stats: self.stats,
                });
            }
            // Iteration-boundary limit check: covers programs whose
            // per-iteration work never reaches the in-join check cadence.
            self.check_limits();
            if let Some(e) = self.take_trip() {
                return Err(e);
            }
            self.stats.iterations += 1;
            local_iter += 1;
            let first = local_iter == 1 && seed_first;
            let iter_start = self.profile.is_some().then(Instant::now);
            let retired_before = self.stats.rules_retired;
            // Snapshot marks for this iteration.
            for p in 0..n_preds {
                self.mark_cur[p] = self.db.relation(PredId(p as u32)).len();
            }
            // Freeze barrier: seal every relation's mutable tail into
            // sorted runs (and consolidate) so this iteration's probes run
            // against bloom-gated immutable runs. Sealing never changes
            // rows or ids, only the acceleration structures.
            self.db.seal_storage();
            let before = self.db.total_facts();
            // Freeze → plan → fan out → merge. The seed round (and the
            // naive strategy, every round) reads all literals Full;
            // semi-naive rounds get one variant per non-empty delta.
            let seed_round = first || matches!(strategy, Strategy::Naive);
            let (tasks, work) = self.plan_tasks(mine, seed_round);
            let workers = self.threads.min(tasks.len());
            let (parallel_ns, merge_ns) = if workers > 1 && work >= PARALLEL_MIN_WORK {
                self.run_parallel(&tasks, workers)
            } else {
                self.run_serial(&tasks)
            };
            // A limit tripped inside a task: surface it now, before the
            // convergence test could mistake the partially merged
            // iteration for a fixpoint.
            if let Some(e) = self.take_trip() {
                return Err(e);
            }
            if self.boolean_cut {
                self.apply_boolean_cut();
            }
            if let Some(t0) = iter_start {
                let retired = self.stats.rules_retired - retired_before;
                self.record_iteration(
                    stratum,
                    t0.elapsed().as_nanos() as u64,
                    parallel_ns,
                    merge_ns,
                    tasks.len() as u64,
                    retired,
                );
            }
            // Advance marks: what was current becomes previous.
            for p in 0..n_preds {
                self.mark_prev[p] = self.mark_cur[p];
            }
            if self.db.total_facts() == before {
                return Ok(());
            }
        }
    }

    /// §3.1 boolean cut: retire rules defining proven zero-arity predicates,
    /// then transitively retire rules whose head predicate has no remaining
    /// consumer and is not the query predicate.
    fn apply_boolean_cut(&mut self) {
        // Retire rules of proven boolean predicates.
        for i in 0..self.plans.len() {
            if !self.active[i] {
                continue;
            }
            let head = self.plans[i].head;
            if self.db.relation(head).arity() == 0 && !self.db.relation(head).is_empty() {
                self.active[i] = false;
                self.stats.rules_retired += 1;
                self.mark_retired(i);
            }
        }
        // Transitively retire producers that nothing consumes any more.
        loop {
            let mut consumed: Vec<bool> = vec![false; self.db.pred_count()];
            if let Some(q) = self.query_pred {
                consumed[q.0 as usize] = true;
            }
            for (i, plan) in self.plans.iter().enumerate() {
                if self.active[i] {
                    for l in &plan.body {
                        consumed[l.pred.0 as usize] = true;
                    }
                }
            }
            let mut changed = false;
            for i in 0..self.plans.len() {
                if self.active[i] && !consumed[self.plans[i].head.0 as usize] {
                    self.active[i] = false;
                    self.stats.rules_retired += 1;
                    self.mark_retired(i);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Assign a stratum to every rule (by its head predicate): within a rule,
/// positive derived dependencies may be same-stratum, negated derived
/// dependencies must be strictly lower. Errors if no such assignment exists
/// (negation through recursion).
pub(crate) fn stratify(program: &Program) -> Result<Vec<usize>, EngineError> {
    use std::collections::BTreeMap;
    let idb = program.idb_preds();
    let mut stratum: BTreeMap<&datalog_ast::PredRef, usize> = idb.iter().map(|p| (p, 0)).collect();
    let bound = idb.len() + 1;
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let mut need = 0usize;
            for a in &rule.body {
                if let Some(&s) = stratum.get(&a.pred) {
                    need = need.max(s);
                }
            }
            for a in &rule.negative {
                if let Some(&s) = stratum.get(&a.pred) {
                    need = need.max(s + 1);
                }
            }
            let cur = stratum.get_mut(&rule.head.pred).expect("head is IDB");
            if need > *cur {
                if need > bound {
                    return Err(EngineError::NotStratified {
                        pred: rule.head.pred.to_string(),
                    });
                }
                *cur = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(program
        .rules
        .iter()
        .map(|r| stratum[&r.head.pred])
        .collect())
}

/// Greedy join order: start from the literal with the most constants
/// (ties: smallest estimated relation if `hints` are given, then source
/// order), then repeatedly append the literal sharing the most variables
/// with those already placed (ties: cheaper estimated relation, then more
/// constants, then source order). With `hints == None` the cost key is
/// constant, so the order is byte-identical to the historical structural
/// heuristic. Keeps every literal; only the order changes, which is
/// semantics-preserving for a fixpoint join.
fn greedy_order(
    body: &[datalog_ast::Atom],
    hints: Option<&std::collections::BTreeMap<String, u64>>,
) -> Vec<usize> {
    use std::collections::BTreeSet;
    let n = body.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let consts = |i: usize| body[i].terms.iter().filter(|t| !t.is_var()).count();
    // Estimated rows; relations without an estimate sort last among ties.
    let cost = |i: usize| -> u64 {
        hints
            .and_then(|h| h.get(&body[i].pred.to_string()).copied())
            .unwrap_or(u64::MAX)
    };
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound: BTreeSet<datalog_ast::Var> = BTreeSet::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed: most constants, then cheapest relation.
    let first_pos = (0..remaining.len())
        .max_by_key(|&k| {
            let i = remaining[k];
            (consts(i), std::cmp::Reverse(cost(i)), std::cmp::Reverse(k))
        })
        .expect("nonempty");
    let first = remaining.remove(first_pos);
    bound.extend(body[first].var_occurrences());
    order.push(first);
    while !remaining.is_empty() {
        let pos = (0..remaining.len())
            .max_by_key(|&k| {
                let i = remaining[k];
                let shared = body[i]
                    .var_occurrences()
                    .filter(|v| bound.contains(v))
                    .count();
                (
                    shared,
                    std::cmp::Reverse(cost(i)),
                    consts(i),
                    std::cmp::Reverse(k),
                )
            })
            .expect("nonempty");
        let i = remaining.remove(pos);
        bound.extend(body[i].var_occurrences());
        order.push(i);
    }
    order
}

pub(crate) fn compile(
    program: &Program,
    db: &mut Database,
    reorder_joins: bool,
    cost_hints: Option<&std::collections::BTreeMap<String, u64>>,
) -> Result<Vec<RulePlan>, EngineError> {
    let arities = program.arities()?;
    for (pred, &arity) in &arities {
        db.register(pred, arity);
    }
    let mut plans = Vec::with_capacity(program.rules.len());
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        let mut var_ids: HashMap<datalog_ast::Var, u16> = HashMap::new();
        let slot_of = |t: &Term, var_ids: &mut HashMap<datalog_ast::Var, u16>| match t {
            Term::Const(c) => Slot::Const(*c),
            Term::Var(v) => {
                let next = var_ids.len() as u16;
                Slot::Var(*var_ids.entry(*v).or_insert(next))
            }
        };
        let ordered_body: Vec<&datalog_ast::Atom> = if reorder_joins {
            greedy_order(&rule.body, cost_hints)
                .into_iter()
                .map(|i| &rule.body[i])
                .collect()
        } else {
            rule.body.iter().collect()
        };
        let mut body: Vec<LitPlan> = ordered_body
            .iter()
            .map(|a| LitPlan {
                pred: db.pred_id(&a.pred).expect("registered above"),
                slots: a.terms.iter().map(|t| slot_of(t, &mut var_ids)).collect(),
                probe: Box::default(),
            })
            .collect();
        // Statically plan each literal's probe columns: a column is bound
        // when the join reaches the literal iff it holds a constant or a
        // variable some *earlier* literal binds. (A variable repeated
        // within one literal is first bound by the row match itself, so it
        // does not count.) The enumeration order of `slots` is ascending,
        // hence `probe` comes out sorted as the index requires.
        let mut bound_vars: HashSet<u16> = HashSet::new();
        for lp in body.iter_mut() {
            lp.probe = lp
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| match s {
                    Slot::Const(_) => true,
                    Slot::Var(v) => bound_vars.contains(v),
                })
                .map(|(col, _)| col)
                .collect();
            for s in &lp.slots {
                if let Slot::Var(v) = s {
                    bound_vars.insert(*v);
                }
            }
        }
        let negatives: Vec<LitPlan> = rule
            .negative
            .iter()
            .map(|a| LitPlan {
                pred: db.pred_id(&a.pred).expect("registered above"),
                slots: a.terms.iter().map(|t| slot_of(t, &mut var_ids)).collect(),
                // Negation is a fully-bound membership test, not a probe.
                probe: Box::default(),
            })
            .collect();
        let head_slots: Vec<Slot> = rule
            .head
            .terms
            .iter()
            .map(|t| slot_of(t, &mut var_ids))
            .collect();
        plans.push(RulePlan {
            rule_idx,
            head: db.pred_id(&rule.head.pred).expect("registered above"),
            head_slots,
            body,
            negatives,
            nvars: var_ids.len(),
        });
    }
    Ok(plans)
}

/// Load `input` facts into `db`, checking arities against the program's.
/// Facts for predicates the program never mentions are registered and
/// loaded verbatim.
pub(crate) fn load_input(
    db: &mut Database,
    arities: &std::collections::BTreeMap<datalog_ast::PredRef, usize>,
    input: &FactSet,
) -> Result<(), EngineError> {
    for (pred, tuple) in input.iter() {
        if let Some(&expected) = arities.get(pred) {
            if expected != tuple.len() {
                return Err(EngineError::FactArity {
                    pred: pred.to_string(),
                    expected,
                    found: tuple.len(),
                });
            }
        }
        let id = db.register(pred, tuple.len());
        db.insert(id, tuple);
    }
    Ok(())
}

/// Build every composite index the compiled probes need, up front: the
/// join plans fix which columns arrive bound at each literal, so the
/// column sets are known statically. From here on the inner loop probes
/// through `&Relation` only ([`crate::relation::Relation::probe_range`]),
/// which is what lets each iteration freeze the database and share it
/// across workers. `insert` keeps the indexes fresh as the fixpoint grows.
pub(crate) fn ensure_probe_indexes(db: &mut Database, plans: &[RulePlan]) {
    let wanted: BTreeSet<(PredId, &[usize])> = plans
        .iter()
        .flat_map(|p| &p.body)
        .filter(|lp| !lp.probe.is_empty())
        .map(|lp| (lp.pred, &*lp.probe))
        .collect();
    for (pred, cols) in wanted {
        db.ensure_index(pred, cols);
    }
}

/// Run a fixpoint evaluation of `program` over `input`.
///
/// `input` may seed IDB predicates — that is how the uniform-equivalence
/// oracles use the engine. Facts for predicates the program never mentions
/// are loaded verbatim and simply carried through.
pub fn evaluate(
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) -> Result<EvalOutput, EngineError> {
    program.validate()?;
    let mut db = if opts.legacy_storage {
        Database::with_storage(crate::storage::StorageMode::Legacy)
    } else {
        Database::new()
    };
    let plans = compile(
        program,
        &mut db,
        opts.reorder_joins,
        opts.cost_hints.as_deref(),
    )?;
    let arities = program.arities()?;
    load_input(&mut db, &arities, input)?;
    ensure_probe_indexes(&mut db, &plans);
    let n_preds = db.pred_count();
    let query_pred = program
        .query
        .as_ref()
        .and_then(|q| db.pred_id(&q.atom.pred));
    let n_plans = plans.len();
    let mut m = Machine {
        db: &mut db,
        plans,
        active: vec![true; n_plans],
        mark_prev: vec![0; n_preds],
        mark_cur: vec![0; n_preds],
        stats: EvalStats::default(),
        provenance: opts.record_provenance.then(Provenance::new),
        profile: opts.profile.then(|| EvalProfile {
            rules: (0..n_plans)
                .map(|i| RuleProfile {
                    rule_idx: i,
                    ..RuleProfile::default()
                })
                .collect(),
            timeline: Vec::new(),
        }),
        query_pred,
        boolean_cut: opts.boolean_cut,
        threads: opts.threads.max(1),
        metrics: opts.metrics.clone(),
        started: Instant::now(),
        deadline: opts.deadline,
        fact_budget: opts.fact_budget,
        cancel: opts.cancel.clone(),
        trip: None,
    };

    // Stratified evaluation: each stratum runs its own fixpoint; relations
    // of lower strata are complete by the time a negated literal reads
    // them. Pure Datalog programs form a single stratum, and this loop
    // degenerates to the classic one.
    let rule_strata = stratify(program)?;
    let max_stratum = rule_strata.iter().copied().max().unwrap_or(0);
    for stratum in 0..=max_stratum {
        let mine: Vec<usize> = (0..m.plans.len())
            .filter(|&i| rule_strata[m.plans[i].rule_idx] == stratum)
            .collect();
        m.run_stratum(&mine, stratum, opts.strategy, opts.max_iterations, true)?;
    }
    let stats = m.stats;
    let provenance = m.provenance.take();
    let mut profile = m.profile.take();
    if let Some(profile) = &mut profile {
        // Fill in the source renderings now that the machine is done.
        for (i, rp) in profile.rules.iter_mut().enumerate() {
            let rule = &program.rules[i];
            rp.rule = rule.to_string();
            rp.head = rule.head.pred.to_string();
        }
    }
    Ok(EvalOutput {
        database: db,
        stats,
        provenance,
        profile,
    })
}

/// Evaluate and extract the query's answers: the distinct bindings of the
/// query atom's named variables (wildcards are projected out). Constants in
/// the query act as selections; a repeated variable forces equality.
pub fn query_answers(
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) -> Result<(AnswerSet, EvalStats), EngineError> {
    let (answers, out) = query_answers_full(program, input, opts)?;
    Ok((answers, out.stats))
}

/// Like [`query_answers`], but returns the whole [`EvalOutput`] so callers
/// can reach the final database, provenance, and (when
/// [`EvalOptions::profile`] is set) the per-rule/per-iteration profile.
pub fn query_answers_full(
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) -> Result<(AnswerSet, EvalOutput), EngineError> {
    let q = program
        .query
        .clone()
        .ok_or(EngineError::Ast(datalog_ast::AstError::NoQuery))?;
    let out = evaluate(program, input, opts)?;
    let answers = extract_answers(&q.atom, &out.database);
    Ok((answers, out))
}

/// Extract the answers of `q_atom` from a saturated `database`: the
/// distinct bindings of the atom's named variables (wildcards are projected
/// out), matched against the atom's relation. Constants in the atom act as
/// selections; a repeated variable forces equality. Pure read — usable
/// against any frontier, including a resident incremental one.
pub fn extract_answers(q_atom: &datalog_ast::Atom, database: &Database) -> AnswerSet {
    let mut answers = AnswerSet::default();
    // Output columns: named variables in first-occurrence order.
    let mut out_vars = Vec::new();
    for v in q_atom.var_occurrences() {
        if !v.is_wildcard() && !out_vars.contains(&v) {
            out_vars.push(v);
        }
    }
    answers.columns = out_vars.iter().map(|v| v.name()).collect();
    if let Some(id) = database.pred_id(&q_atom.pred) {
        for row in database.relation(id).iter() {
            let fact = datalog_ast::Atom::fact(q_atom.pred.clone(), row.to_vec());
            let mut s = subst::Subst::new();
            if subst::match_atom(q_atom, &fact, &mut s) {
                let tuple: Vec<Value> = out_vars
                    .iter()
                    .map(|v| match s.resolve(Term::Var(*v)) {
                        Term::Const(c) => c,
                        Term::Var(_) => unreachable!("matched against ground fact"),
                    })
                    .collect();
                answers.rows.insert(tuple);
            }
        }
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, PredRef};

    fn chain_edb(n: i64) -> FactSet {
        let mut fs = FactSet::new();
        for i in 0..n {
            fs.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
        }
        fs
    }

    const TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                      a(X, Y) :- p(X, Y).\n\
                      ?- a(X, Y).";

    #[test]
    fn transitive_closure_chain() {
        let p = parse_program(TC).unwrap().program;
        let (ans, stats) = query_answers(&p, &chain_edb(10), &EvalOptions::default()).unwrap();
        // Chain 0->1->...->10: closure has n*(n+1)/2 = 55 pairs.
        assert_eq!(ans.len(), 55);
        assert!(stats.facts_derived >= 55);
        assert!(stats.iterations > 2);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let p = parse_program(TC).unwrap().program;
        let edb = chain_edb(8);
        let naive = evaluate(
            &p,
            &edb,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let semi = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(naive.database.dump(), semi.database.dump());
        // Semi-naive does strictly less derivation work on a chain.
        assert!(semi.stats.derivations < naive.stats.derivations);
    }

    #[test]
    fn seminaive_derives_each_instantiation_once_on_dag() {
        // On a cycle, semi-naive must still terminate and agree with naive.
        let p = parse_program(TC).unwrap().program;
        let mut edb = FactSet::new();
        for i in 0..5 {
            edb.insert(
                PredRef::new("p"),
                vec![Value::int(i), Value::int((i + 1) % 5)],
            );
        }
        let naive = evaluate(
            &p,
            &edb,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let semi = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        // Cycle: closure is all 25 pairs.
        let a = PredRef::new("a");
        assert_eq!(semi.database.dump().count(&a), 25);
        assert_eq!(naive.database.dump(), semi.database.dump());
    }

    #[test]
    fn constants_in_rules_and_query() {
        let p = parse_program(
            "reach(Y) :- p(0, Y).\n\
             reach(Y) :- reach(X), p(X, Y).\n\
             ?- reach(X).",
        )
        .unwrap()
        .program;
        let (ans, _) = query_answers(&p, &chain_edb(5), &EvalOptions::default()).unwrap();
        assert_eq!(ans.len(), 5); // 1..=5 reachable from 0.
    }

    #[test]
    fn query_constant_selection_and_repeated_vars() {
        let p = parse_program(TC).unwrap().program;
        // Selection: all Y reachable from 2 on a 5-chain: 3,4,5.
        let p2 = {
            let mut p = p.clone();
            p.query = Some(datalog_ast::Query::new(
                datalog_ast::parse_atom("a(2, Y)").unwrap(),
            ));
            p
        };
        let (ans, _) = query_answers(&p2, &chain_edb(5), &EvalOptions::default()).unwrap();
        assert_eq!(ans.len(), 3);
        assert_eq!(ans.columns, vec!["Y".to_string()]);
        // Repeated variable a(X, X): no loops on a chain.
        let p3 = {
            let mut p = p.clone();
            p.query = Some(datalog_ast::Query::new(
                datalog_ast::parse_atom("a(X, X)").unwrap(),
            ));
            p
        };
        let (ans, _) = query_answers(&p3, &chain_edb(5), &EvalOptions::default()).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn wildcards_in_query_are_projected() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        )
        .unwrap()
        .program;
        let (ans, _) = query_answers(&p, &chain_edb(5), &EvalOptions::default()).unwrap();
        // Distinct first components: 0..4.
        assert_eq!(ans.len(), 5);
        assert_eq!(ans.columns, vec!["X".to_string()]);
    }

    #[test]
    fn seeded_idb_facts_participate() {
        // Uniform-equivalence style input: seed the derived predicate.
        let p = parse_program(TC).unwrap().program;
        let mut input = FactSet::new();
        input.insert(PredRef::new("a"), vec![Value::sym("u"), Value::sym("v")]);
        input.insert(PredRef::new("p"), vec![Value::sym("t"), Value::sym("u")]);
        let out = evaluate(&p, &input, &EvalOptions::default()).unwrap();
        let facts = out.database.dump();
        // p(t,u) ∧ a(u,v) ⇒ a(t,v) by the recursive rule.
        assert!(facts.contains(&PredRef::new("a"), &[Value::sym("t"), Value::sym("v")]));
    }

    #[test]
    fn boolean_cut_retires_rules() {
        // q(X) :- p(X), b.   b :- big(W).
        // With the cut enabled, b's rule retires after it fires once.
        let p = parse_program(
            "q(X) :- p(X), b.\n\
             b :- big(W).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        for i in 0..10 {
            edb.insert(PredRef::new("p"), vec![Value::int(i)]);
            edb.insert(PredRef::new("big"), vec![Value::int(i)]);
        }
        let with_cut = evaluate(
            &p,
            &edb,
            &EvalOptions {
                boolean_cut: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let without = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(with_cut.database.dump(), without.database.dump());
        assert!(with_cut.stats.rules_retired >= 1);
    }

    #[test]
    fn boolean_cut_retires_exclusive_feeders() {
        // Example 2's tail: q4 feeds only B2; once B2 holds, q4's rule
        // retires too.
        let p = parse_program(
            "q(X) :- p(X), b2.\n\
             b2 :- q3(V), q4(V).\n\
             q4(X) :- q6(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        edb.insert(PredRef::new("p"), vec![Value::int(1)]);
        edb.insert(PredRef::new("q3"), vec![Value::int(7)]);
        edb.insert(PredRef::new("q6"), vec![Value::int(7)]);
        let out = evaluate(
            &p,
            &edb,
            &EvalOptions {
                boolean_cut: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        // b2's rule and q4's rule both retired.
        assert!(out.stats.rules_retired >= 2);
        assert!(out
            .database
            .dump()
            .contains(&PredRef::new("q"), &[Value::int(1)]));
    }

    #[test]
    fn empty_edb_yields_empty_answers() {
        let p = parse_program(TC).unwrap().program;
        let (ans, stats) = query_answers(&p, &FactSet::new(), &EvalOptions::default()).unwrap();
        assert!(ans.is_empty());
        assert_eq!(stats.facts_derived, 0);
    }

    #[test]
    fn fact_arity_mismatch_is_reported() {
        let p = parse_program(TC).unwrap().program;
        let mut edb = FactSet::new();
        edb.insert(PredRef::new("p"), vec![Value::int(1)]);
        let err = evaluate(&p, &edb, &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::FactArity { .. }));
    }

    #[test]
    fn iteration_limit_triggers_with_partial_stats() {
        let p = parse_program(TC).unwrap().program;
        let err = evaluate(
            &p,
            &chain_edb(50),
            &EvalOptions {
                max_iterations: 3,
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::IterationLimit { limit: 3, .. }));
        let stats = err.partial_stats().expect("limit trips carry stats");
        assert_eq!(stats.iterations, 3);
        assert!(stats.facts_derived > 0, "partial work is reported");
        assert!(err.is_limit());
    }

    /// A program whose fixpoint is far too large to finish: the full
    /// transitive closure of a dense cycle, plus a cross product.
    fn pathological() -> (Program, FactSet) {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             big(X, Y, Z, W) :- a(X, Y), a(Z, W).\n\
             ?- big(X, _, _, _).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        for i in 0..60i64 {
            for j in 0..60i64 {
                edb.insert(PredRef::new("p"), vec![Value::int(i), Value::int(j)]);
            }
        }
        (p, edb)
    }

    #[test]
    fn deadline_trips_within_twice_the_deadline() {
        let (p, edb) = pathological();
        let deadline = std::time::Duration::from_millis(30);
        let t0 = Instant::now();
        let err = evaluate(
            &p,
            &edb,
            &EvalOptions {
                deadline: Some(t0 + deadline),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(
            matches!(err, EngineError::DeadlineExceeded { .. }),
            "{err:?}"
        );
        let stats = err.partial_stats().unwrap();
        assert!(stats.tuples_scanned > 0, "partial stats are reported");
        // The single pathological cross-product rule must not stall past
        // the cooperative check cadence: well within 2x the deadline.
        assert!(
            elapsed < deadline * 2,
            "trip observed after {elapsed:?}, deadline {deadline:?}"
        );
    }

    #[test]
    fn budget_trips_exactly_and_carries_stats() {
        let p = parse_program(TC).unwrap().program;
        let err = evaluate(
            &p,
            &chain_edb(50),
            &EvalOptions {
                fact_budget: Some(100),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        match err {
            EngineError::BudgetExceeded { budget, stats } => {
                assert_eq!(budget, 100);
                // Enforcement is exact: the trip fires on fact 101.
                assert_eq!(stats.facts_derived, 101);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A budget the fixpoint never reaches changes nothing.
        let ok = evaluate(
            &p,
            &chain_edb(10),
            &EvalOptions {
                fact_budget: Some(10_000),
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ok.stats.facts_derived, 55);
    }

    #[test]
    fn cancellation_from_another_thread_unwinds_cleanly() {
        let (p, edb) = pathological();
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        let err = evaluate(
            &p,
            &edb,
            &EvalOptions {
                cancel: Some(token),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        canceller.join().unwrap();
        assert!(matches!(err, EngineError::Cancelled { .. }), "{err:?}");
        assert!(err.partial_stats().unwrap().tuples_scanned > 0);
    }

    #[test]
    fn pre_cancelled_token_trips_before_any_iteration() {
        let p = parse_program(TC).unwrap().program;
        let token = CancelToken::new();
        token.cancel();
        let err = evaluate(
            &p,
            &chain_edb(5),
            &EvalOptions {
                cancel: Some(token),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        let stats = err.partial_stats().unwrap();
        assert_eq!(stats.iterations, 0, "tripped at the first boundary check");
    }

    /// A dense random-ish digraph: big enough that transitive-closure
    /// iterations cross the [`CHUNK_MIN_ROWS`] and [`PARALLEL_MIN_WORK`]
    /// thresholds, so the parallel tests exercise chunked fan-out for real.
    fn dense_edb(n: i64, m: i64) -> FactSet {
        let mut fs = FactSet::new();
        let mut x: i64 = 42;
        for _ in 0..m {
            // Deterministic xorshift-style scramble; no RNG dependency.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = x.rem_euclid(n);
            let b = (x >> 16).rem_euclid(n);
            fs.insert(PredRef::new("p"), vec![Value::int(a), Value::int(b)]);
        }
        fs
    }

    /// Byte-level identity: same row ids per predicate (not just the same
    /// set of facts), same stats partition, same provenance.
    fn assert_identical(a: &EvalOutput, b: &EvalOutput) {
        assert_eq!(a.stats, b.stats, "stats partition differs");
        assert_eq!(a.database.pred_count(), b.database.pred_count());
        for p in 0..a.database.pred_count() {
            let id = PredId(p as u32);
            assert_eq!(a.database.pred_ref(id), b.database.pred_ref(id));
            let ra: Vec<&[Value]> = a.database.relation(id).iter().collect();
            let rb: Vec<&[Value]> = b.database.relation(id).iter().collect();
            assert_eq!(ra, rb, "row order differs for {}", a.database.pred_ref(id));
        }
        assert_eq!(a.provenance, b.provenance, "provenance differs");
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_to_serial() {
        // Programs covering recursion, negation, and the boolean cut.
        let cases: Vec<(&str, bool)> = vec![
            (TC, false),
            (
                "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                 a(X, Y) :- p(X, Y).\n\
                 base(X) :- p(X, _).\n\
                 island(X) :- base(X), not a(X, X).\n\
                 ?- island(X).",
                false,
            ),
            (
                "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                 a(X, Y) :- p(X, Y).\n\
                 b :- a(X, X).\n\
                 q(X) :- p(X, _), b.\n\
                 ?- q(X).",
                true,
            ),
        ];
        let edb = dense_edb(48, 1400);
        for (src, cut) in cases {
            let p = parse_program(src).unwrap().program;
            let opts = |threads: usize| EvalOptions {
                threads,
                boolean_cut: cut,
                record_provenance: true,
                ..EvalOptions::default()
            };
            let serial = evaluate(&p, &edb, &opts(1)).unwrap();
            for threads in [2, 3, 8] {
                let par = evaluate(&p, &edb, &opts(threads)).unwrap();
                assert_identical(&serial, &par);
            }
        }
    }

    #[test]
    fn parallel_profile_counters_match_serial() {
        let p = parse_program(TC).unwrap().program;
        let edb = dense_edb(40, 1000);
        let opts = |threads: usize| EvalOptions {
            threads,
            profile: true,
            ..EvalOptions::default()
        };
        let serial = evaluate(&p, &edb, &opts(1)).unwrap();
        let par = evaluate(&p, &edb, &opts(4)).unwrap();
        assert_identical(&serial, &par);
        // Profiles agree on everything but wall time (which legitimately
        // varies run to run): per-rule counters, retirement, the timeline's
        // per-iteration deltas and task counts.
        assert_eq!(
            serial.profile.unwrap().counters_only(),
            par.profile.unwrap().counters_only()
        );
    }

    #[test]
    fn parallel_budget_trips_exactly_like_serial() {
        let p = parse_program(TC).unwrap().program;
        let opts = |threads: usize| EvalOptions {
            threads,
            fact_budget: Some(100),
            ..EvalOptions::default()
        };
        for threads in [1usize, 4] {
            let err = evaluate(&p, &chain_edb(50), &opts(threads)).unwrap_err();
            match err {
                EngineError::BudgetExceeded { budget, stats } => {
                    assert_eq!(budget, 100);
                    // The merge applies buffers in task order and stops at
                    // the trip, so enforcement stays exact at any width.
                    assert_eq!(stats.facts_derived, 101, "threads={threads}");
                }
                other => panic!("expected BudgetExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_cancellation_unwinds_cleanly() {
        let (p, edb) = pathological();
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        let err = evaluate(
            &p,
            &edb,
            &EvalOptions {
                threads: 4,
                cancel: Some(token),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        canceller.join().unwrap();
        assert!(matches!(err, EngineError::Cancelled { .. }), "{err:?}");
        assert!(err.partial_stats().unwrap().tuples_scanned > 0);
    }

    #[test]
    fn compile_time_probe_planning_builds_composite_indexes() {
        // t(X, Y, Z) joined with itself on two columns: the second literal
        // probes on both bound positions, so a composite [0, 2] index (in
        // that literal's column space: s(Y, W, X) has Y at 0 and X at 2)
        // must exist after evaluation.
        let p = parse_program(
            "j(X, W) :- t(X, Y, Z), s(Y, W, X).\n\
             ?- j(X, _).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        edb.insert(
            PredRef::new("t"),
            vec![Value::int(1), Value::int(2), Value::int(3)],
        );
        edb.insert(
            PredRef::new("s"),
            vec![Value::int(2), Value::int(9), Value::int(1)],
        );
        let out = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        let s = out.database.pred_id(&PredRef::new("s")).unwrap();
        assert!(out.database.relation(s).has_index(&[0, 2]));
        let j = out.database.pred_id(&PredRef::new("j")).unwrap();
        assert_eq!(out.database.relation(j).len(), 1);
        // Exactly one probe row matched both columns: no residual filtering.
        assert_eq!(out.stats.derivations, 1);
    }

    #[test]
    fn provenance_records_first_derivations() {
        let p = parse_program(TC).unwrap().program;
        let out = evaluate(
            &p,
            &chain_edb(3),
            &EvalOptions {
                record_provenance: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let prov = out.provenance.as_ref().unwrap();
        let a = out.database.pred_id(&PredRef::new("a")).unwrap();
        // a(0,3) exists and has a derivation tree of height >= 2.
        let tree = prov
            .derivation_tree(&out.database, a, &[Value::int(0), Value::int(3)])
            .expect("a(0,3) derived");
        assert!(tree.height() >= 2);
        let rendered = tree.render();
        assert!(rendered.contains("a(0, 3)"));
    }
}

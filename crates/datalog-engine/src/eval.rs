//! Naive and semi-naive bottom-up fixpoint evaluation.
//!
//! This is the execution model of §1.1 of the paper: start from the EDB
//! (plus any seeded IDB facts, for uniform-equivalence tests), apply every
//! rule to a fixpoint, then select/project the query predicate.
//!
//! The semi-naive strategy addresses each rule once per *delta literal*: at
//! iteration `k` the literal designated as the delta ranges over the rows
//! its predicate gained during iteration `k-1`; literals to its left see the
//! full relation as of the start of iteration `k`, literals to its right see
//! the relation as of the start of iteration `k-1`. This enumerates every
//! new body instantiation exactly once.
//!
//! The **boolean-cut runtime** of §3.1 is implemented here: when the program
//! was rewritten so that existential subqueries became zero-arity `B`
//! predicates, enabling [`EvalOptions::boolean_cut`] retires each `B` rule
//! from the fixpoint as soon as `B` is proven, then transitively retires
//! rules whose head predicate no longer has any consumer (the paper's
//! "if `q4` does not appear anywhere else in the program, the rule defining
//! it can also be discarded after `B2` is shown true").

use std::collections::HashMap;
use std::time::Instant;

use datalog_ast::{subst, Program, Term, Value};
use datalog_trace::{EvalProfile, IterationProfile, PredDelta, RuleProfile};

use crate::cancel::CancelToken;
use crate::database::{Database, PredId};
use crate::facts::{AnswerSet, FactSet};
use crate::provenance::Provenance;
use crate::stats::EvalStats;
use crate::EngineError;

/// How many joined rows a rule application may enumerate between
/// cooperative limit checks (deadline / cancellation). Small enough that a
/// single pathological cross product observes its deadline well within the
/// 2× envelope the server promises; large enough that the check (one
/// `Instant::now()` + two atomic loads) is amortized to noise.
const LIMIT_CHECK_INTERVAL: u32 = 4096;

/// Fixpoint strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Re-derive everything from the full relations each iteration.
    Naive,
    /// Standard semi-naive (delta-driven) evaluation.
    #[default]
    SemiNaive,
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Fixpoint strategy (default: semi-naive).
    pub strategy: Strategy,
    /// Enable the §3.1 boolean-cut runtime.
    pub boolean_cut: bool,
    /// Record derivation provenance (first derivation per fact).
    pub record_provenance: bool,
    /// Greedily reorder body literals at compile time so that each literal
    /// shares variables with (or has constants bound before) the ones
    /// already placed — turning cold scans into index probes. Off by
    /// default so the experiment counters reflect source order.
    pub reorder_joins: bool,
    /// Collect a per-rule / per-iteration [`EvalProfile`]: each rule's
    /// share of the [`EvalStats`] counters plus wall time, the
    /// per-iteration predicate-growth timeline, and the iteration at which
    /// the §3.1 cut retired each rule. Off by default; when off, the only
    /// cost is one branch per rule per iteration (the join inner loops are
    /// untouched either way — attribution works by differencing the global
    /// counters around each rule's join variants).
    pub profile: bool,
    /// Safety bound on fixpoint iterations.
    pub max_iterations: usize,
    /// Wall-clock deadline. Checked cooperatively at every iteration
    /// boundary and every [`LIMIT_CHECK_INTERVAL`] joined rows inside a
    /// rule application; exceeding it returns
    /// [`EngineError::DeadlineExceeded`] with the partial [`EvalStats`].
    pub deadline: Option<Instant>,
    /// Bound on *new* derived facts. Checked exactly, at every successful
    /// derivation; exceeding it returns [`EngineError::BudgetExceeded`].
    pub fact_budget: Option<u64>,
    /// Cooperative cancellation flag, polled on the same cadence as the
    /// deadline. Triggering it returns [`EngineError::Cancelled`].
    pub cancel: Option<CancelToken>,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            strategy: Strategy::SemiNaive,
            boolean_cut: false,
            record_provenance: false,
            reorder_joins: false,
            profile: false,
            max_iterations: 1_000_000,
            deadline: None,
            fact_budget: None,
            cancel: None,
        }
    }
}

/// Result of a fixpoint evaluation.
#[derive(Debug)]
pub struct EvalOutput {
    /// The saturated database (EDB + all derived facts).
    pub database: Database,
    /// Instrumentation counters.
    pub stats: EvalStats,
    /// Provenance, if requested.
    pub provenance: Option<Provenance>,
    /// Per-rule / per-iteration profile, if [`EvalOptions::profile`] was
    /// set. Its per-rule counters partition the global [`EvalStats`]: each
    /// counter summed over all rules equals the global value.
    pub profile: Option<EvalProfile>,
}

/// A term slot in a compiled rule: constant or rule-local variable index.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Const(Value),
    Var(u16),
}

#[derive(Debug, Clone)]
struct LitPlan {
    pred: PredId,
    slots: Vec<Slot>,
}

#[derive(Debug, Clone)]
struct RulePlan {
    rule_idx: usize,
    head: PredId,
    head_slots: Vec<Slot>,
    body: Vec<LitPlan>,
    /// Negated literals, checked once the positive body is fully matched.
    /// Safety guarantees all their variables are bound by then, and
    /// stratification guarantees their relations are complete.
    negatives: Vec<LitPlan>,
    nvars: usize,
}

/// Which row range a literal reads in one join variant.
#[derive(Debug, Clone, Copy)]
enum Range {
    Full,
    Delta,
    Old,
}

/// Which resource limit tripped mid-evaluation. Converted to an
/// [`EngineError`] (with the freshest stats and elapsed time) once the
/// join recursion has unwound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trip {
    Deadline,
    Budget(u64),
    Cancelled,
}

struct Machine<'a> {
    db: &'a mut Database,
    plans: Vec<RulePlan>,
    /// Active rule mask (boolean cut retires rules by clearing bits).
    active: Vec<bool>,
    /// Per-predicate row-count at the start of the previous iteration.
    mark_prev: Vec<usize>,
    /// Per-predicate row-count at the start of the current iteration.
    mark_cur: Vec<usize>,
    stats: EvalStats,
    provenance: Option<Provenance>,
    /// Per-rule counters + timeline, accumulated when profiling is on.
    profile: Option<EvalProfile>,
    query_pred: Option<PredId>,
    /// Set while evaluating a zero-arity head under the boolean cut: once
    /// one witness is found the join unwinds immediately (the paper's
    /// "we are only interested in the existence of some solution", section 3.1).
    stop_current: bool,
    boolean_cut: bool,
    /// Wall-clock start of the evaluation (for deadline checks and the
    /// `elapsed_ms` a deadline trip reports).
    started: Instant,
    deadline: Option<Instant>,
    fact_budget: Option<u64>,
    cancel: Option<CancelToken>,
    /// Countdown to the next cooperative limit check inside a join.
    until_check: u32,
    /// A tripped limit; once set, every join unwinds and the fixpoint
    /// loop converts it into the corresponding [`EngineError`].
    trip: Option<Trip>,
}

impl<'a> Machine<'a> {
    /// Poll deadline and cancellation. Returns `true` (and records the
    /// trip) if the evaluation must unwind. The derived-fact budget is
    /// checked exactly in [`Machine::emit_head`] instead.
    fn check_limits(&mut self) -> bool {
        if self.trip.is_some() {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.trip = Some(Trip::Deadline);
                return true;
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                self.trip = Some(Trip::Cancelled);
                return true;
            }
        }
        false
    }

    /// Convert a recorded trip into its error, with up-to-date stats.
    fn take_trip(&mut self) -> Option<EngineError> {
        self.trip.take().map(|t| match t {
            Trip::Deadline => EngineError::DeadlineExceeded {
                elapsed_ms: self.started.elapsed().as_millis() as u64,
                stats: self.stats,
            },
            Trip::Budget(budget) => EngineError::BudgetExceeded {
                budget,
                stats: self.stats,
            },
            Trip::Cancelled => EngineError::Cancelled { stats: self.stats },
        })
    }

    fn bounds(&self, pred: PredId, range: Range) -> (usize, usize) {
        let p = pred.0 as usize;
        match range {
            Range::Full => (0, self.mark_cur[p]),
            Range::Delta => (self.mark_prev[p], self.mark_cur[p]),
            Range::Old => (0, self.mark_prev[p]),
        }
    }

    /// Check the negated literals of a plan under fully-bound `bindings`.
    /// Stratification guarantees the negated relations are complete, so a
    /// plain membership test implements negation-as-failure.
    fn negatives_hold(&mut self, plan: &RulePlan, bindings: &[Option<Value>]) -> bool {
        for neg in &plan.negatives {
            let tuple: Vec<Value> = neg
                .slots
                .iter()
                .map(|s| match s {
                    Slot::Const(c) => *c,
                    Slot::Var(v) => bindings[*v as usize]
                        .expect("safety guarantees negated variables are bound"),
                })
                .collect();
            self.stats.index_probes += 1;
            if self.db.relation(neg.pred).contains(&tuple) {
                return false;
            }
        }
        true
    }

    /// [`Machine::run_variant`], attributing the counter and wall-time
    /// deltas to the rule's profile when profiling is on. Attribution by
    /// differencing the global counters keeps the join inner loops free of
    /// profiling branches.
    fn run_variant_profiled(&mut self, plan_idx: usize, delta_idx: Option<usize>) {
        if self.profile.is_none() {
            self.run_variant(plan_idx, delta_idx);
            return;
        }
        let before = self.stats;
        let t0 = Instant::now();
        self.run_variant(plan_idx, delta_idx);
        let wall = t0.elapsed();
        let after = self.stats;
        let rule = &mut self.profile.as_mut().expect("checked above").rules[plan_idx];
        rule.evals += 1;
        rule.derivations += after.derivations - before.derivations;
        rule.facts_derived += after.facts_derived - before.facts_derived;
        rule.duplicates += after.duplicates - before.duplicates;
        rule.tuples_scanned += after.tuples_scanned - before.tuples_scanned;
        rule.index_probes += after.index_probes - before.index_probes;
        rule.wall_ns += wall.as_nanos() as u64;
    }

    /// Append one iteration to the profile timeline: every predicate's
    /// growth relative to the iteration-start marks, plus rules retired by
    /// the boolean cut during this iteration.
    fn record_iteration(&mut self, stratum: usize, wall_ns: u64, retired: u64) {
        let iteration = self.stats.iterations;
        let mut deltas = Vec::new();
        for p in 0..self.db.pred_count() {
            let id = PredId(p as u32);
            let total = self.db.relation(id).len();
            let new = total - self.mark_cur[p];
            if new > 0 {
                deltas.push(PredDelta {
                    pred: self.db.pred_ref(id).to_string(),
                    new_facts: new as u64,
                    total: total as u64,
                });
            }
        }
        if let Some(profile) = &mut self.profile {
            profile.timeline.push(IterationProfile {
                iteration,
                stratum,
                wall_ns,
                deltas,
                rules_retired: retired,
            });
        }
    }

    /// Evaluate one join variant of one rule. `delta_idx = None` means all
    /// literals read `Full` (used by the naive strategy and the seed round).
    fn run_variant(&mut self, plan_idx: usize, delta_idx: Option<usize>) {
        if self.trip.is_some() {
            return;
        }
        let plan = self.plans[plan_idx].clone();
        // Under the boolean cut, a proven zero-arity head needs no further
        // derivations at all.
        if self.boolean_cut && plan.head_slots.is_empty() && !self.db.relation(plan.head).is_empty()
        {
            return;
        }
        self.stop_current = false;
        let mut bindings: Vec<Option<Value>> = vec![None; plan.nvars];
        let mut premises: Vec<(PredId, u32)> = Vec::with_capacity(plan.body.len());
        self.join_from(&plan, delta_idx, 0, &mut bindings, &mut premises);
        self.stop_current = false;
    }

    fn join_from(
        &mut self,
        plan: &RulePlan,
        delta_idx: Option<usize>,
        lit: usize,
        bindings: &mut Vec<Option<Value>>,
        premises: &mut Vec<(PredId, u32)>,
    ) {
        if lit == plan.body.len() {
            if self.negatives_hold(plan, bindings) {
                self.emit_head(plan, bindings, premises);
            }
            return;
        }
        let lp = &plan.body[lit];
        let range = match delta_idx {
            None => Range::Full,
            Some(d) if lit < d => Range::Full,
            Some(d) if lit == d => Range::Delta,
            Some(_) => Range::Old,
        };
        let (start, end) = self.bounds(lp.pred, range);
        if start >= end {
            return;
        }
        // Pick a probe column: the first slot that is a constant or an
        // already-bound variable.
        let probe = lp.slots.iter().enumerate().find_map(|(col, s)| match s {
            Slot::Const(c) => Some((col, *c)),
            Slot::Var(v) => bindings[*v as usize].map(|val| (col, val)),
        });
        // Collect candidate row ids (borrowck: materialize before recursing).
        let candidates: Vec<u32> = match probe {
            Some((col, val)) => {
                self.stats.index_probes += 1;
                self.db
                    .relation_mut(lp.pred)
                    .probe(col, val)
                    .iter()
                    .copied()
                    .filter(|&id| (id as usize) >= start && (id as usize) < end)
                    .collect()
            }
            None => (start as u32..end as u32).collect(),
        };
        let slots = lp.slots.clone();
        let pred = lp.pred;
        for row_id in candidates {
            self.stats.tuples_scanned += 1;
            // Cooperative limit check: a rule application enumerating a
            // pathological cross product must still observe its deadline
            // (or cancellation) promptly, not only between iterations.
            self.until_check -= 1;
            if self.until_check == 0 {
                self.until_check = LIMIT_CHECK_INTERVAL;
                if self.check_limits() {
                    return;
                }
            }
            // Match the row against the slots, recording new bindings so we
            // can undo them on backtrack.
            let mut bound_here: Vec<u16> = Vec::new();
            let row = self.db.relation(pred).row(row_id as usize);
            let ok = slots.iter().enumerate().all(|(col, s)| match s {
                Slot::Const(c) => row[col] == *c,
                Slot::Var(v) => match bindings[*v as usize] {
                    Some(val) => val == row[col],
                    None => {
                        bindings[*v as usize] = Some(row[col]);
                        bound_here.push(*v);
                        true
                    }
                },
            });
            if ok {
                premises.push((pred, row_id));
                self.join_from(plan, delta_idx, lit + 1, bindings, premises);
                premises.pop();
            }
            for v in bound_here {
                bindings[v as usize] = None;
            }
            if self.stop_current || self.trip.is_some() {
                return;
            }
        }
    }

    fn emit_head(
        &mut self,
        plan: &RulePlan,
        bindings: &[Option<Value>],
        premises: &[(PredId, u32)],
    ) {
        self.stats.derivations += 1;
        let tuple: Vec<Value> = plan
            .head_slots
            .iter()
            .map(|s| match s {
                Slot::Const(c) => *c,
                Slot::Var(v) => {
                    bindings[*v as usize].expect("safety guarantees head variables are bound")
                }
            })
            .collect();
        let rel = self.db.relation_mut(plan.head);
        let row_id = rel.len() as u32;
        if rel.insert(&tuple) {
            self.stats.facts_derived += 1;
            if let Some(p) = &mut self.provenance {
                p.record(plan.head, row_id, plan.rule_idx, premises.to_vec());
            }
            // Exact budget enforcement: the (budget+1)-th new fact trips.
            if let Some(budget) = self.fact_budget {
                if self.stats.facts_derived > budget && self.trip.is_none() {
                    self.trip = Some(Trip::Budget(budget));
                    self.stop_current = true;
                }
            }
        } else {
            self.stats.duplicates += 1;
        }
        // One witness suffices for a boolean head (section 3.1's cut).
        if self.boolean_cut && plan.head_slots.is_empty() {
            self.stop_current = true;
        }
    }

    /// Record the iteration at which the boolean cut retired rule `i`.
    fn mark_retired(&mut self, i: usize) {
        let iteration = self.stats.iterations;
        if let Some(profile) = &mut self.profile {
            let slot = &mut profile.rules[i].retired_at;
            if slot.is_none() {
                *slot = Some(iteration);
            }
        }
    }

    /// §3.1 boolean cut: retire rules defining proven zero-arity predicates,
    /// then transitively retire rules whose head predicate has no remaining
    /// consumer and is not the query predicate.
    fn apply_boolean_cut(&mut self) {
        // Retire rules of proven boolean predicates.
        for i in 0..self.plans.len() {
            if !self.active[i] {
                continue;
            }
            let head = self.plans[i].head;
            if self.db.relation(head).arity() == 0 && !self.db.relation(head).is_empty() {
                self.active[i] = false;
                self.stats.rules_retired += 1;
                self.mark_retired(i);
            }
        }
        // Transitively retire producers that nothing consumes any more.
        loop {
            let mut consumed: Vec<bool> = vec![false; self.db.pred_count()];
            if let Some(q) = self.query_pred {
                consumed[q.0 as usize] = true;
            }
            for (i, plan) in self.plans.iter().enumerate() {
                if self.active[i] {
                    for l in &plan.body {
                        consumed[l.pred.0 as usize] = true;
                    }
                }
            }
            let mut changed = false;
            for i in 0..self.plans.len() {
                if self.active[i] && !consumed[self.plans[i].head.0 as usize] {
                    self.active[i] = false;
                    self.stats.rules_retired += 1;
                    self.mark_retired(i);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Assign a stratum to every rule (by its head predicate): within a rule,
/// positive derived dependencies may be same-stratum, negated derived
/// dependencies must be strictly lower. Errors if no such assignment exists
/// (negation through recursion).
fn stratify(program: &Program) -> Result<Vec<usize>, EngineError> {
    use std::collections::BTreeMap;
    let idb = program.idb_preds();
    let mut stratum: BTreeMap<&datalog_ast::PredRef, usize> = idb.iter().map(|p| (p, 0)).collect();
    let bound = idb.len() + 1;
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let mut need = 0usize;
            for a in &rule.body {
                if let Some(&s) = stratum.get(&a.pred) {
                    need = need.max(s);
                }
            }
            for a in &rule.negative {
                if let Some(&s) = stratum.get(&a.pred) {
                    need = need.max(s + 1);
                }
            }
            let cur = stratum.get_mut(&rule.head.pred).expect("head is IDB");
            if need > *cur {
                if need > bound {
                    return Err(EngineError::NotStratified {
                        pred: rule.head.pred.to_string(),
                    });
                }
                *cur = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(program
        .rules
        .iter()
        .map(|r| stratum[&r.head.pred])
        .collect())
}

/// Greedy join order: start from the literal with the most constants
/// (ties: source order), then repeatedly append the literal sharing the
/// most variables with those already placed (ties: more constants, then
/// source order). Keeps every literal; only the order changes, which is
/// semantics-preserving for a fixpoint join.
fn greedy_order(body: &[datalog_ast::Atom]) -> Vec<usize> {
    use std::collections::BTreeSet;
    let n = body.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let consts = |i: usize| body[i].terms.iter().filter(|t| !t.is_var()).count();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound: BTreeSet<datalog_ast::Var> = BTreeSet::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed: most constants.
    let first_pos = (0..remaining.len())
        .max_by_key(|&k| (consts(remaining[k]), std::cmp::Reverse(k)))
        .expect("nonempty");
    let first = remaining.remove(first_pos);
    bound.extend(body[first].var_occurrences());
    order.push(first);
    while !remaining.is_empty() {
        let pos = (0..remaining.len())
            .max_by_key(|&k| {
                let i = remaining[k];
                let shared = body[i]
                    .var_occurrences()
                    .filter(|v| bound.contains(v))
                    .count();
                (shared, consts(i), std::cmp::Reverse(k))
            })
            .expect("nonempty");
        let i = remaining.remove(pos);
        bound.extend(body[i].var_occurrences());
        order.push(i);
    }
    order
}

fn compile(
    program: &Program,
    db: &mut Database,
    reorder_joins: bool,
) -> Result<Vec<RulePlan>, EngineError> {
    let arities = program.arities()?;
    for (pred, &arity) in &arities {
        db.register(pred, arity);
    }
    let mut plans = Vec::with_capacity(program.rules.len());
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        let mut var_ids: HashMap<datalog_ast::Var, u16> = HashMap::new();
        let slot_of = |t: &Term, var_ids: &mut HashMap<datalog_ast::Var, u16>| match t {
            Term::Const(c) => Slot::Const(*c),
            Term::Var(v) => {
                let next = var_ids.len() as u16;
                Slot::Var(*var_ids.entry(*v).or_insert(next))
            }
        };
        let ordered_body: Vec<&datalog_ast::Atom> = if reorder_joins {
            greedy_order(&rule.body)
                .into_iter()
                .map(|i| &rule.body[i])
                .collect()
        } else {
            rule.body.iter().collect()
        };
        let body: Vec<LitPlan> = ordered_body
            .iter()
            .map(|a| LitPlan {
                pred: db.pred_id(&a.pred).expect("registered above"),
                slots: a.terms.iter().map(|t| slot_of(t, &mut var_ids)).collect(),
            })
            .collect();
        let negatives: Vec<LitPlan> = rule
            .negative
            .iter()
            .map(|a| LitPlan {
                pred: db.pred_id(&a.pred).expect("registered above"),
                slots: a.terms.iter().map(|t| slot_of(t, &mut var_ids)).collect(),
            })
            .collect();
        let head_slots: Vec<Slot> = rule
            .head
            .terms
            .iter()
            .map(|t| slot_of(t, &mut var_ids))
            .collect();
        plans.push(RulePlan {
            rule_idx,
            head: db.pred_id(&rule.head.pred).expect("registered above"),
            head_slots,
            body,
            negatives,
            nvars: var_ids.len(),
        });
    }
    Ok(plans)
}

/// Run a fixpoint evaluation of `program` over `input`.
///
/// `input` may seed IDB predicates — that is how the uniform-equivalence
/// oracles use the engine. Facts for predicates the program never mentions
/// are loaded verbatim and simply carried through.
pub fn evaluate(
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) -> Result<EvalOutput, EngineError> {
    program.validate()?;
    let mut db = Database::new();
    let plans = compile(program, &mut db, opts.reorder_joins)?;
    // Load input facts, checking arities against the program.
    let arities = program.arities()?;
    for (pred, tuple) in input.iter() {
        if let Some(&expected) = arities.get(pred) {
            if expected != tuple.len() {
                return Err(EngineError::FactArity {
                    pred: pred.to_string(),
                    expected,
                    found: tuple.len(),
                });
            }
        }
        let id = db.register(pred, tuple.len());
        db.insert(id, tuple);
    }
    let n_preds = db.pred_count();
    let query_pred = program
        .query
        .as_ref()
        .and_then(|q| db.pred_id(&q.atom.pred));
    let n_plans = plans.len();
    let mut m = Machine {
        db: &mut db,
        plans,
        active: vec![true; n_plans],
        mark_prev: vec![0; n_preds],
        mark_cur: vec![0; n_preds],
        stats: EvalStats::default(),
        provenance: opts.record_provenance.then(Provenance::new),
        profile: opts.profile.then(|| EvalProfile {
            rules: (0..n_plans)
                .map(|i| RuleProfile {
                    rule_idx: i,
                    ..RuleProfile::default()
                })
                .collect(),
            timeline: Vec::new(),
        }),
        query_pred,
        stop_current: false,
        boolean_cut: opts.boolean_cut,
        started: Instant::now(),
        deadline: opts.deadline,
        fact_budget: opts.fact_budget,
        cancel: opts.cancel.clone(),
        until_check: LIMIT_CHECK_INTERVAL,
        trip: None,
    };

    // Stratified evaluation: each stratum runs its own fixpoint; relations
    // of lower strata are complete by the time a negated literal reads
    // them. Pure Datalog programs form a single stratum, and this loop
    // degenerates to the classic one.
    let rule_strata = stratify(program)?;
    let max_stratum = rule_strata.iter().copied().max().unwrap_or(0);
    for stratum in 0..=max_stratum {
        let mine: Vec<usize> = (0..m.plans.len())
            .filter(|&i| rule_strata[m.plans[i].rule_idx] == stratum)
            .collect();
        if mine.is_empty() {
            continue;
        }
        let mut local_iter = 0usize;
        loop {
            if m.stats.iterations >= opts.max_iterations {
                return Err(EngineError::IterationLimit {
                    limit: opts.max_iterations,
                    stats: m.stats,
                });
            }
            // Iteration-boundary limit check: covers programs whose
            // per-iteration work never reaches the in-join check cadence.
            m.check_limits();
            if let Some(e) = m.take_trip() {
                return Err(e);
            }
            m.stats.iterations += 1;
            local_iter += 1;
            let first = local_iter == 1;
            let iter_start = opts.profile.then(Instant::now);
            let retired_before = m.stats.rules_retired;
            // Snapshot marks for this iteration.
            for p in 0..n_preds {
                m.mark_cur[p] = m.db.relation(PredId(p as u32)).len();
            }
            let before = m.db.total_facts();
            match (opts.strategy, first) {
                (Strategy::Naive, _) | (_, true) => {
                    // Naive round: every active rule against full relations.
                    for &i in &mine {
                        if m.active[i] {
                            m.run_variant_profiled(i, None);
                        }
                    }
                }
                (Strategy::SemiNaive, false) => {
                    for &i in &mine {
                        if !m.active[i] {
                            continue;
                        }
                        for lit in 0..m.plans[i].body.len() {
                            let pred = m.plans[i].body[lit].pred;
                            let (s, e) = m.bounds(pred, Range::Delta);
                            if s < e {
                                m.run_variant_profiled(i, Some(lit));
                            }
                        }
                    }
                }
            }
            // A limit tripped inside a rule application: surface it now,
            // before the convergence test could mistake the partially
            // evaluated iteration for a fixpoint.
            if let Some(e) = m.take_trip() {
                return Err(e);
            }
            if opts.boolean_cut {
                m.apply_boolean_cut();
            }
            if let Some(t0) = iter_start {
                let retired = m.stats.rules_retired - retired_before;
                m.record_iteration(stratum, t0.elapsed().as_nanos() as u64, retired);
            }
            // Advance marks: what was current becomes previous.
            for p in 0..n_preds {
                m.mark_prev[p] = m.mark_cur[p];
            }
            if m.db.total_facts() == before {
                break;
            }
        }
    }
    let stats = m.stats;
    let provenance = m.provenance.take();
    let mut profile = m.profile.take();
    if let Some(profile) = &mut profile {
        // Fill in the source renderings now that the machine is done.
        for (i, rp) in profile.rules.iter_mut().enumerate() {
            let rule = &program.rules[i];
            rp.rule = rule.to_string();
            rp.head = rule.head.pred.to_string();
        }
    }
    Ok(EvalOutput {
        database: db,
        stats,
        provenance,
        profile,
    })
}

/// Evaluate and extract the query's answers: the distinct bindings of the
/// query atom's named variables (wildcards are projected out). Constants in
/// the query act as selections; a repeated variable forces equality.
pub fn query_answers(
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) -> Result<(AnswerSet, EvalStats), EngineError> {
    let (answers, out) = query_answers_full(program, input, opts)?;
    Ok((answers, out.stats))
}

/// Like [`query_answers`], but returns the whole [`EvalOutput`] so callers
/// can reach the final database, provenance, and (when
/// [`EvalOptions::profile`] is set) the per-rule/per-iteration profile.
pub fn query_answers_full(
    program: &Program,
    input: &FactSet,
    opts: &EvalOptions,
) -> Result<(AnswerSet, EvalOutput), EngineError> {
    let q = program
        .query
        .clone()
        .ok_or(EngineError::Ast(datalog_ast::AstError::NoQuery))?;
    let out = evaluate(program, input, opts)?;
    let mut answers = AnswerSet::default();
    // Output columns: named variables in first-occurrence order.
    let mut out_vars = Vec::new();
    for v in q.atom.var_occurrences() {
        if !v.is_wildcard() && !out_vars.contains(&v) {
            out_vars.push(v);
        }
    }
    answers.columns = out_vars.iter().map(|v| v.name()).collect();
    if let Some(id) = out.database.pred_id(&q.atom.pred) {
        for row in out.database.relation(id).iter() {
            let fact = datalog_ast::Atom::fact(q.atom.pred.clone(), row.to_vec());
            let mut s = subst::Subst::new();
            if subst::match_atom(&q.atom, &fact, &mut s) {
                let tuple: Vec<Value> = out_vars
                    .iter()
                    .map(|v| match s.resolve(Term::Var(*v)) {
                        Term::Const(c) => c,
                        Term::Var(_) => unreachable!("matched against ground fact"),
                    })
                    .collect();
                answers.rows.insert(tuple);
            }
        }
    }
    Ok((answers, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, PredRef};

    fn chain_edb(n: i64) -> FactSet {
        let mut fs = FactSet::new();
        for i in 0..n {
            fs.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
        }
        fs
    }

    const TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                      a(X, Y) :- p(X, Y).\n\
                      ?- a(X, Y).";

    #[test]
    fn transitive_closure_chain() {
        let p = parse_program(TC).unwrap().program;
        let (ans, stats) = query_answers(&p, &chain_edb(10), &EvalOptions::default()).unwrap();
        // Chain 0->1->...->10: closure has n*(n+1)/2 = 55 pairs.
        assert_eq!(ans.len(), 55);
        assert!(stats.facts_derived >= 55);
        assert!(stats.iterations > 2);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let p = parse_program(TC).unwrap().program;
        let edb = chain_edb(8);
        let naive = evaluate(
            &p,
            &edb,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let semi = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(naive.database.dump(), semi.database.dump());
        // Semi-naive does strictly less derivation work on a chain.
        assert!(semi.stats.derivations < naive.stats.derivations);
    }

    #[test]
    fn seminaive_derives_each_instantiation_once_on_dag() {
        // On a cycle, semi-naive must still terminate and agree with naive.
        let p = parse_program(TC).unwrap().program;
        let mut edb = FactSet::new();
        for i in 0..5 {
            edb.insert(
                PredRef::new("p"),
                vec![Value::int(i), Value::int((i + 1) % 5)],
            );
        }
        let naive = evaluate(
            &p,
            &edb,
            &EvalOptions {
                strategy: Strategy::Naive,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let semi = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        // Cycle: closure is all 25 pairs.
        let a = PredRef::new("a");
        assert_eq!(semi.database.dump().count(&a), 25);
        assert_eq!(naive.database.dump(), semi.database.dump());
    }

    #[test]
    fn constants_in_rules_and_query() {
        let p = parse_program(
            "reach(Y) :- p(0, Y).\n\
             reach(Y) :- reach(X), p(X, Y).\n\
             ?- reach(X).",
        )
        .unwrap()
        .program;
        let (ans, _) = query_answers(&p, &chain_edb(5), &EvalOptions::default()).unwrap();
        assert_eq!(ans.len(), 5); // 1..=5 reachable from 0.
    }

    #[test]
    fn query_constant_selection_and_repeated_vars() {
        let p = parse_program(TC).unwrap().program;
        // Selection: all Y reachable from 2 on a 5-chain: 3,4,5.
        let p2 = {
            let mut p = p.clone();
            p.query = Some(datalog_ast::Query::new(
                datalog_ast::parse_atom("a(2, Y)").unwrap(),
            ));
            p
        };
        let (ans, _) = query_answers(&p2, &chain_edb(5), &EvalOptions::default()).unwrap();
        assert_eq!(ans.len(), 3);
        assert_eq!(ans.columns, vec!["Y".to_string()]);
        // Repeated variable a(X, X): no loops on a chain.
        let p3 = {
            let mut p = p.clone();
            p.query = Some(datalog_ast::Query::new(
                datalog_ast::parse_atom("a(X, X)").unwrap(),
            ));
            p
        };
        let (ans, _) = query_answers(&p3, &chain_edb(5), &EvalOptions::default()).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn wildcards_in_query_are_projected() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        )
        .unwrap()
        .program;
        let (ans, _) = query_answers(&p, &chain_edb(5), &EvalOptions::default()).unwrap();
        // Distinct first components: 0..4.
        assert_eq!(ans.len(), 5);
        assert_eq!(ans.columns, vec!["X".to_string()]);
    }

    #[test]
    fn seeded_idb_facts_participate() {
        // Uniform-equivalence style input: seed the derived predicate.
        let p = parse_program(TC).unwrap().program;
        let mut input = FactSet::new();
        input.insert(PredRef::new("a"), vec![Value::sym("u"), Value::sym("v")]);
        input.insert(PredRef::new("p"), vec![Value::sym("t"), Value::sym("u")]);
        let out = evaluate(&p, &input, &EvalOptions::default()).unwrap();
        let facts = out.database.dump();
        // p(t,u) ∧ a(u,v) ⇒ a(t,v) by the recursive rule.
        assert!(facts.contains(&PredRef::new("a"), &[Value::sym("t"), Value::sym("v")]));
    }

    #[test]
    fn boolean_cut_retires_rules() {
        // q(X) :- p(X), b.   b :- big(W).
        // With the cut enabled, b's rule retires after it fires once.
        let p = parse_program(
            "q(X) :- p(X), b.\n\
             b :- big(W).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        for i in 0..10 {
            edb.insert(PredRef::new("p"), vec![Value::int(i)]);
            edb.insert(PredRef::new("big"), vec![Value::int(i)]);
        }
        let with_cut = evaluate(
            &p,
            &edb,
            &EvalOptions {
                boolean_cut: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let without = evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(with_cut.database.dump(), without.database.dump());
        assert!(with_cut.stats.rules_retired >= 1);
    }

    #[test]
    fn boolean_cut_retires_exclusive_feeders() {
        // Example 2's tail: q4 feeds only B2; once B2 holds, q4's rule
        // retires too.
        let p = parse_program(
            "q(X) :- p(X), b2.\n\
             b2 :- q3(V), q4(V).\n\
             q4(X) :- q6(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        edb.insert(PredRef::new("p"), vec![Value::int(1)]);
        edb.insert(PredRef::new("q3"), vec![Value::int(7)]);
        edb.insert(PredRef::new("q6"), vec![Value::int(7)]);
        let out = evaluate(
            &p,
            &edb,
            &EvalOptions {
                boolean_cut: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        // b2's rule and q4's rule both retired.
        assert!(out.stats.rules_retired >= 2);
        assert!(out
            .database
            .dump()
            .contains(&PredRef::new("q"), &[Value::int(1)]));
    }

    #[test]
    fn empty_edb_yields_empty_answers() {
        let p = parse_program(TC).unwrap().program;
        let (ans, stats) = query_answers(&p, &FactSet::new(), &EvalOptions::default()).unwrap();
        assert!(ans.is_empty());
        assert_eq!(stats.facts_derived, 0);
    }

    #[test]
    fn fact_arity_mismatch_is_reported() {
        let p = parse_program(TC).unwrap().program;
        let mut edb = FactSet::new();
        edb.insert(PredRef::new("p"), vec![Value::int(1)]);
        let err = evaluate(&p, &edb, &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::FactArity { .. }));
    }

    #[test]
    fn iteration_limit_triggers_with_partial_stats() {
        let p = parse_program(TC).unwrap().program;
        let err = evaluate(
            &p,
            &chain_edb(50),
            &EvalOptions {
                max_iterations: 3,
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::IterationLimit { limit: 3, .. }));
        let stats = err.partial_stats().expect("limit trips carry stats");
        assert_eq!(stats.iterations, 3);
        assert!(stats.facts_derived > 0, "partial work is reported");
        assert!(err.is_limit());
    }

    /// A program whose fixpoint is far too large to finish: the full
    /// transitive closure of a dense cycle, plus a cross product.
    fn pathological() -> (Program, FactSet) {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             big(X, Y, Z, W) :- a(X, Y), a(Z, W).\n\
             ?- big(X, _, _, _).",
        )
        .unwrap()
        .program;
        let mut edb = FactSet::new();
        for i in 0..60i64 {
            for j in 0..60i64 {
                edb.insert(PredRef::new("p"), vec![Value::int(i), Value::int(j)]);
            }
        }
        (p, edb)
    }

    #[test]
    fn deadline_trips_within_twice_the_deadline() {
        let (p, edb) = pathological();
        let deadline = std::time::Duration::from_millis(30);
        let t0 = Instant::now();
        let err = evaluate(
            &p,
            &edb,
            &EvalOptions {
                deadline: Some(t0 + deadline),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(
            matches!(err, EngineError::DeadlineExceeded { .. }),
            "{err:?}"
        );
        let stats = err.partial_stats().unwrap();
        assert!(stats.tuples_scanned > 0, "partial stats are reported");
        // The single pathological cross-product rule must not stall past
        // the cooperative check cadence: well within 2x the deadline.
        assert!(
            elapsed < deadline * 2,
            "trip observed after {elapsed:?}, deadline {deadline:?}"
        );
    }

    #[test]
    fn budget_trips_exactly_and_carries_stats() {
        let p = parse_program(TC).unwrap().program;
        let err = evaluate(
            &p,
            &chain_edb(50),
            &EvalOptions {
                fact_budget: Some(100),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        match err {
            EngineError::BudgetExceeded { budget, stats } => {
                assert_eq!(budget, 100);
                // Enforcement is exact: the trip fires on fact 101.
                assert_eq!(stats.facts_derived, 101);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A budget the fixpoint never reaches changes nothing.
        let ok = evaluate(
            &p,
            &chain_edb(10),
            &EvalOptions {
                fact_budget: Some(10_000),
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ok.stats.facts_derived, 55);
    }

    #[test]
    fn cancellation_from_another_thread_unwinds_cleanly() {
        let (p, edb) = pathological();
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        let err = evaluate(
            &p,
            &edb,
            &EvalOptions {
                cancel: Some(token),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        canceller.join().unwrap();
        assert!(matches!(err, EngineError::Cancelled { .. }), "{err:?}");
        assert!(err.partial_stats().unwrap().tuples_scanned > 0);
    }

    #[test]
    fn pre_cancelled_token_trips_before_any_iteration() {
        let p = parse_program(TC).unwrap().program;
        let token = CancelToken::new();
        token.cancel();
        let err = evaluate(
            &p,
            &chain_edb(5),
            &EvalOptions {
                cancel: Some(token),
                ..EvalOptions::default()
            },
        )
        .unwrap_err();
        let stats = err.partial_stats().unwrap();
        assert_eq!(stats.iterations, 0, "tripped at the first boundary check");
    }

    #[test]
    fn provenance_records_first_derivations() {
        let p = parse_program(TC).unwrap().program;
        let out = evaluate(
            &p,
            &chain_edb(3),
            &EvalOptions {
                record_provenance: true,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let prov = out.provenance.as_ref().unwrap();
        let a = out.database.pred_id(&PredRef::new("a")).unwrap();
        // a(0,3) exists and has a derivation tree of height >= 2.
        let tree = prov
            .derivation_tree(&out.database, a, &[Value::int(0), Value::int(3)])
            .expect("a(0,3) derived");
        assert!(tree.height() >= 2);
        let rendered = tree.render();
        assert!(rendered.contains("a(0, 3)"));
    }
}

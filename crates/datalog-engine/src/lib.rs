//! # datalog-engine
//!
//! A bottom-up (fixpoint) evaluation engine for function-free Datalog — the
//! execution substrate assumed throughout *Optimizing Existential Datalog
//! Queries* (Ramakrishnan, Beeri, Krishnamurthy; PODS 1988, §1.1).
//!
//! Features:
//!
//! * [`FactSet`]: a simple, order-insensitive fact store used as the engine's
//!   input/output currency and by the equivalence oracles;
//! * [`Relation`]/[`Database`]: interned-predicate tuple storage backed by
//!   sorted runs — a bounded mutable tail plus immutable runs per planned
//!   key-column set, bloom-gated probes, and binary-search dedup (the
//!   legacy hash-postings backend survives as a differential oracle, see
//!   [`storage::StorageMode`]);
//! * naive and **semi-naive** fixpoint evaluation ([`evaluate`]) with
//!   instrumented [`EvalStats`] (facts derived, derivations, duplicate hits,
//!   tuples scanned, index probes, iterations) — the machine-independent
//!   costs the paper's optimizations target;
//! * the **boolean-cut runtime** of §3.1: once a zero-arity predicate is
//!   proven, its defining rules are retired from the fixpoint, and rules
//!   that only feed retired rules are retired transitively — the bottom-up
//!   analogue of Prolog's cut;
//! * derivation-tree **provenance** (§1.1 of the paper defines answers via
//!   derivation trees; [`Provenance::derivation_tree`] materializes them);
//! * **optimistic derivations** (Theorem 5.2) in [`optimistic`];
//! * uniform-equivalence **oracles** in [`oracle`]: Sagiv's frozen-rule test
//!   and the paper's uniform *query* equivalence variant, plus bounded
//!   random-instance equivalence checking used heavily by the test suites.

pub mod cancel;
pub mod database;
pub mod eval;
pub mod facts;
pub mod incremental;
pub mod optimistic;
pub mod oracle;
pub mod provenance;
pub mod relation;
pub mod shared;
pub mod stats;
pub mod storage;

pub use cancel::CancelToken;
pub use database::{Database, PredId};
pub use eval::{
    evaluate, extract_answers, query_answers, query_answers_full, EvalOptions, EvalOutput, Strategy,
};
pub use facts::{AnswerSet, FactSet};
pub use incremental::{DeltaLimits, DeltaReport, Fact, ResidentEval};
pub use optimistic::optimistic_fixpoint;
pub use oracle::{uniform_query_test, uniform_test};
pub use provenance::{DerivationTree, Provenance};
pub use relation::Relation;
pub use shared::{lock_or_recover, DbSnapshot, SharedDatabase, SharedDbError, SharedRelation};
pub use stats::EvalStats;
pub use storage::{storage_counters, take_consolidation_ns, StorageCounters, StorageMode};

use datalog_ast::AstError;

/// Engine-level errors.
///
/// The resource-limit variants ([`IterationLimit`](EngineError::IterationLimit),
/// [`DeadlineExceeded`](EngineError::DeadlineExceeded),
/// [`BudgetExceeded`](EngineError::BudgetExceeded),
/// [`Cancelled`](EngineError::Cancelled)) carry the [`EvalStats`]
/// accumulated up to the trip point, so callers can report how much work a
/// refused query had already done ([`EngineError::partial_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Structural problem in the program (unsafe rule, arity clash, ...).
    Ast(AstError),
    /// A fact's arity disagrees with the predicate's arity in the program.
    FactArity {
        pred: String,
        expected: usize,
        found: usize,
    },
    /// The fixpoint exceeded the configured iteration bound.
    IterationLimit {
        /// The configured [`EvalOptions::max_iterations`](eval::EvalOptions::max_iterations).
        limit: usize,
        /// Counters accumulated up to the trip.
        stats: EvalStats,
    },
    /// The fixpoint ran past [`EvalOptions::deadline`](eval::EvalOptions::deadline).
    /// Observed cooperatively (every iteration and every few thousand
    /// joined rows), so the overshoot is bounded.
    DeadlineExceeded {
        /// Wall-clock milliseconds elapsed when the trip was observed.
        elapsed_ms: u64,
        /// Counters accumulated up to the trip.
        stats: EvalStats,
    },
    /// The fixpoint derived more new facts than
    /// [`EvalOptions::fact_budget`](eval::EvalOptions::fact_budget) allows.
    BudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// Counters accumulated up to the trip.
        stats: EvalStats,
    },
    /// The evaluation's [`CancelToken`] was triggered.
    Cancelled {
        /// Counters accumulated up to the trip.
        stats: EvalStats,
    },
    /// The program negates through recursion: no stratification exists.
    NotStratified { pred: String },
    /// The program is not monotone (it negates `pred`), so it cannot be
    /// maintained incrementally by [`incremental::ResidentEval`].
    NonMonotone { pred: String },
}

impl EngineError {
    /// The partial [`EvalStats`] a resource-limit trip carried, if any.
    pub fn partial_stats(&self) -> Option<&EvalStats> {
        match self {
            EngineError::IterationLimit { stats, .. }
            | EngineError::DeadlineExceeded { stats, .. }
            | EngineError::BudgetExceeded { stats, .. }
            | EngineError::Cancelled { stats } => Some(stats),
            _ => None,
        }
    }

    /// Whether this error is a resource-limit trip (as opposed to a
    /// structural problem with the program or input).
    pub fn is_limit(&self) -> bool {
        self.partial_stats().is_some()
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Ast(e) => write!(f, "{e}"),
            EngineError::FactArity {
                pred,
                expected,
                found,
            } => write!(
                f,
                "fact for {pred} has arity {found}, program uses {expected}"
            ),
            EngineError::IterationLimit { limit, .. } => {
                write!(f, "fixpoint did not converge within {limit} iterations")
            }
            EngineError::DeadlineExceeded { elapsed_ms, .. } => {
                write!(f, "evaluation exceeded its deadline after {elapsed_ms}ms")
            }
            EngineError::BudgetExceeded { budget, .. } => {
                write!(
                    f,
                    "evaluation exceeded its budget of {budget} derived facts"
                )
            }
            EngineError::Cancelled { .. } => write!(f, "evaluation was cancelled"),
            EngineError::NotStratified { pred } => {
                write!(
                    f,
                    "program is not stratified: {pred} is negated through recursion"
                )
            }
            EngineError::NonMonotone { pred } => {
                write!(
                    f,
                    "program is not monotone ({pred} is negated): incremental maintenance unavailable"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AstError> for EngineError {
    fn from(e: AstError) -> EngineError {
        EngineError::Ast(e)
    }
}

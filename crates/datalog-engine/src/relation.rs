//! Tuple storage for one predicate: append-only rows, duplicate
//! elimination, and composite indices over column sets.
//!
//! Rows are append-only and keep insertion order, which is what lets
//! semi-naive evaluation address "the delta" as a contiguous row-id range.
//! Two backends implement the same logical contract
//! ([`crate::storage::StorageMode`]):
//!
//! - **SortedRun** (default): a bounded mutable tail plus immutable sorted
//!   runs. Dedup is a bloom-gated binary search over flat `(hash, id)`
//!   pairs (no duplicate `seen` copy of any tuple — the row store is only
//!   consulted to verify a hash match); probes binary-search each run's
//!   materialized key array and emit per-run slices whose concatenation is
//!   ascending — byte-identical to the hash-postings order. Runs are sealed
//!   at the freeze barrier (see [`Relation::seal`]) and consolidated
//!   geometrically.
//! - **Legacy**: the original duplicate `seen` set + hash postings, kept as
//!   the differential-testing oracle (`fuzz --smoke` compares the two).
//!
//! Indices are *planned up front* (from the compiled join plans) via
//! [`Relation::ensure_index`] and maintained incrementally by
//! [`Relation::insert`] from then on. Probing is a `&self` operation
//! ([`Relation::probe_range`]), which is what lets one frozen relation be
//! shared across worker threads during a parallel fixpoint iteration.

use std::collections::HashMap;
use std::collections::HashSet;

use datalog_ast::Value;

use crate::storage::{self, IndexRuns, Postings, ProbeHits, StorageMode, TupleRuns, TAIL_LIMIT};

/// Legacy backend: duplicate tuple set + composite hash postings.
#[derive(Debug, Clone, Default)]
struct LegacyStore {
    seen: HashSet<Box<[Value]>>,
    indices: HashMap<Box<[usize]>, Postings>,
}

/// Sorted-run backend: run-based dedup + run-based composite indices.
#[derive(Debug, Clone, Default)]
struct SortedStore {
    dedup: TupleRuns,
    indices: HashMap<Box<[usize]>, IndexRuns>,
}

#[derive(Debug, Clone)]
enum Store {
    Legacy(LegacyStore),
    Sorted(SortedStore),
}

impl Default for Store {
    fn default() -> Store {
        Store::Sorted(SortedStore::default())
    }
}

/// A stored relation. See the module docs for the storage contract.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Box<[Value]>>,
    store: Store,
}

impl Relation {
    /// New empty relation of the given arity (sorted-run storage).
    pub fn new(arity: usize) -> Relation {
        Relation::with_mode(arity, StorageMode::SortedRun)
    }

    /// New empty relation with an explicit storage backend.
    pub fn with_mode(arity: usize, mode: StorageMode) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            store: match mode {
                StorageMode::Legacy => Store::Legacy(LegacyStore::default()),
                StorageMode::SortedRun => Store::Sorted(SortedStore::default()),
            },
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics (debug) on arity mismatch; callers validate arities upfront.
    pub fn insert(&mut self, tuple: &[Value]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "relation arity mismatch");
        match &mut self.store {
            Store::Legacy(s) => {
                if s.seen.contains(tuple) {
                    return false;
                }
                let boxed: Box<[Value]> = tuple.into();
                let row_id = self.rows.len() as u32;
                for (cols, index) in s.indices.iter_mut() {
                    let key: Box<[Value]> = cols.iter().map(|&c| boxed[c]).collect();
                    index.entry(key).or_default().push(row_id);
                }
                s.seen.insert(boxed.clone());
                self.rows.push(boxed);
                true
            }
            Store::Sorted(s) => {
                if s.dedup.contains(&self.rows, tuple) {
                    return false;
                }
                let boxed: Box<[Value]> = tuple.into();
                let row_id = self.rows.len() as u32;
                for (cols, index) in s.indices.iter_mut() {
                    index.tail_insert(cols, &boxed, row_id);
                }
                s.dedup.note_insert(boxed.clone());
                self.rows.push(boxed);
                if s.dedup.tail_len() >= TAIL_LIMIT {
                    self.seal();
                }
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        match &self.store {
            Store::Legacy(s) => s.seen.contains(tuple),
            Store::Sorted(s) => s.dedup.contains(&self.rows, tuple),
        }
    }

    /// Row by id.
    pub fn row(&self, id: usize) -> &[Value] {
        &self.rows[id]
    }

    /// Iterate rows in the id range `[start, end)`.
    pub fn rows_in(&self, start: usize, end: usize) -> impl Iterator<Item = (usize, &[Value])> {
        self.rows[start..end]
            .iter()
            .enumerate()
            .map(move |(i, r)| (start + i, &**r))
    }

    /// Seal the mutable tail into a sorted run and consolidate runs
    /// geometrically. A no-op on legacy storage, and safe at any point:
    /// sealing changes only the acceleration structures, never the rows or
    /// their ids. The evaluator calls this at every freeze barrier so each
    /// iteration's probes run against consolidated runs; inserts also seal
    /// automatically past [`TAIL_LIMIT`] to bound tail memory.
    pub fn seal(&mut self) {
        let Store::Sorted(s) = &mut self.store else {
            return;
        };
        let end = self.rows.len();
        if end > s.dedup.sealed() {
            let start = s.dedup.sealed();
            s.dedup.seal_to(&self.rows, end);
            for (cols, index) in s.indices.iter_mut() {
                index.seal_range(&self.rows, cols, start, end);
            }
        }
        if !s.dedup.wants_merge() {
            return;
        }
        let t0 = std::time::Instant::now();
        while s.dedup.wants_merge() {
            s.dedup.merge_last_two();
            for (cols, index) in s.indices.iter_mut() {
                index.merge_last_two(cols);
            }
        }
        storage::note_consolidation(t0.elapsed().as_nanos() as u64);
    }

    /// Seal and merge every run into one (a no-op on legacy storage).
    /// The geometric policy in [`Relation::seal`] bounds amortized ingest
    /// cost; this is the read-optimized endpoint for idle or maintenance
    /// compaction: afterwards every probe pays one bloom check and one
    /// binary search instead of one per run. Like sealing, it changes
    /// only the acceleration structures — rows, ids, and probe results
    /// are untouched.
    pub fn consolidate(&mut self) {
        self.seal();
        let Store::Sorted(s) = &mut self.store else {
            return;
        };
        if s.dedup.run_count() <= 1 {
            return;
        }
        let t0 = std::time::Instant::now();
        s.dedup.consolidate();
        for (cols, index) in s.indices.iter_mut() {
            index.consolidate(cols);
        }
        storage::note_consolidation(t0.elapsed().as_nanos() as u64);
    }

    /// Number of sealed sorted runs (0 on legacy storage).
    pub fn run_count(&self) -> usize {
        match &self.store {
            Store::Legacy(_) => 0,
            Store::Sorted(s) => s.dedup.run_count(),
        }
    }

    /// Estimated heap bytes spent on acceleration structures (dedup +
    /// indices) beyond the row store itself. The sorted-run backend's whole
    /// point is that this is a fraction of the legacy figure.
    pub fn overhead_bytes_estimate(&self) -> usize {
        match &self.store {
            Store::Legacy(s) => {
                let seen = s.seen.len() * storage::tail_entry_bytes(self.arity);
                let indices: usize = s
                    .indices
                    .iter()
                    .map(|(cols, index)| {
                        index
                            .iter()
                            .map(|(k, v)| {
                                16 + k.len() * std::mem::size_of::<Value>() + v.len() * 4 + 16
                            })
                            .sum::<usize>()
                            + cols.len()
                    })
                    .sum();
                seen + indices
            }
            Store::Sorted(s) => {
                let dedup = s.dedup.bytes_estimate(self.arity);
                let indices: usize = s
                    .indices
                    .iter()
                    .map(|(cols, index)| index.bytes_estimate(cols.len()))
                    .sum();
                dedup + indices
            }
        }
    }

    /// Build the index over the column set `cols` if it does not exist yet.
    /// `cols` must be non-empty, strictly ascending, and within the arity.
    /// Once built, the index is maintained incrementally by `insert`.
    ///
    /// On sorted-run storage a late-planned index is built from the sealed
    /// dedup-run bounds — contiguous range scans, one sort per run — rather
    /// than a full-table hash build, and the rebuild is counted in the
    /// process-wide storage telemetry.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty(), "index over the empty column set");
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "columns not sorted");
        debug_assert!(cols.iter().all(|&c| c < self.arity), "column out of range");
        match &mut self.store {
            Store::Legacy(s) => {
                if s.indices.contains_key(cols) {
                    return;
                }
                let mut index = Postings::new();
                for (i, row) in self.rows.iter().enumerate() {
                    let key: Box<[Value]> = cols.iter().map(|&c| row[c]).collect();
                    index.entry(key).or_default().push(i as u32);
                }
                s.indices.insert(cols.into(), index);
            }
            Store::Sorted(s) => {
                if s.indices.contains_key(cols) {
                    return;
                }
                let index = IndexRuns::build(&self.rows, cols, &s.dedup.bounds(), s.dedup.sealed());
                s.indices.insert(cols.into(), index);
            }
        }
    }

    /// Ids of rows in `[start, end)` whose projection onto `cols` equals
    /// `key`. Row ids within each posting/run group are ascending, so the
    /// `[start, end)` bounds are found by binary search instead of a linear
    /// filter — the caller gets exactly the delta range's hits with no
    /// copying, in ascending id order regardless of backend.
    ///
    /// The index over `cols` must have been built with
    /// [`Relation::ensure_index`]; probing is read-only so a frozen
    /// relation can be shared across threads.
    ///
    /// # Panics
    /// Panics if no index over `cols` exists.
    pub fn probe_range(
        &self,
        cols: &[usize],
        key: &[Value],
        start: usize,
        end: usize,
    ) -> ProbeHits<'_> {
        let mut out = ProbeHits::new();
        match &self.store {
            Store::Legacy(s) => {
                let index = s
                    .indices
                    .get(cols)
                    .unwrap_or_else(|| panic!("probe_range over unplanned index {cols:?}"));
                if let Some(postings) = index.get(key) {
                    let lo = postings.partition_point(|&id| (id as usize) < start);
                    let hi = postings.partition_point(|&id| (id as usize) < end);
                    out.push(&postings[lo..hi]);
                }
            }
            Store::Sorted(s) => {
                let index = s
                    .indices
                    .get(cols)
                    .unwrap_or_else(|| panic!("probe_range over unplanned index {cols:?}"));
                index.probe(key, start, end, &mut out);
            }
        }
        out
    }

    /// Whether an index over the column set `cols` has been materialized.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        match &self.store {
            Store::Legacy(s) => s.indices.contains_key(cols),
            Store::Sorted(s) => s.indices.contains_key(cols),
        }
    }

    /// Iterate all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| &**r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    fn both_modes(f: impl Fn(StorageMode)) {
        f(StorageMode::Legacy);
        f(StorageMode::SortedRun);
    }

    #[test]
    fn insert_dedups() {
        both_modes(|mode| {
            let mut r = Relation::with_mode(2, mode);
            assert!(r.insert(&t(&[1, 2])));
            assert!(!r.insert(&t(&[1, 2])));
            assert!(r.insert(&t(&[2, 1])));
            assert_eq!(r.len(), 2);
            assert!(r.contains(&t(&[1, 2])));
            assert!(!r.contains(&t(&[3, 3])));
        });
    }

    #[test]
    fn rows_keep_insertion_order() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(&t(&[i]));
        }
        let ids: Vec<usize> = r.rows_in(2, 5).map(|(i, _)| i).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(r.row(3), &t(&[3])[..]);
    }

    #[test]
    fn ensure_index_builds_then_insert_maintains() {
        both_modes(|mode| {
            let mut r = Relation::with_mode(2, mode);
            r.insert(&t(&[1, 10]));
            r.insert(&t(&[2, 20]));
            r.insert(&t(&[1, 30]));
            assert!(!r.has_index(&[0]));
            r.ensure_index(&[0]);
            assert!(r.has_index(&[0]));
            let hits = r.probe_range(&[0], &t(&[1]), 0, 3);
            assert_eq!(hits.to_vec(), vec![0, 2]);
            // Insert after index creation: index must stay in sync.
            r.insert(&t(&[1, 40]));
            let hits = r.probe_range(&[0], &t(&[1]), 0, 4);
            assert_eq!(hits.to_vec(), vec![0, 2, 3]);
            // Probing a missing value yields nothing.
            assert!(r.probe_range(&[0], &t(&[9]), 0, 4).is_empty());
        });
    }

    #[test]
    fn probe_range_binary_searches_the_bounds() {
        both_modes(|mode| {
            let mut r = Relation::with_mode(2, mode);
            // Rows 0..8; even row ids carry key 7.
            for i in 0..8 {
                r.insert(&t(&[if i % 2 == 0 { 7 } else { 1 }, i]));
            }
            r.ensure_index(&[0]);
            let key = t(&[7]);
            // Full range: all even ids.
            assert_eq!(r.probe_range(&[0], &key, 0, 8).to_vec(), vec![0, 2, 4, 6]);
            // A delta range strictly inside: only the hits within it.
            assert_eq!(r.probe_range(&[0], &key, 2, 6).to_vec(), vec![2, 4]);
            // Boundaries are half-open: start is inclusive, end exclusive.
            assert_eq!(r.probe_range(&[0], &key, 2, 7).to_vec(), vec![2, 4, 6]);
            assert_eq!(r.probe_range(&[0], &key, 3, 6).to_vec(), vec![4]);
            // Ranges touching the ends and empty ranges.
            assert_eq!(r.probe_range(&[0], &key, 6, 8).to_vec(), vec![6]);
            assert!(r.probe_range(&[0], &key, 7, 8).is_empty());
            assert!(r.probe_range(&[0], &key, 4, 4).is_empty());
        });
    }

    #[test]
    fn composite_index_probes_all_bound_columns() {
        both_modes(|mode| {
            let mut r = Relation::with_mode(3, mode);
            r.insert(&t(&[1, 5, 9]));
            r.insert(&t(&[1, 6, 9]));
            r.insert(&t(&[1, 5, 8]));
            r.insert(&t(&[2, 5, 9]));
            r.ensure_index(&[0, 2]);
            assert!(r.has_index(&[0, 2]));
            assert!(!r.has_index(&[0]));
            assert_eq!(
                r.probe_range(&[0, 2], &t(&[1, 9]), 0, 4).to_vec(),
                vec![0, 1]
            );
            assert_eq!(r.probe_range(&[0, 2], &t(&[2, 9]), 0, 4).to_vec(), vec![3]);
            assert!(r.probe_range(&[0, 2], &t(&[2, 8]), 0, 4).is_empty());
            // The composite index stays fresh across inserts too.
            r.insert(&t(&[1, 7, 9]));
            assert_eq!(
                r.probe_range(&[0, 2], &t(&[1, 9]), 0, 5).to_vec(),
                vec![0, 1, 4]
            );
        });
    }

    #[test]
    fn zero_arity_relation_holds_one_row() {
        both_modes(|mode| {
            let mut r = Relation::with_mode(0, mode);
            assert!(r.insert(&[]));
            assert!(!r.insert(&[]));
            assert_eq!(r.len(), 1);
            assert!(r.contains(&[]));
        });
    }

    #[test]
    fn sealing_preserves_probe_results_and_order() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        let mut expect: Vec<u32> = Vec::new();
        // Interleave inserts with seals so hits span several runs + tail.
        for i in 0..300i64 {
            if r.insert(&t(&[i % 5, i])) && i % 5 == 2 {
                expect.push(i as u32);
            }
            if i % 37 == 0 {
                r.seal();
            }
        }
        assert!(r.run_count() >= 1, "seals produced no runs");
        let key = t(&[2]);
        assert_eq!(r.probe_range(&[0], &key, 0, 300).to_vec(), expect);
        // Delta subranges stay exact across run boundaries.
        let sub: Vec<u32> = expect
            .iter()
            .copied()
            .filter(|&i| (40..200).contains(&(i as usize)))
            .collect();
        assert_eq!(r.probe_range(&[0], &key, 40, 200).to_vec(), sub);
        // Full seal + consolidation: identical again.
        r.seal();
        assert_eq!(r.probe_range(&[0], &key, 0, 300).to_vec(), expect);
        for i in 0..300i64 {
            assert!(r.contains(&t(&[i % 5, i])));
        }
        assert!(!r.contains(&t(&[7, 7])));
    }

    #[test]
    fn consolidate_collapses_runs_and_preserves_results() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        for i in 0..400i64 {
            r.insert(&t(&[i % 7, i]));
            if i % 31 == 0 {
                r.seal();
            }
        }
        r.seal();
        assert!(
            r.run_count() >= 2,
            "workload produced {} runs",
            r.run_count()
        );
        let before: Vec<u32> = r.probe_range(&[0], &t(&[3]), 0, 400).to_vec();
        r.consolidate();
        assert_eq!(r.run_count(), 1);
        assert_eq!(r.probe_range(&[0], &t(&[3]), 0, 400).to_vec(), before);
        assert_eq!(
            r.probe_range(&[0], &t(&[3]), 50, 200).to_vec(),
            before
                .iter()
                .copied()
                .filter(|&i| (50..200).contains(&(i as usize)))
                .collect::<Vec<u32>>()
        );
        for i in 0..400i64 {
            assert!(r.contains(&t(&[i % 7, i])));
        }
        assert!(!r.contains(&t(&[8, 8])));
    }

    #[test]
    fn sorted_and_legacy_storage_agree() {
        let mut sorted = Relation::new(2);
        let mut legacy = Relation::with_mode(2, StorageMode::Legacy);
        sorted.ensure_index(&[1]);
        legacy.ensure_index(&[1]);
        // A deterministic pseudo-random workload with duplicates.
        let mut x = 42u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let tuple = t(&[(step() % 50) as i64, (step() % 20) as i64]);
            assert_eq!(sorted.insert(&tuple), legacy.insert(&tuple));
            if step() % 97 == 0 {
                sorted.seal();
            }
        }
        assert_eq!(sorted.len(), legacy.len());
        for k in 0..20i64 {
            let key = t(&[k]);
            for (start, end) in [(0, sorted.len()), (13, sorted.len() / 2), (600, 601)] {
                assert_eq!(
                    sorted.probe_range(&[1], &key, start, end).to_vec(),
                    legacy.probe_range(&[1], &key, start, end).to_vec(),
                    "key {k} range {start}..{end}"
                );
            }
        }
        // Late-planned index over existing sealed runs.
        sorted.ensure_index(&[0]);
        legacy.ensure_index(&[0]);
        for k in 0..50i64 {
            assert_eq!(
                sorted.probe_range(&[0], &t(&[k]), 0, sorted.len()).to_vec(),
                legacy.probe_range(&[0], &t(&[k]), 0, legacy.len()).to_vec(),
            );
        }
    }

    #[test]
    fn sorted_overhead_is_smaller_than_legacy() {
        let mut sorted = Relation::new(3);
        let mut legacy = Relation::with_mode(3, StorageMode::Legacy);
        sorted.ensure_index(&[0]);
        legacy.ensure_index(&[0]);
        for i in 0..5000i64 {
            sorted.insert(&t(&[i % 100, i, i * 7]));
            legacy.insert(&t(&[i % 100, i, i * 7]));
        }
        sorted.seal();
        assert!(
            sorted.overhead_bytes_estimate() * 2 < legacy.overhead_bytes_estimate(),
            "sorted {} vs legacy {}",
            sorted.overhead_bytes_estimate(),
            legacy.overhead_bytes_estimate()
        );
    }
}

//! Tuple storage for one predicate: append-only rows, duplicate
//! elimination, and composite hash indices over column sets.
//!
//! Indices are *planned up front* (from the compiled join plans) via
//! [`Relation::ensure_index`] and maintained incrementally by
//! [`Relation::insert`] from then on. Probing is a `&self` operation
//! ([`Relation::probe_range`]), which is what lets one frozen relation be
//! shared across worker threads during a parallel fixpoint iteration.

use std::collections::HashMap;
use std::collections::HashSet;

use datalog_ast::Value;

/// One composite index: projection key → ascending ids of matching rows.
type Postings = HashMap<Box<[Value]>, Vec<u32>>;

/// A stored relation. Rows are append-only and keep insertion order, which
/// is what lets semi-naive evaluation address "the delta" as a contiguous
/// row-id range.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Box<[Value]>>,
    seen: HashSet<Box<[Value]>>,
    /// Composite indices keyed by (sorted) column sets:
    /// `indices[cols][key]` lists, in ascending order, the ids of rows
    /// whose projection onto `cols` equals `key`. Built explicitly by
    /// `ensure_index`, kept fresh by `insert`.
    indices: HashMap<Box<[usize]>, Postings>,
}

impl Relation {
    /// New empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics (debug) on arity mismatch; callers validate arities upfront.
    pub fn insert(&mut self, tuple: &[Value]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "relation arity mismatch");
        if self.seen.contains(tuple) {
            return false;
        }
        let boxed: Box<[Value]> = tuple.into();
        let row_id = self.rows.len() as u32;
        for (cols, index) in self.indices.iter_mut() {
            let key: Box<[Value]> = cols.iter().map(|&c| boxed[c]).collect();
            index.entry(key).or_default().push(row_id);
        }
        self.seen.insert(boxed.clone());
        self.rows.push(boxed);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.seen.contains(tuple)
    }

    /// Row by id.
    pub fn row(&self, id: usize) -> &[Value] {
        &self.rows[id]
    }

    /// Iterate rows in the id range `[start, end)`.
    pub fn rows_in(&self, start: usize, end: usize) -> impl Iterator<Item = (usize, &[Value])> {
        self.rows[start..end]
            .iter()
            .enumerate()
            .map(move |(i, r)| (start + i, &**r))
    }

    /// Build the index over the column set `cols` if it does not exist yet.
    /// `cols` must be non-empty, strictly ascending, and within the arity.
    /// Once built, the index is maintained incrementally by `insert`.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        debug_assert!(!cols.is_empty(), "index over the empty column set");
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "columns not sorted");
        debug_assert!(cols.iter().all(|&c| c < self.arity), "column out of range");
        if self.indices.contains_key(cols) {
            return;
        }
        let mut index = Postings::new();
        for (i, row) in self.rows.iter().enumerate() {
            let key: Box<[Value]> = cols.iter().map(|&c| row[c]).collect();
            index.entry(key).or_default().push(i as u32);
        }
        self.indices.insert(cols.into(), index);
    }

    /// Ids of rows in `[start, end)` whose projection onto `cols` equals
    /// `key`, as a subslice of the index postings. Row ids are appended in
    /// order, so the `[start, end)` bounds are found by binary search
    /// instead of a linear filter — the caller gets exactly the delta
    /// range's hits with no copying.
    ///
    /// The index over `cols` must have been built with
    /// [`Relation::ensure_index`]; probing is read-only so a frozen
    /// relation can be shared across threads.
    ///
    /// # Panics
    /// Panics if no index over `cols` exists.
    pub fn probe_range(&self, cols: &[usize], key: &[Value], start: usize, end: usize) -> &[u32] {
        let index = self
            .indices
            .get(cols)
            .unwrap_or_else(|| panic!("probe_range over unplanned index {cols:?}"));
        let Some(postings) = index.get(key) else {
            return &[];
        };
        let lo = postings.partition_point(|&id| (id as usize) < start);
        let hi = postings.partition_point(|&id| (id as usize) < end);
        &postings[lo..hi]
    }

    /// Whether an index over the column set `cols` has been materialized.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indices.contains_key(cols)
    }

    /// Iterate all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| &**r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(&t(&[1, 2])));
        assert!(!r.insert(&t(&[1, 2])));
        assert!(r.insert(&t(&[2, 1])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[3, 3])));
    }

    #[test]
    fn rows_keep_insertion_order() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(&t(&[i]));
        }
        let ids: Vec<usize> = r.rows_in(2, 5).map(|(i, _)| i).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(r.row(3), &t(&[3])[..]);
    }

    #[test]
    fn ensure_index_builds_then_insert_maintains() {
        let mut r = Relation::new(2);
        r.insert(&t(&[1, 10]));
        r.insert(&t(&[2, 20]));
        r.insert(&t(&[1, 30]));
        assert!(!r.has_index(&[0]));
        r.ensure_index(&[0]);
        assert!(r.has_index(&[0]));
        let hits = r.probe_range(&[0], &t(&[1]), 0, 3);
        assert_eq!(hits, &[0, 2]);
        // Insert after index creation: index must stay in sync.
        r.insert(&t(&[1, 40]));
        let hits = r.probe_range(&[0], &t(&[1]), 0, 4);
        assert_eq!(hits, &[0, 2, 3]);
        // Probing a missing value yields nothing.
        assert!(r.probe_range(&[0], &t(&[9]), 0, 4).is_empty());
    }

    #[test]
    fn probe_range_binary_searches_the_bounds() {
        let mut r = Relation::new(2);
        // Rows 0..8; even row ids carry key 7.
        for i in 0..8 {
            r.insert(&t(&[if i % 2 == 0 { 7 } else { 1 }, i]));
        }
        r.ensure_index(&[0]);
        let key = t(&[7]);
        // Full range: all even ids.
        assert_eq!(r.probe_range(&[0], &key, 0, 8), &[0, 2, 4, 6]);
        // A delta range strictly inside: only the hits within it.
        assert_eq!(r.probe_range(&[0], &key, 2, 6), &[2, 4]);
        // Boundaries are half-open: start is inclusive, end exclusive.
        assert_eq!(r.probe_range(&[0], &key, 2, 7), &[2, 4, 6]);
        assert_eq!(r.probe_range(&[0], &key, 3, 6), &[4]);
        // Ranges touching the ends and empty ranges.
        assert_eq!(r.probe_range(&[0], &key, 6, 8), &[6]);
        assert_eq!(r.probe_range(&[0], &key, 7, 8), &[] as &[u32]);
        assert_eq!(r.probe_range(&[0], &key, 4, 4), &[] as &[u32]);
    }

    #[test]
    fn composite_index_probes_all_bound_columns() {
        let mut r = Relation::new(3);
        r.insert(&t(&[1, 5, 9]));
        r.insert(&t(&[1, 6, 9]));
        r.insert(&t(&[1, 5, 8]));
        r.insert(&t(&[2, 5, 9]));
        r.ensure_index(&[0, 2]);
        assert!(r.has_index(&[0, 2]));
        assert!(!r.has_index(&[0]));
        assert_eq!(r.probe_range(&[0, 2], &t(&[1, 9]), 0, 4), &[0, 1]);
        assert_eq!(r.probe_range(&[0, 2], &t(&[2, 9]), 0, 4), &[3]);
        assert_eq!(r.probe_range(&[0, 2], &t(&[2, 8]), 0, 4), &[] as &[u32]);
        // The composite index stays fresh across inserts too.
        r.insert(&t(&[1, 7, 9]));
        assert_eq!(r.probe_range(&[0, 2], &t(&[1, 9]), 0, 5), &[0, 1, 4]);
    }

    #[test]
    fn zero_arity_relation_holds_one_row() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }
}

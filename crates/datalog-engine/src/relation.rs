//! Tuple storage for one predicate: append-only rows, duplicate
//! elimination, and lazily built per-column hash indices.

use std::collections::HashMap;
use std::collections::HashSet;

use datalog_ast::Value;

/// A stored relation. Rows are append-only and keep insertion order, which
/// is what lets semi-naive evaluation address "the delta" as a contiguous
/// row-id range.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Box<[Value]>>,
    seen: HashSet<Box<[Value]>>,
    /// Lazily built single-column indices: `indices[col][value]` lists the
    /// row ids whose column `col` equals `value`. Once built, an index is
    /// maintained incrementally by `insert`.
    indices: HashMap<usize, HashMap<Value, Vec<u32>>>,
}

impl Relation {
    /// New empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics (debug) on arity mismatch; callers validate arities upfront.
    pub fn insert(&mut self, tuple: &[Value]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "relation arity mismatch");
        if self.seen.contains(tuple) {
            return false;
        }
        let boxed: Box<[Value]> = tuple.into();
        let row_id = self.rows.len() as u32;
        for (&col, index) in self.indices.iter_mut() {
            index.entry(boxed[col]).or_default().push(row_id);
        }
        self.seen.insert(boxed.clone());
        self.rows.push(boxed);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.seen.contains(tuple)
    }

    /// Row by id.
    pub fn row(&self, id: usize) -> &[Value] {
        &self.rows[id]
    }

    /// Iterate rows in the id range `[start, end)`.
    pub fn rows_in(&self, start: usize, end: usize) -> impl Iterator<Item = (usize, &[Value])> {
        self.rows[start..end]
            .iter()
            .enumerate()
            .map(move |(i, r)| (start + i, &**r))
    }

    /// Ensure a hash index exists on `col` and return row ids matching
    /// `value` (unsliced — caller filters by range). Returns an empty slice
    /// when no row matches.
    pub fn probe(&mut self, col: usize, value: Value) -> &[u32] {
        debug_assert!(col < self.arity);
        let index = self.indices.entry(col).or_default();
        if index.is_empty() && !self.rows.is_empty() {
            for (i, row) in self.rows.iter().enumerate() {
                index.entry(row[col]).or_default().push(i as u32);
            }
        }
        index.get(&value).map_or(&[], |v| v.as_slice())
    }

    /// Whether an index on `col` has been materialized.
    pub fn has_index(&self, col: usize) -> bool {
        self.indices.contains_key(&col)
    }

    /// Iterate all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| &**r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(&t(&[1, 2])));
        assert!(!r.insert(&t(&[1, 2])));
        assert!(r.insert(&t(&[2, 1])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[3, 3])));
    }

    #[test]
    fn rows_keep_insertion_order() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(&t(&[i]));
        }
        let ids: Vec<usize> = r.rows_in(2, 5).map(|(i, _)| i).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(r.row(3), &t(&[3])[..]);
    }

    #[test]
    fn probe_builds_index_lazily_then_maintains() {
        let mut r = Relation::new(2);
        r.insert(&t(&[1, 10]));
        r.insert(&t(&[2, 20]));
        r.insert(&t(&[1, 30]));
        assert!(!r.has_index(0));
        let hits: Vec<u32> = r.probe(0, Value::int(1)).to_vec();
        assert_eq!(hits, vec![0, 2]);
        assert!(r.has_index(0));
        // Insert after index creation: index must stay in sync.
        r.insert(&t(&[1, 40]));
        let hits: Vec<u32> = r.probe(0, Value::int(1)).to_vec();
        assert_eq!(hits, vec![0, 2, 3]);
        // Probing a missing value yields nothing.
        assert!(r.probe(0, Value::int(9)).is_empty());
    }

    #[test]
    fn zero_arity_relation_holds_one_row() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }
}

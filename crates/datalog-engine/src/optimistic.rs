//! Optimistic derivations (Theorem 5.2 of the paper).
//!
//! Given a program and an input fact set, an *optimistic derivation* fires a
//! rule as soon as **one** body literal is instantiated to a known fact; the
//! remaining literals are assumed. The paper uses the optimistic answer as
//! an over-approximation of the query facts any *context* (additional input
//! facts) could derive "through" the frozen body of a candidate-for-deletion
//! rule.
//!
//! The paper's definition quantifies over ground instances but does not pin
//! down how head variables that the known fact leaves unbound are grounded.
//! We implement both readings:
//!
//! * [`Grounding::ActiveDomain`] — unbound head variables range over the
//!   active domain (input constants plus rule constants). This is the
//!   literal reading; it is *conservative* (a larger optimistic answer makes
//!   the Theorem 5.2 test harder to pass). Notably, under this reading the
//!   test rejects the paper's own Example 6 deletion (see
//!   `datalog-opt`'s documentation and EXPERIMENTS.md).
//! * [`Grounding::KnownOnly`] — a rule fires optimistically only when the
//!   known literal (plus constants) grounds the *entire head*. This reading
//!   accepts Example 6 but is demonstrably too weak to be sound in general
//!   (see the `known_only_is_unsound_in_general` test below for a
//!   counterexample), so the optimizer pipeline never relies on it alone.

use std::collections::BTreeSet;

use datalog_ast::{subst, Program, Term, Value, Var};

use crate::facts::FactSet;

/// How to ground head variables that the known literal leaves unbound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Grounding {
    /// Enumerate the active domain (literal reading of the paper).
    #[default]
    ActiveDomain,
    /// Require the known literal to ground the head (strict reading).
    KnownOnly,
}

/// Compute the optimistic fixpoint of `program` over `input`.
pub fn optimistic_fixpoint(program: &Program, input: &FactSet, grounding: Grounding) -> FactSet {
    let mut known = input.clone();
    // Active domain: input constants plus constants in the rules.
    let mut domain: BTreeSet<Value> = input.active_domain();
    for r in &program.rules {
        for t in r
            .head
            .terms
            .iter()
            .chain(r.body.iter().flat_map(|a| a.terms.iter()))
        {
            if let Term::Const(c) = t {
                domain.insert(*c);
            }
        }
    }
    let domain: Vec<Value> = domain.into_iter().collect();

    loop {
        let mut new_facts: Vec<(datalog_ast::PredRef, Vec<Value>)> = Vec::new();
        for rule in &program.rules {
            for lit in &rule.body {
                // Unify this literal with each known fact of its predicate.
                let snapshot: Vec<Vec<Value>> = known.tuples(&lit.pred).cloned().collect();
                for tuple in snapshot {
                    let fact = datalog_ast::Atom::fact(lit.pred.clone(), tuple);
                    let mut s = subst::Subst::new();
                    if !subst::match_atom(lit, &fact, &mut s) {
                        continue;
                    }
                    let head = s.apply_atom(&rule.head);
                    let unbound: Vec<Var> = head.vars();
                    if unbound.is_empty() {
                        let values = head.ground_values().expect("no vars left");
                        if !known.contains(&head.pred, &values) {
                            new_facts.push((head.pred.clone(), values));
                        }
                        continue;
                    }
                    if grounding == Grounding::KnownOnly {
                        continue;
                    }
                    // Enumerate assignments of the unbound head variables
                    // over the active domain.
                    enumerate_groundings(&head, &unbound, &domain, &mut |values| {
                        if !known.contains(&head.pred, values) {
                            new_facts.push((head.pred.clone(), values.to_vec()));
                        }
                    });
                }
            }
        }
        let mut changed = false;
        for (p, t) in new_facts {
            changed |= known.insert(p, t);
        }
        if !changed {
            return known;
        }
    }
}

fn enumerate_groundings(
    head: &datalog_ast::Atom,
    unbound: &[Var],
    domain: &[Value],
    emit: &mut dyn FnMut(&[Value]),
) {
    if domain.is_empty() {
        return;
    }
    let mut assignment: Vec<usize> = vec![0; unbound.len()];
    loop {
        let values: Vec<Value> = head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => {
                    let i = unbound.iter().position(|u| u == v).expect("unbound var");
                    domain[assignment[i]]
                }
            })
            .collect();
        emit(&values);
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return;
            }
            assignment[i] += 1;
            if assignment[i] < domain.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, PredRef};

    fn fs(pairs: &[(&str, &[&str])]) -> FactSet {
        let mut f = FactSet::new();
        for (p, args) in pairs {
            f.insert(
                PredRef::new(p),
                args.iter().map(|a| Value::sym(a)).collect(),
            );
        }
        f
    }

    #[test]
    fn fully_bound_heads_derive_under_both_semantics() {
        let p = parse_program("h(X, Y) :- s(X, Y).").unwrap().program;
        let input = fs(&[("s", &["a", "b"])]);
        for g in [Grounding::ActiveDomain, Grounding::KnownOnly] {
            let out = optimistic_fixpoint(&p, &input, g);
            assert!(out.contains(&PredRef::new("h"), &[Value::sym("a"), Value::sym("b")]));
        }
    }

    #[test]
    fn one_known_literal_suffices() {
        // q(X) :- h(X, Y), w(Y). With only h(a,b) known, q(a) is derived
        // optimistically (w assumed) under both semantics, since h grounds X.
        let p = parse_program("q(X) :- h(X, Y), w(Y).").unwrap().program;
        let input = fs(&[("h", &["a", "b"])]);
        for g in [Grounding::ActiveDomain, Grounding::KnownOnly] {
            let out = optimistic_fixpoint(&p, &input, g);
            assert!(
                out.contains(&PredRef::new("q"), &[Value::sym("a")]),
                "grounding {g:?}"
            );
        }
    }

    #[test]
    fn active_domain_enumerates_unbound_head_vars() {
        // q(X) :- h(Y), w(Y, X): knowing h(a) grounds nothing in the head,
        // so ActiveDomain derives q(a) (the only domain value) while
        // KnownOnly derives nothing.
        let p = parse_program("q(X) :- h(Y), w(Y, X).").unwrap().program;
        let input = fs(&[("h", &["a"])]);
        let liberal = optimistic_fixpoint(&p, &input, Grounding::ActiveDomain);
        assert!(liberal.contains(&PredRef::new("q"), &[Value::sym("a")]));
        let strict = optimistic_fixpoint(&p, &input, Grounding::KnownOnly);
        assert_eq!(strict.count(&PredRef::new("q")), 0);
    }

    /// The strict (KnownOnly) reading under-approximates what contexts can
    /// derive: here a context fact `w(a, e)` would yield `q(e)`, yet the
    /// strict optimistic answer from `{s(a)}` contains no `q` fact at all.
    /// This is why the optimizer never uses KnownOnly as a deletion
    /// justification on its own.
    #[test]
    fn known_only_is_unsound_in_general() {
        let p = parse_program(
            "q(X) :- h(Y), w(Y, X).\n\
             h(Y) :- s(Y).",
        )
        .unwrap()
        .program;
        let input = fs(&[("s", &["a"])]);
        let strict = optimistic_fixpoint(&p, &input, Grounding::KnownOnly);
        assert_eq!(strict.count(&PredRef::new("q")), 0);
        // The liberal reading flags the possibility via the domain proxy.
        let liberal = optimistic_fixpoint(&p, &input, Grounding::ActiveDomain);
        assert!(liberal.count(&PredRef::new("q")) > 0);
    }

    #[test]
    fn fixpoint_terminates_on_recursive_programs() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).",
        )
        .unwrap()
        .program;
        let input = fs(&[("p", &["u", "v"])]);
        let out = optimistic_fixpoint(&p, &input, Grounding::ActiveDomain);
        // Domain {u, v}: optimistic a-facts are bounded by 2*2 = 4.
        assert!(out.count(&PredRef::new("a")) <= 4);
        assert!(out.contains(&PredRef::new("a"), &[Value::sym("u"), Value::sym("v")]));
    }

    #[test]
    fn empty_input_derives_nothing_without_constants() {
        let p = parse_program("q(X) :- p(X).").unwrap().program;
        let out = optimistic_fixpoint(&p, &FactSet::new(), Grounding::ActiveDomain);
        assert!(out.is_empty());
    }
}

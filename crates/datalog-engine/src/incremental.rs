//! Incremental view maintenance: resident semi-naive state with delta
//! propagation.
//!
//! A [`ResidentEval`] retains everything a cold [`crate::evaluate`] run
//! builds and then throws away — the saturated [`Database`] (derived
//! relations *and* their composite probe indexes), the compiled rule
//! plans, and the per-predicate semi-naive marks at convergence. From that
//! frontier, [`ResidentEval::apply_deltas`] pushes a batch of newly
//! ingested EDB facts through the **same** freeze → plan → fan-out → merge
//! iteration barrier the cold evaluator uses ([`Machine::run_stratum`]),
//! so propagation is parallel and byte-identical across thread counts for
//! free: tasks are planned from frozen marks, workers only enumerate into
//! buffers, and the merge replays them in fixed (rule, variant, chunk)
//! order.
//!
//! ## Why semi-naive state restarts cleanly
//!
//! At a converged fixpoint every predicate's `mark_prev == mark_cur ==
//! len`: all deltas are empty. Inserting a batch of new rows and re-running
//! the loop **without** a seed round makes iteration 1's deltas exactly
//! the inserted rows — the delta-variant discipline (each variant reads
//! one literal's delta, earlier literals full, later literals old) then
//! enumerates exactly the rule instantiations that touch at least one new
//! fact, which is the textbook correctness argument for incremental
//! semi-naive maintenance of monotone programs. The seed round is only
//! needed on construction (it is also what fires empty-body unit rules,
//! which have no delta variants at all).
//!
//! ## What "identical to a cold run" means here
//!
//! For a monotone program, the resident database after any sequence of
//! batches is **set-identical** to a cold fixpoint over the union of the
//! inputs ([`Database::dump`] compares equal), and query answers extracted
//! from it are **byte-identical** (an [`AnswerSet`] is canonically
//! sorted). Physical row *order* inside derived relations legitimately
//! differs from the cold run's — rows arrive in delta order, not seed
//! order — which is why the identity the server and the differential
//! fuzzer enforce is: answers byte-identical vs cold, database
//! set-identical vs cold, and the *incremental path itself* byte-identical
//! (rows, order, provenance, stats) across thread counts.
//!
//! ## Scope
//!
//! Only **monotone** programs (no negated literals anywhere) are
//! maintainable this way: a new EDB fact can never invalidate a fact
//! derived through negation-free rules, so the retained frontier stays a
//! subset of the new fixpoint. [`ResidentEval::supports`] is the gate;
//! [`ResidentEval::new`] refuses non-monotone programs with
//! [`EngineError::NonMonotone`]. The §3.1 boolean cut is likewise disabled
//! for resident state: retirement *timing* is data-dependent, so a cut
//! taken against a partial database could suppress derivations a cold run
//! over the full database would have made, breaking set-identity.

use std::collections::BTreeMap;
use std::time::Instant;

use datalog_ast::{Atom, PredRef, Program, Value};
use datalog_trace::metrics::EvalHists;

use crate::cancel::CancelToken;
use crate::database::Database;
use crate::eval::{
    compile, ensure_probe_indexes, extract_answers, load_input, EvalOptions, Machine, RulePlan,
    Strategy,
};
use crate::facts::{AnswerSet, FactSet};
use crate::provenance::Provenance;
use crate::stats::EvalStats;
use crate::EngineError;

/// One ingested EDB fact, addressed by predicate name (the resident state
/// interns predicates itself; new predicates are registered on first use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    pub pred: PredRef,
    pub tuple: Vec<Value>,
}

impl Fact {
    pub fn new(pred: PredRef, tuple: Vec<Value>) -> Fact {
        Fact { pred, tuple }
    }
}

/// Per-call limits for one delta propagation. Unlike a cold evaluation
/// there is no fact budget: a propagation either completes or the resident
/// state is poisoned, so the only useful limits are the cooperative ones.
#[derive(Debug, Clone, Default)]
pub struct DeltaLimits {
    /// Wall-clock deadline, polled on the evaluator's usual cadence.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation, same cadence.
    pub cancel: Option<CancelToken>,
}

/// An immutable description of one converged resident frontier, published
/// at construction and re-published after every successful
/// [`ResidentEval::apply_deltas`]. The version counter is monotone per
/// resident instance (1 at construction, +1 per converged batch — no-op
/// batches included, since convergence was re-confirmed), the watermark
/// counts every distinct input fact folded into the frontier, and the
/// timestamp is the monotonic instant the frontier converged. Together
/// they are the handshake bounded-staleness serving needs: a reader can
/// name exactly which frontier answered it (`version`), how much input it
/// reflects (`watermark`), and how old that cut is (`published_at`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frontier {
    /// Monotone per-instance version counter.
    pub version: u64,
    /// Distinct input facts applied (construction input + all batches).
    pub watermark: u64,
    /// Monotonic instant this frontier converged.
    pub published_at: Instant,
}

/// What one [`ResidentEval::apply_deltas`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReport {
    /// Facts in the submitted batch.
    pub batch_facts: usize,
    /// Batch facts that were actually new (not already present).
    pub new_facts: usize,
    /// Facts derived by propagating the batch through the rules.
    pub derived_facts: u64,
    /// Fixpoint iterations the propagation ran.
    pub iterations: usize,
    /// The full counter set for this batch alone. Field-wise (including
    /// `iterations`), `initial_stats + Σ batch stats == cumulative_stats`
    /// — an exact partition of the work done since construction.
    pub stats: EvalStats,
    /// Wall time of the propagation (insert + fixpoint).
    pub wall_ns: u64,
    /// Whether anything changed (new EDB rows or new derived facts).
    pub changed: bool,
}

/// Retained semi-naive evaluation state for one program: the saturated
/// database, compiled plans, probe indexes, and converged delta marks.
/// See the module docs for the maintenance argument.
#[derive(Debug)]
pub struct ResidentEval {
    /// Program arities, for batch validation (same check cold loading does).
    arities: BTreeMap<PredRef, usize>,
    db: Database,
    plans: Vec<RulePlan>,
    /// Rule activity mask (all true — the boolean cut is disabled for
    /// resident state; see module docs).
    active: Vec<bool>,
    /// Per-predicate row counts at the converged frontier. Invariant
    /// between calls: `mark_prev[p] == mark_cur[p] == len(p)`, so a batch
    /// insert makes the new rows exactly iteration 1's deltas.
    mark_prev: Vec<usize>,
    mark_cur: Vec<usize>,
    provenance: Option<Provenance>,
    strategy: Strategy,
    threads: usize,
    metrics: Option<EvalHists>,
    /// Per-propagation iteration budget (from [`EvalOptions::max_iterations`]).
    max_iterations: usize,
    /// Counters of the construction-time full fixpoint.
    initial_stats: EvalStats,
    /// Field-wise running total: construction + every batch.
    cumulative: EvalStats,
    batches: usize,
    applied_facts: u64,
    /// Input facts the construction-time fixpoint loaded (the base of the
    /// frontier watermark; batches add [`ResidentEval::applied_facts`]).
    initial_facts: u64,
    /// The last published converged frontier (see [`Frontier`]).
    frontier: Frontier,
    /// Set when a propagation erred mid-flight (deadline, cancellation):
    /// the frontier may be between iterations and MUST NOT be served or
    /// propagated further. Callers drop poisoned state and fall back to a
    /// cold evaluation.
    poisoned: bool,
}

/// Field-wise accumulation (every counter adds, *including* `iterations`)
/// — deliberately not [`EvalStats::merge`], whose max-of-iterations
/// semantics models side-by-side runs, not sequential batches.
fn add_stats(acc: &mut EvalStats, s: &EvalStats) {
    acc.iterations += s.iterations;
    acc.facts_derived += s.facts_derived;
    acc.derivations += s.derivations;
    acc.duplicates += s.duplicates;
    acc.tuples_scanned += s.tuples_scanned;
    acc.index_probes += s.index_probes;
    acc.rules_retired += s.rules_retired;
}

impl ResidentEval {
    /// Whether `program` is maintainable incrementally: monotone, i.e. no
    /// rule has a negated literal. (Even negation over pure-EDB predicates
    /// is non-monotone under ingestion — a new EDB fact can falsify it.)
    pub fn supports(program: &Program) -> bool {
        program.rules.iter().all(|r| r.negative.is_empty())
    }

    /// Bound-class admission policy for pinning resident state: resident
    /// forms hold a full saturated database per form, so forms whose
    /// static size-bound analysis came back
    /// [`datalog_trace::BoundClass::Unbounded`] (nonlinear recursion the
    /// analysis could not trace past the active-domain fallback) are
    /// refused — they are exactly the forms whose retained state can grow
    /// without a useful ceiling. Everything with a certified bound
    /// (`Bounded`, `Linear`, `Polynomial`) is admitted; smaller classes
    /// are cheaper to keep resident and callers may prefer them when the
    /// LRU is contended.
    pub fn admits_bound_class(class: datalog_trace::BoundClass) -> bool {
        class != datalog_trace::BoundClass::Unbounded
    }

    /// Build resident state by running the full fixpoint over `input` —
    /// this *is* the cold evaluation, it just keeps its working state.
    /// `opts.boolean_cut` and `opts.profile` are ignored (see module docs);
    /// everything else (threads, strategy, limits, provenance, metrics)
    /// applies to construction and to every later propagation.
    pub fn new(
        program: &Program,
        input: &FactSet,
        opts: &EvalOptions,
    ) -> Result<ResidentEval, EngineError> {
        program.validate()?;
        if !ResidentEval::supports(program) {
            let pred = program
                .rules
                .iter()
                .find_map(|r| r.negative.first().map(|a| a.pred.to_string()))
                .unwrap_or_default();
            return Err(EngineError::NonMonotone { pred });
        }
        let mut db = if opts.legacy_storage {
            Database::with_storage(crate::storage::StorageMode::Legacy)
        } else {
            Database::new()
        };
        let plans = compile(
            program,
            &mut db,
            opts.reorder_joins,
            opts.cost_hints.as_deref(),
        )?;
        let arities = program.arities()?;
        load_input(&mut db, &arities, input)?;
        ensure_probe_indexes(&mut db, &plans);
        let n_preds = db.pred_count();
        let n_plans = plans.len();
        let mut m = Machine {
            db: &mut db,
            plans,
            active: vec![true; n_plans],
            mark_prev: vec![0; n_preds],
            mark_cur: vec![0; n_preds],
            stats: EvalStats::default(),
            provenance: opts.record_provenance.then(Provenance::new),
            profile: None,
            query_pred: None,
            boolean_cut: false,
            threads: opts.threads.max(1),
            metrics: opts.metrics.clone(),
            started: Instant::now(),
            deadline: opts.deadline,
            fact_budget: opts.fact_budget,
            cancel: opts.cancel.clone(),
            trip: None,
        };
        // Monotone programs form a single stratum, so one stratum run with
        // a genuine seed round (`seed_first = true` — required: unit rules
        // only fire in seed rounds) is exactly what `evaluate` would do.
        let mine: Vec<usize> = (0..n_plans).collect();
        m.run_stratum(&mine, 0, opts.strategy, opts.max_iterations, true)?;
        let initial_stats = m.stats;
        let plans = std::mem::take(&mut m.plans);
        let active = std::mem::take(&mut m.active);
        let mark_prev = std::mem::take(&mut m.mark_prev);
        let mark_cur = std::mem::take(&mut m.mark_cur);
        let provenance = m.provenance.take();
        drop(m);
        let initial_facts = input.iter().count() as u64;
        Ok(ResidentEval {
            arities,
            db,
            plans,
            active,
            mark_prev,
            mark_cur,
            provenance,
            strategy: opts.strategy,
            threads: opts.threads.max(1),
            metrics: opts.metrics.clone(),
            max_iterations: opts.max_iterations,
            initial_stats,
            cumulative: initial_stats,
            batches: 0,
            applied_facts: 0,
            initial_facts,
            frontier: Frontier {
                version: 1,
                watermark: initial_facts,
                published_at: Instant::now(),
            },
            poisoned: false,
        })
    }

    /// Propagate one batch of ingested facts to a new consistent frontier.
    ///
    /// The whole batch is arity-validated *before* anything is inserted,
    /// so a bad fact leaves the frontier untouched. If the propagation
    /// itself errs (deadline or cancellation mid-fixpoint) the frontier is
    /// left between iterations: the state is **poisoned** and every later
    /// call panics — drop it and rebuild from cold.
    ///
    /// # Panics
    /// Panics if called on poisoned state (see [`ResidentEval::poisoned`]).
    pub fn apply_deltas(
        &mut self,
        batch: &[Fact],
        limits: &DeltaLimits,
    ) -> Result<DeltaReport, EngineError> {
        assert!(
            !self.poisoned,
            "ResidentEval is poisoned; drop it and re-evaluate from cold"
        );
        let started = Instant::now();
        // Validate the batch in full first: program arities, arities of
        // predicates registered by earlier batches, and consistency within
        // the batch itself for predicates seen here for the first time.
        let mut pending: BTreeMap<&PredRef, usize> = BTreeMap::new();
        for f in batch {
            let expected = self
                .arities
                .get(&f.pred)
                .copied()
                .or_else(|| {
                    self.db
                        .pred_id(&f.pred)
                        .map(|id| self.db.relation(id).arity())
                })
                .or_else(|| pending.get(&f.pred).copied());
            if let Some(expected) = expected {
                if expected != f.tuple.len() {
                    return Err(EngineError::FactArity {
                        pred: f.pred.to_string(),
                        expected,
                        found: f.tuple.len(),
                    });
                }
            } else {
                pending.insert(&f.pred, f.tuple.len());
            }
        }
        // Insert past the converged marks: the new rows become iteration
        // 1's deltas.
        let mut new_facts = 0usize;
        for f in batch {
            let id = self.db.register(&f.pred, f.tuple.len());
            if self.db.insert(id, &f.tuple) {
                new_facts += 1;
            }
        }
        let mine: Vec<usize> = (0..self.plans.len()).collect();
        let mut m = Machine {
            db: &mut self.db,
            plans: std::mem::take(&mut self.plans),
            active: std::mem::take(&mut self.active),
            mark_prev: std::mem::take(&mut self.mark_prev),
            mark_cur: std::mem::take(&mut self.mark_cur),
            stats: EvalStats::default(),
            provenance: self.provenance.take(),
            profile: None,
            query_pred: None,
            boolean_cut: false,
            threads: self.threads,
            metrics: self.metrics.clone(),
            started,
            deadline: limits.deadline,
            fact_budget: None,
            cancel: limits.cancel.clone(),
            trip: None,
        };
        // No seed round: the frontier is converged, so iteration 1's
        // delta variants see exactly the batch rows.
        let result = m.run_stratum(&mine, 0, self.strategy, self.max_iterations, false);
        let stats = m.stats;
        self.plans = std::mem::take(&mut m.plans);
        self.active = std::mem::take(&mut m.active);
        self.mark_prev = std::mem::take(&mut m.mark_prev);
        self.mark_cur = std::mem::take(&mut m.mark_cur);
        self.provenance = m.provenance.take();
        drop(m);
        if let Err(e) = result {
            self.poisoned = true;
            return Err(e);
        }
        add_stats(&mut self.cumulative, &stats);
        self.batches += 1;
        self.applied_facts += new_facts as u64;
        // Converged again: publish the new frontier. The version bumps on
        // every successful call (a no-op batch still re-confirmed
        // convergence, which is what the timestamp certifies).
        self.frontier = Frontier {
            version: self.frontier.version + 1,
            watermark: self.initial_facts + self.applied_facts,
            published_at: Instant::now(),
        };
        Ok(DeltaReport {
            batch_facts: batch.len(),
            new_facts,
            derived_facts: stats.facts_derived,
            iterations: stats.iterations,
            stats,
            wall_ns: started.elapsed().as_nanos() as u64,
            changed: new_facts > 0 || stats.facts_derived > 0,
        })
    }

    /// Extract `q_atom`'s answers from the resident frontier (canonically
    /// sorted, hence byte-identical to a cold run's at the same facts).
    pub fn answers(&self, q_atom: &Atom) -> AnswerSet {
        extract_answers(q_atom, &self.db)
    }

    /// The resident database (EDB + all derived facts at the frontier).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Canonical fact export of the frontier (set-identical to a cold
    /// fixpoint over the union of all inputs).
    pub fn dump(&self) -> FactSet {
        self.db.dump()
    }

    /// Counters of the construction-time full fixpoint.
    pub fn initial_stats(&self) -> EvalStats {
        self.initial_stats
    }

    /// Field-wise total of construction plus every batch (see
    /// [`DeltaReport::stats`] for the partition law).
    pub fn cumulative_stats(&self) -> EvalStats {
        self.cumulative
    }

    /// Batches successfully propagated.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Batch facts that were new when applied (duplicates excluded).
    pub fn applied_facts(&self) -> u64 {
        self.applied_facts
    }

    /// Derivation provenance across construction and all batches, if
    /// requested at construction.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.provenance.as_ref()
    }

    /// Whether a failed propagation left the frontier inconsistent.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The last published converged frontier. Unaffected by a failed
    /// propagation (the poisoned flag, not the frontier, records that) —
    /// but a poisoned resident must not be *served*, so callers check
    /// [`ResidentEval::poisoned`] first.
    pub fn frontier(&self) -> Frontier {
        self.frontier
    }

    /// Total sealed sorted-run count across the resident database's
    /// relations (0 on legacy storage) — the `xdl_storage_runs` input.
    pub fn storage_runs(&self) -> usize {
        self.db.storage_runs()
    }

    /// Seal and consolidate the resident database's storage. Safe at a
    /// converged frontier (sealing never changes rows or ids); the server's
    /// maintenance thread calls this after deferred drains, where the
    /// bound-priced merge work was deemed too expensive to do synchronously.
    pub fn seal_storage(&mut self) {
        self.db.seal_storage();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use datalog_ast::parse_program;

    const TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                      a(X, Y) :- p(X, Y).\n\
                      ?- a(X, Y).";

    fn edge(i: i64, j: i64) -> Fact {
        Fact::new(PredRef::new("p"), vec![Value::int(i), Value::int(j)])
    }

    fn chain(n: i64) -> FactSet {
        let mut fs = FactSet::new();
        for i in 0..n {
            fs.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
        }
        fs
    }

    fn q_atom(src: &str) -> Atom {
        parse_program(src).unwrap().program.query.unwrap().atom
    }

    #[test]
    fn batches_converge_to_the_cold_fixpoint() {
        let p = parse_program(TC).unwrap().program;
        let opts = EvalOptions::default();
        let mut r = ResidentEval::new(&p, &chain(4), &opts).unwrap();
        let mut all = chain(4);
        // Extend the chain one edge at a time; after each batch the
        // frontier must be set-identical to a cold run over the union.
        for i in 4..8 {
            let rep = r
                .apply_deltas(&[edge(i, i + 1)], &DeltaLimits::default())
                .unwrap();
            assert!(rep.changed);
            assert_eq!(rep.new_facts, 1);
            all.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
            let cold = evaluate(&p, &all, &opts).unwrap();
            assert_eq!(r.dump(), cold.database.dump());
            assert_eq!(r.answers(&q_atom(TC)), {
                let (ans, _) = crate::eval::query_answers(&p, &all, &opts).unwrap();
                ans
            });
        }
        assert_eq!(r.batches(), 4);
        assert_eq!(r.applied_facts(), 4);
    }

    #[test]
    fn duplicate_and_empty_batches_are_noops() {
        let p = parse_program(TC).unwrap().program;
        let mut r = ResidentEval::new(&p, &chain(4), &EvalOptions::default()).unwrap();
        let before = r.dump();
        let rep = r
            .apply_deltas(&[edge(0, 1)], &DeltaLimits::default())
            .unwrap();
        assert!(!rep.changed);
        assert_eq!(rep.new_facts, 0);
        let rep = r.apply_deltas(&[], &DeltaLimits::default()).unwrap();
        assert!(!rep.changed);
        assert_eq!(r.dump(), before);
    }

    #[test]
    fn stats_partition_exactly() {
        let p = parse_program(TC).unwrap().program;
        let mut r = ResidentEval::new(&p, &chain(3), &EvalOptions::default()).unwrap();
        let mut expected = r.initial_stats();
        for i in 3..6 {
            let rep = r
                .apply_deltas(&[edge(i, i + 1)], &DeltaLimits::default())
                .unwrap();
            add_stats(&mut expected, &rep.stats);
        }
        assert_eq!(expected, r.cumulative_stats());
    }

    #[test]
    fn unit_rules_fire_on_construction() {
        // Unit rules (empty bodies — the optimizer pipeline introduces
        // them) have no delta variants; only the seed round fires them.
        // Regression guard for the seed_first flag.
        let mut p = parse_program(TC).unwrap().program;
        p.rules.push(datalog_ast::Rule::new(
            Atom::fact(PredRef::new("a"), vec![Value::int(100), Value::int(200)]),
            vec![],
        ));
        let mut r = ResidentEval::new(&p, &FactSet::new(), &EvalOptions::default()).unwrap();
        assert_eq!(r.answers(&q_atom(TC)).len(), 1);
        // And the unit fact joins with later deltas: p(0,100) must derive
        // a(0,200) through the resident a(100,200).
        r.apply_deltas(&[edge(0, 100)], &DeltaLimits::default())
            .unwrap();
        let mut all = FactSet::new();
        all.insert(PredRef::new("p"), vec![Value::int(0), Value::int(100)]);
        let cold = evaluate(&p, &all, &EvalOptions::default()).unwrap();
        assert_eq!(r.dump(), cold.database.dump());
        assert_eq!(r.answers(&q_atom(TC)).len(), 3);
    }

    #[test]
    fn batch_introducing_a_new_predicate_is_carried() {
        let p = parse_program(TC).unwrap().program;
        let mut r = ResidentEval::new(&p, &chain(2), &EvalOptions::default()).unwrap();
        let f = Fact::new(PredRef::new("unrelated"), vec![Value::sym("x")]);
        let rep = r.apply_deltas(&[f], &DeltaLimits::default()).unwrap();
        assert!(rep.changed);
        assert_eq!(rep.derived_facts, 0);
        assert!(r
            .dump()
            .iter()
            .any(|(pred, _)| pred == &PredRef::new("unrelated")));
        // And later batches still work over the grown predicate table.
        r.apply_deltas(&[edge(2, 3)], &DeltaLimits::default())
            .unwrap();
        assert_eq!(r.answers(&q_atom(TC)).len(), 6);
    }

    #[test]
    fn bad_arity_rejects_without_applying_anything() {
        let p = parse_program(TC).unwrap().program;
        let mut r = ResidentEval::new(&p, &chain(2), &EvalOptions::default()).unwrap();
        let before = r.dump();
        let bad = vec![
            edge(2, 3),
            Fact::new(PredRef::new("p"), vec![Value::int(9)]),
        ];
        let err = r.apply_deltas(&bad, &DeltaLimits::default()).unwrap_err();
        assert!(matches!(err, EngineError::FactArity { .. }));
        assert!(!r.poisoned());
        assert_eq!(r.dump(), before, "batch must be all-or-nothing");
    }

    #[test]
    fn negation_is_refused() {
        let src = "a(X) :- p(X, _), not q(X).\n?- a(X).";
        let p = parse_program(src).unwrap().program;
        assert!(!ResidentEval::supports(&p));
        let err = ResidentEval::new(&p, &FactSet::new(), &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::NonMonotone { .. }));
    }

    #[test]
    fn propagation_is_byte_identical_across_thread_counts() {
        let p = parse_program(TC).unwrap().program;
        let serial = EvalOptions {
            record_provenance: true,
            ..EvalOptions::default()
        };
        let wide = EvalOptions {
            threads: 4,
            ..serial.clone()
        };
        let mut r1 = ResidentEval::new(&p, &chain(40), &serial).unwrap();
        let mut r4 = ResidentEval::new(&p, &chain(40), &wide).unwrap();
        for batch in [vec![edge(40, 41), edge(41, 42)], vec![edge(-1, 0)]] {
            let a = r1.apply_deltas(&batch, &DeltaLimits::default()).unwrap();
            let b = r4.apply_deltas(&batch, &DeltaLimits::default()).unwrap();
            // Everything but wall time must agree exactly.
            assert_eq!(
                DeltaReport { wall_ns: 0, ..a },
                DeltaReport { wall_ns: 0, ..b },
            );
        }
        // Full physical identity: same rows in the same order.
        for id in 0..r1.database().pred_count() {
            let id = crate::database::PredId(id as u32);
            assert_eq!(r1.database().dump_pred(id), r4.database().dump_pred(id));
        }
        assert_eq!(r1.provenance(), r4.provenance());
    }

    #[test]
    fn frontier_versions_are_monotone_and_published_per_batch() {
        let p = parse_program(TC).unwrap().program;
        let mut r = ResidentEval::new(&p, &chain(4), &EvalOptions::default()).unwrap();
        let f1 = r.frontier();
        assert_eq!(f1.version, 1);
        assert_eq!(f1.watermark, 4, "construction input is the base watermark");
        r.apply_deltas(&[edge(4, 5)], &DeltaLimits::default())
            .unwrap();
        let f2 = r.frontier();
        assert_eq!(f2.version, 2);
        assert_eq!(f2.watermark, 5);
        assert!(f2.published_at >= f1.published_at);
        // A duplicate (no-op) batch still re-publishes: convergence was
        // re-confirmed, so the version and timestamp advance while the
        // watermark holds.
        r.apply_deltas(&[edge(4, 5)], &DeltaLimits::default())
            .unwrap();
        let f3 = r.frontier();
        assert_eq!(f3.version, 3);
        assert_eq!(f3.watermark, 5);
        // A rejected batch publishes nothing.
        let bad = [Fact::new(PredRef::new("p"), vec![Value::int(9)])];
        assert!(r.apply_deltas(&bad, &DeltaLimits::default()).is_err());
        assert_eq!(r.frontier().version, 3);
    }

    #[test]
    fn deadline_trip_poisons_the_state() {
        let p = parse_program(TC).unwrap().program;
        let mut r = ResidentEval::new(&p, &chain(50), &EvalOptions::default()).unwrap();
        let limits = DeltaLimits {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            cancel: None,
        };
        let err = r.apply_deltas(&[edge(50, 51)], &limits).unwrap_err();
        assert!(err.is_limit());
        assert!(r.poisoned());
    }
}

//! Cooperative cancellation for long-running fixpoints.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the party
//! that runs an evaluation and any party that may want to stop it (a
//! server draining for shutdown, a timeout watchdog, a user pressing ^C).
//! The engine polls the token at every semi-naive iteration boundary and
//! every few thousand joined rows inside a rule application, so even a
//! single pathological cross product observes a cancellation promptly.
//! Cancellation is *cooperative*: the fixpoint unwinds cleanly and returns
//! [`EngineError::Cancelled`](crate::EngineError::Cancelled) with the
//! statistics accumulated so far — no thread is ever killed, no lock is
//! ever poisoned by it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; wakes nothing by itself — the
    /// evaluation notices at its next cooperative check point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(c.is_cancelled());
    }
}

//! Cooperative cancellation for long-running fixpoints.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the party
//! that runs an evaluation and any party that may want to stop it (a
//! server draining for shutdown, a timeout watchdog, a user pressing ^C).
//! The engine polls the token at every semi-naive iteration boundary and
//! every few thousand joined rows inside a rule application, so even a
//! single pathological cross product observes a cancellation promptly.
//! Cancellation is *cooperative*: the fixpoint unwinds cleanly and returns
//! [`EngineError::Cancelled`](crate::EngineError::Cancelled) with the
//! statistics accumulated so far — no thread is ever killed, no lock is
//! ever poisoned by it.
//!
//! Tokens compose: [`CancelToken::joined`] derives a token that observes
//! several sources at once (e.g. the server's shutdown drain *and* a
//! per-operation abort), without threads or channels — `is_cancelled`
//! simply checks every linked flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Flags {
    own: AtomicBool,
    /// Upstream tokens this one also observes (set by [`CancelToken::joined`]).
    parents: Vec<Arc<Flags>>,
}

impl Flags {
    fn is_cancelled(&self) -> bool {
        self.own.load(Ordering::Acquire) || self.parents.iter().any(|p| p.is_cancelled())
    }
}

/// A shared cancellation flag. Clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flags: Arc<Flags>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; wakes nothing by itself — the
    /// evaluation notices at its next cooperative check point.
    pub fn cancel(&self) {
        self.flags.own.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on this token or any token
    /// it was joined from.
    pub fn is_cancelled(&self) -> bool {
        self.flags.is_cancelled()
    }

    /// A token cancelled when *either* `self` or `other` is cancelled.
    /// Cancelling the joined token does not cancel its sources.
    pub fn joined(&self, other: &CancelToken) -> CancelToken {
        CancelToken {
            flags: Arc::new(Flags {
                own: AtomicBool::new(false),
                parents: vec![Arc::clone(&self.flags), Arc::clone(&other.flags)],
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn joined_tokens_observe_both_sources() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        let j = a.joined(&b);
        assert!(!j.is_cancelled());
        b.cancel();
        assert!(j.is_cancelled(), "either source cancels the join");
        assert!(!a.is_cancelled(), "sources stay independent");

        let a = CancelToken::new();
        let b = CancelToken::new();
        let j = a.joined(&b);
        j.cancel();
        assert!(j.is_cancelled());
        assert!(
            !a.is_cancelled() && !b.is_cancelled(),
            "cancelling the join must not propagate upstream"
        );
    }
}

//! [`FactSet`]: the engine's input/output currency.
//!
//! A `FactSet` is an order-insensitive map from predicates to sets of
//! tuples. It is deliberately based on `BTreeMap`/`BTreeSet` so that two
//! fact sets compare equal iff they contain the same facts and iterate
//! deterministically — essential for the equivalence oracles and tests.

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{Atom, PredRef, Value};

/// An immutable-ish collection of ground facts grouped by predicate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactSet {
    map: BTreeMap<PredRef, BTreeSet<Vec<Value>>>,
}

impl FactSet {
    /// Empty fact set.
    pub fn new() -> FactSet {
        FactSet::default()
    }

    /// Build from the parser's fact table.
    pub fn from_parsed(parsed: &BTreeMap<PredRef, Vec<Vec<Value>>>) -> FactSet {
        let mut fs = FactSet::new();
        for (p, rows) in parsed {
            for row in rows {
                fs.insert(p.clone(), row.clone());
            }
        }
        fs
    }

    /// Insert a fact; returns `true` if it was new.
    pub fn insert(&mut self, pred: PredRef, tuple: Vec<Value>) -> bool {
        self.map.entry(pred).or_default().insert(tuple)
    }

    /// Insert a ground atom.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn insert_atom(&mut self, atom: &Atom) -> bool {
        let values = atom
            .ground_values()
            .expect("insert_atom requires a ground atom");
        self.insert(atom.pred.clone(), values)
    }

    /// Membership test.
    pub fn contains(&self, pred: &PredRef, tuple: &[Value]) -> bool {
        self.map.get(pred).is_some_and(|s| s.contains(tuple))
    }

    /// Membership test for a ground atom.
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        match atom.ground_values() {
            Some(values) => self.contains(&atom.pred, &values),
            None => false,
        }
    }

    /// Tuples of one predicate (empty slice view if absent).
    pub fn tuples(&self, pred: &PredRef) -> impl Iterator<Item = &Vec<Value>> + '_ {
        self.map.get(pred).into_iter().flatten()
    }

    /// Number of tuples for one predicate.
    pub fn count(&self, pred: &PredRef) -> usize {
        self.map.get(pred).map_or(0, |s| s.len())
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.map.values().map(|s| s.len()).sum()
    }

    /// Whether there are no facts at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predicates that have at least one fact.
    pub fn preds(&self) -> impl Iterator<Item = &PredRef> + '_ {
        self.map.keys()
    }

    /// Iterate over all facts as `(pred, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PredRef, &Vec<Value>)> + '_ {
        self.map
            .iter()
            .flat_map(|(p, set)| set.iter().map(move |t| (p, t)))
    }

    /// All constants appearing in any fact (the active domain contribution
    /// of this fact set).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.iter().flat_map(|(_, t)| t.iter().copied()).collect()
    }

    /// Union in another fact set.
    pub fn extend(&mut self, other: &FactSet) {
        for (p, t) in other.iter() {
            self.insert(p.clone(), t.clone());
        }
    }

    /// Restrict to a single predicate's facts.
    pub fn restrict_to(&self, pred: &PredRef) -> FactSet {
        let mut fs = FactSet::new();
        if let Some(set) = self.map.get(pred) {
            fs.map.insert(pred.clone(), set.clone());
        }
        fs
    }

    /// Render one line per fact, sorted (for snapshots and diffing).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (p, t) in self.iter() {
            let args: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            if args.is_empty() {
                let _ = writeln!(out, "{p}.");
            } else {
                let _ = writeln!(out, "{p}({}).", args.join(", "));
            }
        }
        out
    }
}

impl FromIterator<(PredRef, Vec<Value>)> for FactSet {
    fn from_iter<I: IntoIterator<Item = (PredRef, Vec<Value>)>>(iter: I) -> FactSet {
        let mut fs = FactSet::new();
        for (p, t) in iter {
            fs.insert(p, t);
        }
        fs
    }
}

/// The answer to a query: the set of distinct bindings for the query's
/// *named* variables, in first-occurrence order. Wildcard variables are
/// existential outputs and are projected away (deduplicated).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnswerSet {
    /// Names of the output columns (query variable names).
    pub columns: Vec<String>,
    /// Distinct answer tuples, sorted.
    pub rows: BTreeSet<Vec<Value>>,
}

impl AnswerSet {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No answers?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A zero-column answer set is a boolean: true iff the (empty) row is
    /// present.
    pub fn as_bool(&self) -> Option<bool> {
        self.columns.is_empty().then_some(!self.rows.is_empty())
    }
}

impl std::fmt::Display for AnswerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.columns.join(", "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::PredRef;

    fn p() -> PredRef {
        PredRef::new("p")
    }

    #[test]
    fn insert_and_contains() {
        let mut fs = FactSet::new();
        assert!(fs.insert(p(), vec![Value::int(1), Value::int(2)]));
        assert!(!fs.insert(p(), vec![Value::int(1), Value::int(2)]));
        assert!(fs.contains(&p(), &[Value::int(1), Value::int(2)]));
        assert!(!fs.contains(&p(), &[Value::int(2), Value::int(1)]));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.count(&p()), 1);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let mut a = FactSet::new();
        a.insert(p(), vec![Value::int(1)]);
        a.insert(p(), vec![Value::int(2)]);
        let mut b = FactSet::new();
        b.insert(p(), vec![Value::int(2)]);
        b.insert(p(), vec![Value::int(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut fs = FactSet::new();
        fs.insert(p(), vec![Value::int(1), Value::sym("a")]);
        fs.insert(PredRef::new("q"), vec![Value::int(2)]);
        let dom = fs.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::sym("a")));
    }

    #[test]
    fn atom_roundtrip() {
        let mut fs = FactSet::new();
        let a = Atom::fact(p(), vec![Value::int(1)]);
        assert!(fs.insert_atom(&a));
        assert!(fs.contains_atom(&a));
        let nonground = Atom::app("p", &["X"]);
        assert!(!fs.contains_atom(&nonground));
    }

    #[test]
    fn boolean_answer() {
        let mut yes = AnswerSet::default();
        yes.rows.insert(vec![]);
        assert_eq!(yes.as_bool(), Some(true));
        let no = AnswerSet::default();
        assert_eq!(no.as_bool(), Some(false));
        let mut unary = AnswerSet {
            columns: vec!["X".into()],
            rows: BTreeSet::new(),
        };
        unary.rows.insert(vec![Value::int(1)]);
        assert_eq!(unary.as_bool(), None);
    }

    #[test]
    fn restrict_and_extend() {
        let mut fs = FactSet::new();
        fs.insert(p(), vec![Value::int(1)]);
        fs.insert(PredRef::new("q"), vec![Value::int(2)]);
        let only_p = fs.restrict_to(&p());
        assert_eq!(only_p.len(), 1);
        let mut other = FactSet::new();
        other.insert(p(), vec![Value::int(9)]);
        other.extend(&fs);
        assert_eq!(other.len(), 3);
    }
}

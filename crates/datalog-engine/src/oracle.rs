//! Equivalence oracles.
//!
//! * [`uniform_test`] — Sagiv's decidable test for deleting a rule under
//!   **uniform equivalence** (Example 4 of the paper): freeze the rule's
//!   variables to skolem constants, feed the frozen body to the program
//!   *without* the rule, and check that the frozen head is re-derived.
//! * [`uniform_query_test`] — the paper's **uniform query equivalence**
//!   variant (Example 6): instead of the frozen head, check that every
//!   *query-predicate* fact the full program derives from the frozen body
//!   is also derived without the rule. The paper offers this as a
//!   sufficient condition; it is strictly more permissive than Sagiv's
//!   test, and `datalog-opt` pairs it with randomized validation because
//!   the bare test can over-delete on adversarial programs (see the
//!   `paper_test_is_not_sound_alone` test below).
//! * [`theorem_5_2_test`] — the optimistic-derivation test of Theorem 5.2.
//! * [`bounded_equiv_check`] — randomized refutation of (query)
//!   equivalence between two programs: generate random instances, compare
//!   answers. Used pervasively by the test suites and by the optimizer's
//!   `validate_deletions` mode.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datalog_ast::{freeze_rule, Program, Value};

use crate::eval::{evaluate, query_answers, EvalOptions};
use crate::facts::FactSet;
use crate::optimistic::{optimistic_fixpoint, Grounding};
use crate::EngineError;

/// Sagiv's frozen-rule test: is `program` *uniformly equivalent* to
/// `program.without_rule(rule_idx)`?
///
/// Deleting a rule can only shrink the least fixpoint, so the test reduces
/// to containment of the deleted rule: with the frozen body as input DB,
/// the remaining rules must re-derive the frozen head.
pub fn uniform_test(program: &Program, rule_idx: usize) -> Result<bool, EngineError> {
    let frozen = freeze_rule(&program.rules[rule_idx]);
    let reduced = program.without_rule(rule_idx);
    let mut input = FactSet::new();
    for f in &frozen.body_facts {
        input.insert_atom(f);
    }
    let out = evaluate(&reduced, &input, &EvalOptions::default())?;
    Ok(out.database.dump().contains_atom(&frozen.head_fact))
}

/// The paper's uniform *query* equivalence test (Example 6): with the
/// frozen body of `rule_idx` as input, every fact of the query predicate
/// derivable by the full program must be derivable without the rule.
///
/// Requires `program.query` to be set.
pub fn uniform_query_test(program: &Program, rule_idx: usize) -> Result<bool, EngineError> {
    let query_pred = program
        .query
        .as_ref()
        .ok_or(EngineError::Ast(datalog_ast::AstError::NoQuery))?
        .atom
        .pred
        .clone();
    let frozen = freeze_rule(&program.rules[rule_idx]);
    let mut input = FactSet::new();
    for f in &frozen.body_facts {
        input.insert_atom(f);
    }
    let reduced = program.without_rule(rule_idx);
    let full_out = evaluate(program, &input, &EvalOptions::default())?;
    let reduced_out = evaluate(&reduced, &input, &EvalOptions::default())?;
    let full_q = full_out.database.dump().restrict_to(&query_pred);
    let reduced_q = reduced_out.database.dump().restrict_to(&query_pred);
    let contained = full_q.iter().all(|(p, t)| reduced_q.contains(p, t));
    Ok(contained)
}

/// Theorem 5.2's optimistic test: the optimistic answer of the full program
/// on the frozen body of `rule_idx`, restricted to the query predicate,
/// must be contained in the (ordinary) answer of the program without the
/// rule on the same input.
///
/// See [`Grounding`] for the two readings of "optimistic"; `ActiveDomain`
/// is the literal (conservative) one.
pub fn theorem_5_2_test(
    program: &Program,
    rule_idx: usize,
    grounding: Grounding,
) -> Result<bool, EngineError> {
    let query_pred = program
        .query
        .as_ref()
        .ok_or(EngineError::Ast(datalog_ast::AstError::NoQuery))?
        .atom
        .pred
        .clone();
    let frozen = freeze_rule(&program.rules[rule_idx]);
    let mut input = FactSet::new();
    for f in &frozen.body_facts {
        input.insert_atom(f);
    }
    let optimistic = optimistic_fixpoint(program, &input, grounding).restrict_to(&query_pred);
    let reduced = program.without_rule(rule_idx);
    let actual = evaluate(&reduced, &input, &EvalOptions::default())?
        .database
        .dump()
        .restrict_to(&query_pred);
    let contained = optimistic.iter().all(|(p, t)| actual.contains(p, t));
    Ok(contained)
}

/// Configuration for randomized equivalence refutation.
#[derive(Debug, Clone)]
pub struct EquivCheckConfig {
    /// Number of random instances to try.
    pub instances: usize,
    /// Domain size (constants are `0..domain`).
    pub domain: i64,
    /// Facts generated per predicate (before deduplication).
    pub facts_per_pred: usize,
    /// Seed the *IDB* predicates too (uniform-equivalence style inputs).
    pub seed_idb: bool,
    /// RNG seed, for reproducibility.
    pub rng_seed: u64,
}

impl Default for EquivCheckConfig {
    fn default() -> EquivCheckConfig {
        EquivCheckConfig {
            instances: 30,
            domain: 5,
            facts_per_pred: 8,
            seed_idb: false,
            rng_seed: 0x5eed,
        }
    }
}

/// A counterexample instance found by [`bounded_equiv_check`].
#[derive(Debug, Clone)]
pub struct EquivWitness {
    /// The instance on which the programs disagree.
    pub instance: FactSet,
    /// Answer rows of the first program.
    pub answers1: Vec<Vec<Value>>,
    /// Answer rows of the second program.
    pub answers2: Vec<Vec<Value>>,
}

/// Randomized refutation of query equivalence: evaluate both programs'
/// queries on random instances and compare answer *rows* (column naming may
/// legitimately differ between an original and an optimized program).
///
/// `Ok(None)` means no counterexample was found (not a proof!);
/// `Ok(Some(w))` is a concrete disagreeing instance.
///
/// Instances populate the union of both programs' EDB predicates; with
/// [`EquivCheckConfig::seed_idb`] they also populate IDB predicates that
/// occur in *both* programs with the same arity (uniform-equivalence style
/// inputs).
pub fn bounded_equiv_check(
    p1: &Program,
    p2: &Program,
    cfg: &EquivCheckConfig,
) -> Result<Option<EquivWitness>, EngineError> {
    let a1 = p1.arities()?;
    let a2 = p2.arities()?;
    // A predicate derived in EITHER program must never be seeded in a plain
    // (query-equivalence) check: a rule deletion can strand a predicate so
    // that it *looks* like EDB in the reduced program, and seeding it would
    // launder the lost derivations (IDB predicates start empty on real
    // inputs). Uniform-style seeding is opt-in via `seed_idb`.
    let derived: BTreeSet<datalog_ast::PredRef> =
        p1.idb_preds().union(&p2.idb_preds()).cloned().collect();
    let mut gen_preds: Vec<(datalog_ast::PredRef, usize)> = Vec::new();
    for p in p1.edb_preds().union(&p2.edb_preds()) {
        if derived.contains(p) {
            continue;
        }
        let arity = a1.get(p).or_else(|| a2.get(p)).copied().unwrap_or(0);
        gen_preds.push((p.clone(), arity));
    }
    if cfg.seed_idb {
        for p in p1.idb_preds().intersection(&p2.idb_preds()) {
            if let (Some(&k1), Some(&k2)) = (a1.get(p), a2.get(p)) {
                if k1 == k2 {
                    gen_preds.push((p.clone(), k1));
                }
            }
        }
    }
    // Round 0: the *critical instance* — the union of every rule's frozen
    // body, restricted to non-derived predicates. This instance exercises
    // each rule at least once and deterministically exposes the classic
    // failure mode of the bare uniform-query test (a deletion stranding an
    // intermediate predicate that downstream rules still need).
    {
        let mut instance = FactSet::new();
        for program in [p1, p2] {
            for rule in &program.rules {
                let frozen = freeze_rule(rule);
                for atom in &frozen.body_facts {
                    if !derived.contains(&atom.pred) {
                        instance.insert_atom(atom);
                    }
                }
            }
        }
        let (ans1, _) = query_answers(p1, &instance, &EvalOptions::default())?;
        let (ans2, _) = query_answers(p2, &instance, &EvalOptions::default())?;
        if ans1.rows != ans2.rows {
            return Ok(Some(EquivWitness {
                instance,
                answers1: ans1.rows.into_iter().collect(),
                answers2: ans2.rows.into_iter().collect(),
            }));
        }
    }
    for round in 0..cfg.instances {
        let mut instance = FactSet::new();
        for (pred, arity) in &gen_preds {
            // Each predicate draws from an RNG seeded by (seed, round,
            // predicate NAME): generation is independent of predicate
            // iteration order and of interner ids, so results are
            // reproducible across processes.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in pred.to_string().bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
            }
            let mut rng =
                StdRng::seed_from_u64(cfg.rng_seed ^ h ^ (round as u64).wrapping_mul(0x9e3779b9));
            // Vary density: sometimes sparse, sometimes dense.
            let n = rng.gen_range(0..=cfg.facts_per_pred);
            for _ in 0..n {
                let tuple: Vec<Value> = (0..*arity)
                    .map(|_| Value::Int(rng.gen_range(0..cfg.domain)))
                    .collect();
                instance.insert(pred.clone(), tuple);
            }
        }
        let (ans1, _) = query_answers(p1, &instance, &EvalOptions::default())?;
        let (ans2, _) = query_answers(p2, &instance, &EvalOptions::default())?;
        if ans1.rows != ans2.rows {
            return Ok(Some(EquivWitness {
                instance,
                answers1: ans1.rows.into_iter().collect(),
                answers2: ans2.rows.into_iter().collect(),
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    /// Example 3/4 of the paper: in the projected transitive closure, the
    /// recursive rule is deletable under *uniform* equivalence.
    const PROJECTED_TC: &str = "a[nd](X) :- p(X, Z), a[nd](Z).\n\
                                a[nd](X) :- p(X, Z).\n\
                                ?- a[nd](X).";

    #[test]
    fn example_4_uniform_deletion() {
        let p = parse_program(PROJECTED_TC).unwrap().program;
        // Rule 0 (recursive) is uniformly redundant: from {p(x,z), a[nd](z)}
        // the exit rule re-derives a[nd](x).
        assert!(uniform_test(&p, 0).unwrap());
        // The exit rule is NOT uniformly redundant.
        assert!(!uniform_test(&p, 1).unwrap());
    }

    /// Example 3a's caveat: with a *different* base predicate in the exit
    /// rule, the recursive rule is no longer deletable.
    #[test]
    fn example_3a_negative_case() {
        let p = parse_program(
            "a[nd](X) :- p(X, Z), a[nd](Z).\n\
             a[nd](X) :- p1(X, Z).\n\
             ?- a[nd](X).",
        )
        .unwrap()
        .program;
        assert!(!uniform_test(&p, 0).unwrap());
        assert!(!uniform_query_test(&p, 0).unwrap());
    }

    /// Example 5/6 of the paper: left-recursive TC with an existential
    /// query. Uniform equivalence deletes nothing, but uniform *query*
    /// equivalence deletes the recursive a[nn] rule.
    const EX5: &str = "a[nd](X) :- a[nn](X, Z), p(Z, Y).\n\
                       a[nd](X) :- p(X, Y).\n\
                       a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
                       a[nn](X, Y) :- p(X, Y).\n\
                       ?- a[nd](X).";

    #[test]
    fn example_5_uniform_equivalence_deletes_nothing() {
        let p = parse_program(EX5).unwrap().program;
        for i in 0..p.rules.len() {
            assert!(
                !uniform_test(&p, i).unwrap(),
                "rule {i} unexpectedly deletable under uniform equivalence"
            );
        }
    }

    #[test]
    fn example_6_uqe_deletes_recursive_ann_rule() {
        let p = parse_program(EX5).unwrap().program;
        // Rule 2 = a[nn](X,Y) :- a[nn](X,Z), p(Z,Y): the paper's first step.
        assert!(uniform_query_test(&p, 2).unwrap());
        // And after removing it, the a[nn] exit rule also passes.
        let p2 = p.without_rule(2);
        assert!(uniform_query_test(&p2, 2).unwrap());
    }

    /// The bare Example 6 test is only a heuristic: deleting the sole
    /// definition of an intermediate predicate can pass the frozen-body
    /// check while breaking real instances. The optimizer therefore
    /// validates UQE deletions; this documents the counterexample.
    #[test]
    fn paper_test_is_not_sound_alone() {
        let p = parse_program(
            "q(X) :- h(X, Y), w(Y).\n\
             h(X, Y) :- s(X, Y).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        // Frozen body of rule 1 is {s(x,y)}; neither program derives any q
        // fact from it, so the containment trivially holds...
        assert!(uniform_query_test(&p, 1).unwrap());
        // ...yet the programs are NOT query equivalent: randomized checking
        // finds a witness (an instance with s and w facts).
        let witness = bounded_equiv_check(&p, &p.without_rule(1), &EquivCheckConfig::default())
            .unwrap()
            .expect("must find a counterexample");
        // Deletion only loses answers: the reduced program's answers are a
        // strict subset of the original's.
        assert!(witness.answers1.len() > witness.answers2.len());
        assert!(witness
            .answers2
            .iter()
            .all(|row| witness.answers1.contains(row)));
        // Theorem 5.2 with the liberal grounding correctly rejects it.
        assert!(!theorem_5_2_test(&p, 1, Grounding::ActiveDomain).unwrap());
    }

    #[test]
    fn theorem_5_2_strict_accepts_example_6() {
        let p = parse_program(EX5).unwrap().program;
        assert!(theorem_5_2_test(&p, 2, Grounding::KnownOnly).unwrap());
        // The liberal reading is more conservative and rejects it — a
        // finding we document in EXPERIMENTS.md.
        assert!(!theorem_5_2_test(&p, 2, Grounding::ActiveDomain).unwrap());
    }

    #[test]
    fn bounded_check_accepts_true_equivalences() {
        // Example 6's end-to-end result: existential TC reduces to the exit
        // rule only. These are query-equivalent (EDB inputs).
        let original = parse_program(EX5).unwrap().program;
        let optimized = parse_program(
            "a[nd](X) :- p(X, Y).\n\
             ?- a[nd](X).",
        )
        .unwrap()
        .program;
        let w = bounded_equiv_check(&original, &optimized, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "unexpected witness: {w:?}");
    }

    #[test]
    fn bounded_check_with_idb_seeding_separates_uqe_from_qe() {
        // Same pair as above: query-equivalent but NOT uniformly query
        // equivalent (seeding a[nn] makes the originals diverge).
        let original = parse_program(EX5).unwrap().program;
        let optimized = parse_program(
            "a[nd](X) :- p(X, Y).\n\
             a[nn](X, Y) :- p(X, Y).\n\
             ?- a[nd](X).",
        )
        .unwrap()
        .program;
        let cfg = EquivCheckConfig {
            seed_idb: true,
            instances: 60,
            ..EquivCheckConfig::default()
        };
        let w = bounded_equiv_check(&original, &optimized, &cfg).unwrap();
        assert!(
            w.is_some(),
            "seeded a[nn] facts should expose the difference"
        );
    }
}

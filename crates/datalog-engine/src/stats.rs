//! Evaluation statistics.
//!
//! These counters are the machine-independent costs the paper's
//! optimizations attack: fewer argument positions ⇒ fewer distinct facts
//! and cheaper duplicate elimination (§3.2); boolean cut ⇒ retired rules
//! stop contributing scans and derivations (§3.1); deleted rules ⇒ fewer
//! join attempts per iteration (§3.3/§5).

/// Counters accumulated over one fixpoint evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations executed (the seed round counts as iteration 1).
    pub iterations: usize,
    /// Distinct new facts added to derived predicates.
    pub facts_derived: u64,
    /// Successful full-body rule instantiations (including ones that
    /// re-derive an existing fact).
    pub derivations: u64,
    /// Derivations whose head fact already existed (duplicate-elimination
    /// hits — the cost §3.2 highlights).
    pub duplicates: u64,
    /// Tuples enumerated across all literal scans and index probes.
    pub tuples_scanned: u64,
    /// Hash-index probes issued.
    pub index_probes: u64,
    /// Rules retired by the boolean-cut runtime (§3.1).
    pub rules_retired: u64,
}

impl EvalStats {
    /// Merge another stats record into this one (iterations take the max,
    /// counters add). Useful when an experiment evaluates several programs.
    pub fn merge(&mut self, other: &EvalStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.facts_derived += other.facts_derived;
        self.derivations += other.derivations;
        self.duplicates += other.duplicates;
        self.tuples_scanned += other.tuples_scanned;
        self.index_probes += other.index_probes;
        self.rules_retired += other.rules_retired;
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "iters={} facts={} derivations={} dups={} scanned={} probes={} retired={}",
            self.iterations,
            self.facts_derived,
            self.derivations,
            self.duplicates,
            self.tuples_scanned,
            self.index_probes,
            self.rules_retired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_maxes_iterations() {
        let mut a = EvalStats {
            iterations: 3,
            facts_derived: 10,
            derivations: 12,
            duplicates: 2,
            tuples_scanned: 100,
            index_probes: 5,
            rules_retired: 1,
        };
        let b = EvalStats {
            iterations: 5,
            facts_derived: 1,
            derivations: 1,
            duplicates: 0,
            tuples_scanned: 10,
            index_probes: 0,
            rules_retired: 0,
        };
        a.merge(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.facts_derived, 11);
        assert_eq!(a.tuples_scanned, 110);
    }

    #[test]
    fn display_is_compact() {
        let s = EvalStats::default();
        let line = s.to_string();
        assert!(line.contains("iters=0"));
        assert!(line.contains("dups=0"));
    }
}

//! Evaluation statistics.
//!
//! These counters are the machine-independent costs the paper's
//! optimizations attack: fewer argument positions ⇒ fewer distinct facts
//! and cheaper duplicate elimination (§3.2); boolean cut ⇒ retired rules
//! stop contributing scans and derivations (§3.1); deleted rules ⇒ fewer
//! join attempts per iteration (§3.3/§5).

/// Counters accumulated over one fixpoint evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint iterations executed (the seed round counts as iteration 1).
    pub iterations: usize,
    /// Distinct new facts added to derived predicates.
    pub facts_derived: u64,
    /// Successful full-body rule instantiations (including ones that
    /// re-derive an existing fact).
    pub derivations: u64,
    /// Derivations whose head fact already existed (duplicate-elimination
    /// hits — the cost §3.2 highlights).
    pub duplicates: u64,
    /// Tuples enumerated across all literal scans and index probes.
    pub tuples_scanned: u64,
    /// Hash-index probes issued.
    pub index_probes: u64,
    /// Rules retired by the boolean-cut runtime (§3.1).
    pub rules_retired: u64,
}

impl EvalStats {
    /// Merge another stats record into this one.
    ///
    /// Deliberately **asymmetric** across fields: `iterations` takes the
    /// *max*, every other counter *adds*. The intended reading is "several
    /// evaluations run side by side" (an experiment evaluating program
    /// variants, or per-stratum sub-runs): total work — facts, derivations,
    /// scans, probes — accumulates across runs, but iteration counts of
    /// independent fixpoints are not commensurable work units, so the merge
    /// keeps the deepest fixpoint instead of a meaningless sum.
    ///
    /// Consequences worth knowing:
    /// * `EvalStats::default()` is a true identity: merging it in (either
    ///   direction) changes nothing.
    /// * The operation is commutative and associative (max and + both are),
    ///   so [`std::iter::Sum`] over any order gives the same result.
    pub fn merge(&mut self, other: &EvalStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.facts_derived += other.facts_derived;
        self.derivations += other.derivations;
        self.duplicates += other.duplicates;
        self.tuples_scanned += other.tuples_scanned;
        self.index_probes += other.index_probes;
        self.rules_retired += other.rules_retired;
    }

    /// JSON object for export (field names match the struct).
    pub fn to_json(&self) -> datalog_trace::Json {
        datalog_trace::Json::obj()
            .with("iterations", self.iterations)
            .with("facts_derived", self.facts_derived)
            .with("derivations", self.derivations)
            .with("duplicates", self.duplicates)
            .with("tuples_scanned", self.tuples_scanned)
            .with("index_probes", self.index_probes)
            .with("rules_retired", self.rules_retired)
    }
}

/// `+=` is [`EvalStats::merge`]: max of iterations, sum of the rest.
impl std::ops::AddAssign<EvalStats> for EvalStats {
    fn add_assign(&mut self, rhs: EvalStats) {
        self.merge(&rhs);
    }
}

/// Summing stats records merges them pairwise (see [`EvalStats::merge`];
/// the default value is the identity, so empty iterators are fine).
impl std::iter::Sum for EvalStats {
    fn sum<I: Iterator<Item = EvalStats>>(iter: I) -> EvalStats {
        let mut acc = EvalStats::default();
        for s in iter {
            acc += s;
        }
        acc
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "iters={} facts={} derivations={} dups={} scanned={} probes={} retired={}",
            self.iterations,
            self.facts_derived,
            self.derivations,
            self.duplicates,
            self.tuples_scanned,
            self.index_probes,
            self.rules_retired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_maxes_iterations() {
        let mut a = EvalStats {
            iterations: 3,
            facts_derived: 10,
            derivations: 12,
            duplicates: 2,
            tuples_scanned: 100,
            index_probes: 5,
            rules_retired: 1,
        };
        let b = EvalStats {
            iterations: 5,
            facts_derived: 1,
            derivations: 1,
            duplicates: 0,
            tuples_scanned: 10,
            index_probes: 0,
            rules_retired: 0,
        };
        a.merge(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.facts_derived, 11);
        assert_eq!(a.tuples_scanned, 110);
    }

    #[test]
    fn default_is_merge_identity_both_directions() {
        let a = EvalStats {
            iterations: 3,
            facts_derived: 10,
            derivations: 12,
            duplicates: 2,
            tuples_scanned: 100,
            index_probes: 5,
            rules_retired: 1,
        };
        // identity on the right
        let mut lhs = a;
        lhs.merge(&EvalStats::default());
        assert_eq!(lhs, a);
        // identity on the left
        let mut zero = EvalStats::default();
        zero.merge(&a);
        assert_eq!(zero, a);
        // merging a zero record into a zero record stays zero
        let mut z = EvalStats::default();
        z.merge(&EvalStats::default());
        assert_eq!(z, EvalStats::default());
    }

    #[test]
    fn add_assign_and_sum_agree_with_merge() {
        let a = EvalStats {
            iterations: 3,
            facts_derived: 10,
            ..EvalStats::default()
        };
        let b = EvalStats {
            iterations: 5,
            facts_derived: 1,
            ..EvalStats::default()
        };
        let mut via_merge = a;
        via_merge.merge(&b);
        let mut via_add = a;
        via_add += b;
        assert_eq!(via_add, via_merge);
        let via_sum: EvalStats = [a, b].into_iter().sum();
        assert_eq!(via_sum, via_merge);
        // Empty sum is the identity.
        let empty: EvalStats = std::iter::empty().sum();
        assert_eq!(empty, EvalStats::default());
    }

    #[test]
    fn json_export_carries_all_fields() {
        let s = EvalStats {
            iterations: 2,
            rules_retired: 1,
            ..EvalStats::default()
        };
        let j = s.to_json().to_string();
        assert!(j.contains("\"iterations\":2"), "{j}");
        assert!(j.contains("\"rules_retired\":1"), "{j}");
        assert!(j.contains("\"tuples_scanned\":0"), "{j}");
    }

    #[test]
    fn display_is_compact() {
        let s = EvalStats::default();
        let line = s.to_string();
        assert!(line.contains("iters=0"));
        assert!(line.contains("dups=0"));
    }
}

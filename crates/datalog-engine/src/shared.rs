//! Concurrently shared EDB storage with snapshot-isolated reads.
//!
//! `datalog-server` keeps one long-lived fact store that a writer thread
//! grows (FACT/LOAD ingestion) while N worker threads evaluate queries.
//! The storage contract that makes this safe is the same one the in-process
//! [`Relation`](crate::Relation) already exploits for semi-naive deltas:
//! **rows are append-only**, so the prefix `[0, w)` of a relation is
//! immutable once `w` rows have been committed.
//!
//! A [`SharedRelation`] therefore carries, next to its row vector, a
//! *committed watermark* (an atomic row count, published with `Release`
//! ordering after the row is in place). A [`DbSnapshot`] is nothing but an
//! `Arc` handle per relation plus the watermark observed at capture time:
//! cheap to take (no row copying), and every read through it is clamped to
//! the captured watermark — a reader can never observe a torn or
//! half-ingested state, only a consistent prefix of the ingestion order.
//! Row memory itself is only touched under the relation's `RwLock` (a `Vec`
//! push may reallocate), but the lock is held per-access, never across a
//! whole query evaluation, so ingestion and evaluation interleave freely.
//!
//! Snapshots also record a global *version* (total successful inserts),
//! which the server's prepared-query cache uses to tag materialized
//! answers; per-relation watermarks give the precise "did anything this
//! query depends on change" test.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use datalog_ast::{PredRef, Value};

use crate::facts::FactSet;
use crate::storage::{TupleRuns, TAIL_LIMIT};

/// Recover the guard from a possibly poisoned lock acquisition.
///
/// Every invariant the shared store protects is *append-only*: a row is
/// fully constructed before the committed watermark publishes it, and a
/// panic between push and publish leaves at worst an uncommitted row that
/// no reader can address. Poisoning therefore carries no information here —
/// a long-lived server must shrug it off and keep serving rather than
/// cascade one worker's panic into every connection. Works for both
/// `RwLock` and `Mutex` guards.
pub fn lock_or_recover<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Errors from the shared store. These are deliberately separate from
/// [`crate::EngineError`]: a long-running server must report them
/// in-protocol, never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedDbError {
    /// A tuple's arity disagrees with the relation's registered arity.
    Arity {
        /// The predicate.
        pred: String,
        /// Registered arity.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
}

impl std::fmt::Display for SharedDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedDbError::Arity {
                pred,
                expected,
                found,
            } => write!(
                f,
                "fact for {pred} has arity {found}, relation registered with {expected}"
            ),
        }
    }
}

impl std::error::Error for SharedDbError {}

/// Interior row storage: append-only rows plus sorted-run dedup (bloom-
/// gated binary search against the rows themselves — no duplicate copy of
/// any tuple), guarded by one lock so insert (check + push) is atomic.
#[derive(Debug, Default)]
struct RelStore {
    rows: Vec<Box<[Value]>>,
    dedup: TupleRuns,
}

/// One predicate's shared, append-only relation.
///
/// Readers address rows through a watermark they captured earlier; the
/// watermark is published only after the row is fully in place, so
/// `[0, watermark)` is always a valid, immutable prefix.
#[derive(Debug)]
pub struct SharedRelation {
    arity: usize,
    store: RwLock<RelStore>,
    /// Number of committed rows, published with `Release` after each insert.
    committed: AtomicUsize,
}

impl SharedRelation {
    /// New empty relation of the given arity.
    pub fn new(arity: usize) -> SharedRelation {
        SharedRelation {
            arity,
            store: RwLock::new(RelStore::default()),
            committed: AtomicUsize::new(0),
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Committed (reader-visible) row count.
    pub fn len(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    /// Whether no row has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a tuple; returns `Ok(true)` if it was new. Duplicates are
    /// dropped exactly as in [`crate::Relation`].
    pub fn insert(&self, tuple: &[Value]) -> Result<bool, SharedDbError> {
        if tuple.len() != self.arity {
            return Err(SharedDbError::Arity {
                pred: String::new(), // filled in by SharedDatabase
                expected: self.arity,
                found: tuple.len(),
            });
        }
        let mut g = lock_or_recover(self.store.write());
        let RelStore { rows, dedup } = &mut *g;
        if dedup.contains(rows, tuple) {
            return Ok(false);
        }
        let boxed: Box<[Value]> = tuple.into();
        dedup.note_insert(boxed.clone());
        rows.push(boxed);
        if dedup.tail_len() >= TAIL_LIMIT {
            dedup.seal_to(rows, rows.len());
        }
        let n = rows.len();
        // Publish while still holding the write lock so `committed` can
        // never run ahead of a concurrent writer's in-flight push.
        self.committed.store(n, Ordering::Release);
        Ok(true)
    }

    /// Bulk-load a batch of rows (recovery fast path): duplicates are
    /// eliminated by one order-preserving sort instead of per-row hashing,
    /// then the whole batch is sealed into sorted runs at once. Returns the
    /// number of new rows committed.
    pub fn load_batch(&self, batch: Vec<Box<[Value]>>) -> Result<usize, SharedDbError> {
        for tuple in &batch {
            if tuple.len() != self.arity {
                return Err(SharedDbError::Arity {
                    pred: String::new(), // filled in by SharedDatabase
                    expected: self.arity,
                    found: tuple.len(),
                });
            }
        }
        let mut g = lock_or_recover(self.store.write());
        let RelStore { rows, dedup } = &mut *g;
        let before = rows.len();
        if rows.is_empty() {
            // Order-preserving distinct: sort indices by (tuple, position),
            // mark later equal positions as duplicates, keep first sightings
            // in their original ingestion order.
            let mut idx: Vec<u32> = (0..batch.len() as u32).collect();
            idx.sort_unstable_by(|&a, &b| {
                batch[a as usize][..]
                    .cmp(&batch[b as usize][..])
                    .then(a.cmp(&b))
            });
            let mut dup = vec![false; batch.len()];
            for w in idx.windows(2) {
                if batch[w[0] as usize] == batch[w[1] as usize] {
                    dup[w[1] as usize] = true;
                }
            }
            for (i, row) in batch.into_iter().enumerate() {
                if !dup[i] {
                    rows.push(row);
                }
            }
        } else {
            for tuple in batch {
                if dedup.contains(rows, &tuple) {
                    continue;
                }
                dedup.note_insert(tuple.clone());
                rows.push(tuple);
            }
        }
        dedup.seal_to(rows, rows.len());
        while dedup.wants_merge() {
            dedup.merge_last_two();
        }
        let n = rows.len();
        self.committed.store(n, Ordering::Release);
        Ok(n - before)
    }

    /// Seal the dedup tail into a sorted run and consolidate. Called by the
    /// server's maintenance thread; inserts also seal past [`TAIL_LIMIT`].
    pub fn seal(&self) {
        let mut g = lock_or_recover(self.store.write());
        let RelStore { rows, dedup } = &mut *g;
        dedup.seal_to(rows, rows.len());
        while dedup.wants_merge() {
            dedup.merge_last_two();
        }
    }

    /// Number of sealed dedup runs (the `xdl_storage_runs` input).
    pub fn run_count(&self) -> usize {
        lock_or_recover(self.store.read()).dedup.run_count()
    }

    /// Copy of the immutable prefix `[0, watermark)`, in insertion order.
    /// The read lock is held only for the duration of the copy.
    pub fn prefix(&self, watermark: usize) -> Vec<Vec<Value>> {
        self.range(0, watermark)
    }

    /// Copy of the immutable row range `[start, end)` (both clamped to the
    /// committed rows), in insertion order. Incremental consumers use this
    /// to read exactly the rows ingested between two watermarks they
    /// observed — the append-only contract makes any such range immutable.
    pub fn range(&self, start: usize, end: usize) -> Vec<Vec<Value>> {
        let g = lock_or_recover(self.store.read());
        let end = end.min(g.rows.len());
        let start = start.min(end);
        g.rows[start..end].iter().map(|r| r.to_vec()).collect()
    }
}

/// A shared fact database: one [`SharedRelation`] per predicate, a global
/// insert version, and cheap consistent snapshots.
#[derive(Debug, Default)]
pub struct SharedDatabase {
    rels: RwLock<BTreeMap<PredRef, Arc<SharedRelation>>>,
    /// Total successful inserts across all relations (monotone).
    version: AtomicU64,
}

impl SharedDatabase {
    /// Empty shared database.
    pub fn new() -> SharedDatabase {
        SharedDatabase::default()
    }

    /// The global insert version: bumped once per new fact, monotone.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Register (or look up) a predicate. Unlike
    /// [`Database::register`](crate::Database::register) this does not
    /// panic on an arity clash — the server reports the error in-protocol.
    pub fn register(
        &self,
        pred: &PredRef,
        arity: usize,
    ) -> Result<Arc<SharedRelation>, SharedDbError> {
        {
            let g = lock_or_recover(self.rels.read());
            if let Some(rel) = g.get(pred) {
                if rel.arity() != arity {
                    return Err(SharedDbError::Arity {
                        pred: pred.to_string(),
                        expected: rel.arity(),
                        found: arity,
                    });
                }
                return Ok(Arc::clone(rel));
            }
        }
        let mut g = lock_or_recover(self.rels.write());
        let rel = g
            .entry(pred.clone())
            .or_insert_with(|| Arc::new(SharedRelation::new(arity)));
        if rel.arity() != arity {
            return Err(SharedDbError::Arity {
                pred: pred.to_string(),
                expected: rel.arity(),
                found: arity,
            });
        }
        Ok(Arc::clone(rel))
    }

    /// Insert one fact, registering the predicate on first sight. Returns
    /// `Ok(true)` if the fact was new.
    pub fn insert(&self, pred: &PredRef, tuple: &[Value]) -> Result<bool, SharedDbError> {
        let rel = self.register(pred, tuple.len())?;
        let new = rel.insert(tuple).map_err(|e| match e {
            SharedDbError::Arity {
                expected, found, ..
            } => SharedDbError::Arity {
                pred: pred.to_string(),
                expected,
                found,
            },
        })?;
        if new {
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        Ok(new)
    }

    /// Bulk-load a [`FactSet`]; returns the number of *new* facts.
    pub fn load(&self, facts: &FactSet) -> Result<usize, SharedDbError> {
        let mut fresh = 0;
        for (pred, tuple) in facts.iter() {
            if self.insert(pred, tuple)? {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Bulk-load one predicate's rows (the manifest-recovery fast path):
    /// register once, dedup by sort instead of per-row hashing, seal the
    /// batch into sorted runs, and bump the version by the new-row count.
    pub fn load_batch(
        &self,
        pred: &PredRef,
        arity: usize,
        rows: Vec<Box<[Value]>>,
    ) -> Result<usize, SharedDbError> {
        let rel = self.register(pred, arity)?;
        let fresh = rel.load_batch(rows).map_err(|e| match e {
            SharedDbError::Arity {
                expected, found, ..
            } => SharedDbError::Arity {
                pred: pred.to_string(),
                expected,
                found,
            },
        })?;
        if fresh > 0 {
            self.version.fetch_add(fresh as u64, Ordering::AcqRel);
        }
        Ok(fresh)
    }

    /// Total sealed dedup runs across relations (the `xdl_storage_runs`
    /// gauge input for the shared EDB).
    pub fn storage_runs(&self) -> usize {
        let g = lock_or_recover(self.rels.read());
        g.values().map(|r| r.run_count()).sum()
    }

    /// Seal every relation's dedup tail and consolidate runs. Called by
    /// the server's maintenance thread between deferred drains.
    pub fn seal_storage(&self) {
        let rels: Vec<Arc<SharedRelation>> = {
            let g = lock_or_recover(self.rels.read());
            g.values().map(Arc::clone).collect()
        };
        for rel in rels {
            rel.seal();
        }
    }

    /// Total committed facts.
    pub fn total_facts(&self) -> usize {
        let g = lock_or_recover(self.rels.read());
        g.values().map(|r| r.len()).sum()
    }

    /// Number of registered predicates.
    pub fn pred_count(&self) -> usize {
        lock_or_recover(self.rels.read()).len()
    }

    /// Capture a consistent snapshot: an `Arc` handle and the committed
    /// watermark of every relation, plus the global version.
    ///
    /// The version is read *before* the watermarks: a concurrent insert can
    /// then only make the snapshot look *older* than the rows it exposes,
    /// so version-tagged caches recompute rather than serve stale answers.
    pub fn snapshot(&self) -> DbSnapshot {
        let version = self.version();
        let g = lock_or_recover(self.rels.read());
        let rels = g
            .iter()
            .map(|(p, r)| (p.clone(), Arc::clone(r), r.len()))
            .collect();
        DbSnapshot { rels, version }
    }
}

/// A consistent read view of a [`SharedDatabase`]: for every relation, the
/// immutable row prefix `[0, watermark)` as of capture time.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    rels: Vec<(PredRef, Arc<SharedRelation>, usize)>,
    version: u64,
}

impl DbSnapshot {
    /// The global version observed at (or just before) capture.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Facts visible in this snapshot.
    pub fn total_facts(&self) -> usize {
        self.rels.iter().map(|(_, _, w)| w).sum()
    }

    /// Visible row count of one predicate (0 when absent).
    pub fn count(&self, pred: &PredRef) -> usize {
        self.rels
            .iter()
            .find(|(p, _, _)| p == pred)
            .map_or(0, |(_, _, w)| *w)
    }

    /// The `(pred, watermark)` pairs of this snapshot, restricted to the
    /// given support set — the cache-validity fingerprint for a query that
    /// reads exactly those predicates.
    pub fn watermarks_for<'a>(
        &self,
        support: impl IntoIterator<Item = &'a PredRef>,
    ) -> Vec<(PredRef, usize)> {
        support
            .into_iter()
            .map(|p| (p.clone(), self.count(p)))
            .collect()
    }

    /// The predicates with at least one visible row in this snapshot.
    pub fn preds(&self) -> Vec<PredRef> {
        self.rels
            .iter()
            .filter(|(_, _, w)| *w > 0)
            .map(|(p, _, _)| p.clone())
            .collect()
    }

    /// Rows of one predicate visible in this snapshot, in insertion order.
    pub fn rows(&self, pred: &PredRef) -> Vec<Vec<Value>> {
        self.rels
            .iter()
            .find(|(p, _, _)| p == pred)
            .map_or_else(Vec::new, |(_, rel, w)| rel.prefix(*w))
    }

    /// Rows of one predicate from `start` up to this snapshot's watermark,
    /// in ingestion order — the delta a consumer that already applied
    /// `[0, start)` needs to catch up to the snapshot. Empty when `start`
    /// is at or past the watermark (including for absent predicates).
    pub fn rows_from(&self, pred: &PredRef, start: usize) -> Vec<Vec<Value>> {
        self.rels
            .iter()
            .find(|(p, _, _)| p == pred)
            .map_or_else(Vec::new, |(_, rel, w)| rel.range(start, *w))
    }

    /// Total rows this snapshot holds beyond what a consumer already
    /// applied, summed over the given support set — the *watermark lag*
    /// that a resident form draining to `applied` marks would still have
    /// to propagate. `0` means the consumer is exactly at this snapshot
    /// (no drain needed); predicates missing from `applied` count from 0.
    pub fn lag_from<'a>(
        &self,
        support: impl IntoIterator<Item = &'a PredRef>,
        applied: &BTreeMap<PredRef, usize>,
    ) -> u64 {
        support
            .into_iter()
            .map(|p| {
                let have = applied.get(p).copied().unwrap_or(0);
                self.count(p).saturating_sub(have) as u64
            })
            .sum()
    }

    /// Materialize the snapshot as a [`FactSet`] — the engine's input
    /// currency — copying only up to each relation's watermark.
    pub fn to_factset(&self) -> FactSet {
        let mut fs = FactSet::new();
        for (pred, rel, w) in &self.rels {
            for row in rel.prefix(*w) {
                fs.insert(pred.clone(), row);
            }
        }
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn insert_dedups_and_versions() {
        let db = SharedDatabase::new();
        let p = PredRef::new("p");
        assert!(db.insert(&p, &t(&[1, 2])).unwrap());
        assert!(!db.insert(&p, &t(&[1, 2])).unwrap());
        assert!(db.insert(&p, &t(&[2, 3])).unwrap());
        assert_eq!(db.version(), 2, "duplicates do not bump the version");
        assert_eq!(db.total_facts(), 2);
    }

    #[test]
    fn arity_clash_is_an_error_not_a_panic() {
        let db = SharedDatabase::new();
        let p = PredRef::new("p");
        db.insert(&p, &t(&[1, 2])).unwrap();
        let e = db.insert(&p, &t(&[1])).unwrap_err();
        assert!(
            matches!(
                e,
                SharedDbError::Arity {
                    expected: 2,
                    found: 1,
                    ..
                }
            ),
            "{e:?}"
        );
        assert!(e.to_string().contains("arity 1"));
    }

    #[test]
    fn snapshot_is_a_frozen_prefix() {
        let db = SharedDatabase::new();
        let p = PredRef::new("p");
        for i in 0..5 {
            db.insert(&p, &t(&[i])).unwrap();
        }
        let snap = db.snapshot();
        assert_eq!(snap.count(&p), 5);
        // Later inserts are invisible through the snapshot.
        for i in 5..10 {
            db.insert(&p, &t(&[i])).unwrap();
        }
        assert_eq!(snap.count(&p), 5);
        assert_eq!(snap.total_facts(), 5);
        let rows = snap.rows(&p);
        assert_eq!(rows, (0..5).map(|i| t(&[i])).collect::<Vec<_>>());
        // A fresh snapshot sees everything, in insertion order.
        let snap2 = db.snapshot();
        assert_eq!(snap2.rows(&p), (0..10).map(|i| t(&[i])).collect::<Vec<_>>());
        assert!(snap2.version() > snap.version());
    }

    #[test]
    fn snapshot_to_factset_and_watermarks() {
        let db = SharedDatabase::new();
        let p = PredRef::new("p");
        let q = PredRef::new("q");
        db.insert(&p, &t(&[1, 2])).unwrap();
        db.insert(&q, &t(&[7])).unwrap();
        let snap = db.snapshot();
        let fs = snap.to_factset();
        assert_eq!(fs.len(), 2);
        assert!(fs.contains(&p, &t(&[1, 2])));
        let wm = snap.watermarks_for([&p, &q, &PredRef::new("absent")]);
        assert_eq!(
            wm,
            vec![(p.clone(), 1), (q.clone(), 1), (PredRef::new("absent"), 0)]
        );
    }

    #[test]
    fn lag_from_counts_unapplied_rows_over_the_support() {
        let db = SharedDatabase::new();
        let p = PredRef::new("p");
        let q = PredRef::new("q");
        for i in 0..5 {
            db.insert(&p, &t(&[i])).unwrap();
        }
        db.insert(&q, &t(&[0])).unwrap();
        let snap = db.snapshot();
        let mut applied = BTreeMap::new();
        applied.insert(p.clone(), 3);
        // q missing from `applied` counts from zero; 2 + 1 unapplied rows.
        assert_eq!(snap.lag_from([&p, &q], &applied), 3);
        applied.insert(q.clone(), 1);
        applied.insert(p.clone(), 5);
        assert_eq!(snap.lag_from([&p, &q], &applied), 0);
        // A consumer ahead of the snapshot (newer drain) never underflows.
        applied.insert(p.clone(), 9);
        assert_eq!(snap.lag_from([&p, &q], &applied), 0);
    }

    #[test]
    fn poisoned_lock_is_recovered_and_usable() {
        let db = Arc::new(SharedDatabase::new());
        let p = PredRef::new("p");
        db.insert(&p, &t(&[1])).unwrap();
        // Poison the relation lock: panic while holding the write guard.
        {
            let db = Arc::clone(&db);
            let p = p.clone();
            std::thread::spawn(move || {
                let rel = db.register(&p, 1).unwrap();
                let _g = rel.store.write().unwrap();
                panic!("poison the relation lock on purpose");
            })
            .join()
            .unwrap_err();
        }
        // Also poison the database-level relation-map lock.
        {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let _g = db.rels.write().unwrap();
                panic!("poison the db lock on purpose");
            })
            .join()
            .unwrap_err();
        }
        // Every operation still works: reads, writes, snapshots.
        assert!(db.insert(&p, &t(&[2])).unwrap());
        assert!(!db.insert(&p, &t(&[1])).unwrap(), "dedup state survived");
        let snap = db.snapshot();
        assert_eq!(snap.count(&p), 2);
        assert_eq!(snap.rows(&p), vec![t(&[1]), t(&[2])]);
        assert_eq!(db.total_facts(), 2);
        assert_eq!(db.pred_count(), 1);
    }

    #[test]
    fn rows_from_reads_the_delta_between_watermarks() {
        let db = SharedDatabase::new();
        let p = PredRef::new("p");
        for i in 0..3 {
            db.insert(&p, &t(&[i])).unwrap();
        }
        let early = db.snapshot();
        for i in 3..7 {
            db.insert(&p, &t(&[i])).unwrap();
        }
        let late = db.snapshot();
        // The delta a consumer at the early watermark must apply.
        assert_eq!(
            late.rows_from(&p, early.count(&p)),
            (3..7).map(|i| t(&[i])).collect::<Vec<_>>()
        );
        // Caught-up, past-the-end, and absent-pred reads are all empty.
        assert!(late.rows_from(&p, late.count(&p)).is_empty());
        assert!(late.rows_from(&p, 99).is_empty());
        assert!(late.rows_from(&PredRef::new("absent"), 0).is_empty());
        // The early snapshot never exposes the later rows.
        assert!(early.rows_from(&p, 3).is_empty());
    }

    #[test]
    fn load_batch_dedups_seals_and_matches_per_row_inserts() {
        let bulk = SharedDatabase::new();
        let slow = SharedDatabase::new();
        let p = PredRef::new("p");
        // A batch with internal duplicates, in a deliberate order.
        let batch: Vec<Box<[Value]>> = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
            .iter()
            .map(|&v| t(&[v]).into_boxed_slice())
            .collect();
        let fresh = bulk.load_batch(&p, 1, batch.clone()).unwrap();
        for row in &batch {
            slow.insert(&p, row).unwrap();
        }
        assert_eq!(fresh, 7);
        assert_eq!(bulk.version(), slow.version());
        assert_eq!(bulk.snapshot().rows(&p), slow.snapshot().rows(&p));
        assert!(bulk.storage_runs() >= 1, "bulk load sealed no runs");
        // A second batch over a non-empty store: per-row fallback, same
        // dedup semantics against already-stored rows.
        let fresh = bulk.load_batch(&p, 1, batch).unwrap();
        assert_eq!(fresh, 0);
        // Arity clashes are reported in-protocol, never panics.
        let e = bulk.load_batch(&p, 2, vec![]).unwrap_err();
        assert!(matches!(e, SharedDbError::Arity { .. }));
        // Sealing on demand keeps membership intact.
        bulk.seal_storage();
        assert!(!bulk.insert(&p, &t(&[3])).unwrap());
        assert!(bulk.insert(&p, &t(&[42])).unwrap());
    }

    #[test]
    fn missing_pred_reads_as_empty() {
        let db = SharedDatabase::new();
        let snap = db.snapshot();
        assert_eq!(snap.count(&PredRef::new("nope")), 0);
        assert!(snap.rows(&PredRef::new("nope")).is_empty());
        assert_eq!(snap.version(), 0);
    }
}

//! Loom-free stress test for snapshot-isolated reads on [`SharedDatabase`].
//!
//! A writer thread inserts facts in a known global order while M reader
//! threads repeatedly take snapshots. The invariants a reader checks:
//!
//! 1. **Prefix consistency** — every snapshot exposes *exactly* the first
//!    `watermark` facts of the writer's insertion order for each relation,
//!    never a row that was published before an earlier row of the same
//!    relation.
//! 2. **Monotonicity** — successive snapshots taken by one reader never go
//!    backwards (watermarks and the global version only grow).
//! 3. **Version/watermark ordering** — because the version is captured
//!    before the watermarks, the sum of watermarks is never *less* than the
//!    captured version would imply for a single-writer history.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use datalog_ast::{PredRef, Value};
use datalog_engine::SharedDatabase;

const WRITES_PER_PRED: i64 = 2_000;
const READERS: usize = 4;

#[test]
fn readers_only_see_watermark_consistent_prefixes() {
    let db = Arc::new(SharedDatabase::new());
    let preds: Vec<PredRef> = vec![PredRef::new("edge"), PredRef::new("node")];
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for reader_id in 0..READERS {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        let preds = preds.clone();
        handles.push(thread::spawn(move || {
            let mut last_version = 0u64;
            let mut last_wm = vec![0usize; preds.len()];
            let mut snapshots_taken = 0u64;
            while !done.load(Ordering::Acquire) || snapshots_taken == 0 {
                let snap = db.snapshot();
                // Invariant 2: monotone per reader.
                assert!(
                    snap.version() >= last_version,
                    "reader {reader_id}: version went backwards"
                );
                last_version = snap.version();
                for (i, pred) in preds.iter().enumerate() {
                    let w = snap.count(pred);
                    assert!(
                        w >= last_wm[i],
                        "reader {reader_id}: watermark of {pred} went backwards"
                    );
                    last_wm[i] = w;
                    // Invariant 1: the rows are exactly the insertion-order
                    // prefix [0, w). The writer inserts (k, k+1) at step k,
                    // so position j must hold (j, j+1).
                    let rows = snap.rows(pred);
                    assert_eq!(rows.len(), w, "reader {reader_id}: torn prefix");
                    for (j, row) in rows.iter().enumerate() {
                        let j = j as i64;
                        assert_eq!(
                            row,
                            &vec![Value::int(j), Value::int(j + 1)],
                            "reader {reader_id}: {pred} row {j} out of order"
                        );
                    }
                }
                // Invariant 3: version counts successful inserts, captured
                // before watermarks, so visible facts >= version is possible
                // but visible facts can never exceed total inserts so far.
                let visible: usize = preds.iter().map(|p| snap.count(p)).sum();
                assert!(
                    visible >= snap.version() as usize
                        || snap.version() as usize <= (WRITES_PER_PRED as usize) * preds.len(),
                    "reader {reader_id}: impossible version/watermark combination"
                );
                snapshots_taken += 1;
            }
            snapshots_taken
        }));
    }

    // Single writer: interleave predicates so both relations grow together.
    for k in 0..WRITES_PER_PRED {
        for pred in &preds {
            db.insert(pred, &[Value::int(k), Value::int(k + 1)])
                .expect("insert");
        }
    }
    done.store(true, Ordering::Release);

    let mut total_snaps = 0;
    for h in handles {
        total_snaps += h.join().expect("reader panicked");
    }
    assert!(total_snaps >= READERS as u64, "every reader snapshotted");

    // Quiescent state: a final snapshot sees everything.
    let snap = db.snapshot();
    assert_eq!(snap.total_facts(), (WRITES_PER_PRED as usize) * preds.len());
    assert_eq!(
        snap.version(),
        (WRITES_PER_PRED as u64) * preds.len() as u64
    );
    let fs = snap.to_factset();
    assert_eq!(fs.len(), snap.total_facts());
}

#[test]
fn concurrent_writers_never_lose_or_duplicate_facts() {
    let db = Arc::new(SharedDatabase::new());
    let pred = PredRef::new("p");
    const WRITERS: usize = 4;
    const PER_WRITER: i64 = 500;

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let db = Arc::clone(&db);
        let pred = pred.clone();
        handles.push(thread::spawn(move || {
            let mut fresh = 0usize;
            for k in 0..PER_WRITER {
                // Half the range is disjoint per writer, half is contended
                // (every writer inserts it) to exercise dedup under races.
                let v = if k % 2 == 0 {
                    (w as i64) * PER_WRITER + k
                } else {
                    -k
                };
                if db.insert(&pred, &[Value::int(v)]).expect("insert") {
                    fresh += 1;
                }
            }
            fresh
        }));
    }
    let fresh_total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let snap = db.snapshot();
    let expected_unique = WRITERS * (PER_WRITER as usize) / 2 + (PER_WRITER as usize) / 2;
    assert_eq!(
        snap.count(&pred),
        expected_unique,
        "no lost or duplicated rows"
    );
    assert_eq!(
        fresh_total, expected_unique,
        "exactly one writer wins each contended row"
    );
    assert_eq!(snap.version(), expected_unique as u64);
}

//! Integration tests for the per-rule / per-iteration profiler.
//!
//! The profiler attributes the engine's *global* counters to individual
//! rules by differencing `EvalStats` around each join variant, so the
//! per-rule profiles must partition the global numbers exactly — that
//! invariant is what makes the hot-rule table trustworthy, and it is
//! checked here on a semi-naive transitive-closure run. The boolean-cut
//! retirement bookkeeping (§3.1) is checked on a program whose boolean
//! rules actually retire.

use datalog_ast::{parse_program, PredRef, Value};
use datalog_engine::{evaluate, query_answers_full, EvalOptions, FactSet, Strategy};

fn chain_edb(n: i64) -> FactSet {
    let mut fs = FactSet::new();
    for i in 0..n {
        fs.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
    }
    fs
}

const TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                  a(X, Y) :- p(X, Y).\n\
                  ?- a(X, Y).";

#[test]
fn per_rule_profiles_partition_global_stats_seminaive() {
    let p = parse_program(TC).unwrap().program;
    let opts = EvalOptions {
        profile: true,
        strategy: Strategy::SemiNaive,
        ..EvalOptions::default()
    };
    let (answers, out) = query_answers_full(&p, &chain_edb(12), &opts).unwrap();
    assert_eq!(answers.len(), 78); // 12*13/2
    let profile = out.profile.as_ref().expect("profiling was on");
    assert_eq!(profile.rules.len(), 2);

    // Every global counter is exactly the sum of the per-rule counters:
    // all stats mutations happen inside join variants, and the profiler
    // snapshots stats around each variant.
    let sum =
        |f: fn(&datalog_trace::RuleProfile) -> u64| -> u64 { profile.rules.iter().map(f).sum() };
    assert_eq!(sum(|r| r.derivations), out.stats.derivations);
    assert_eq!(sum(|r| r.facts_derived), out.stats.facts_derived);
    assert_eq!(sum(|r| r.duplicates), out.stats.duplicates);
    assert_eq!(sum(|r| r.tuples_scanned), out.stats.tuples_scanned);
    assert_eq!(sum(|r| r.index_probes), out.stats.index_probes);

    // The timeline's per-predicate growth also partitions facts_derived,
    // and covers every iteration of the fixpoint.
    assert_eq!(profile.timeline.len(), out.stats.iterations);
    let timeline_facts: u64 = profile
        .timeline
        .iter()
        .flat_map(|it| it.deltas.iter())
        .map(|d| d.new_facts)
        .sum();
    assert_eq!(timeline_facts, out.stats.facts_derived);

    // Rule source text is filled in for rendering.
    assert!(profile.rules.iter().all(|r| !r.rule.is_empty()));
    assert_eq!(profile.rules[0].head, "a");
}

#[test]
fn naive_and_seminaive_profiles_agree_on_derived_facts() {
    let p = parse_program(TC).unwrap().program;
    let run = |strategy| {
        let opts = EvalOptions {
            profile: true,
            strategy,
            ..EvalOptions::default()
        };
        query_answers_full(&p, &chain_edb(8), &opts).unwrap().1
    };
    let naive = run(Strategy::Naive);
    let semi = run(Strategy::SemiNaive);
    let facts = |out: &datalog_engine::EvalOutput, i: usize| {
        out.profile.as_ref().unwrap().rules[i].facts_derived
    };
    // Distinct facts per rule are strategy-independent; join effort is not.
    assert_eq!(facts(&naive, 0), facts(&semi, 0));
    assert_eq!(facts(&naive, 1), facts(&semi, 1));
}

#[test]
fn boolean_cut_retirement_iterations_match_stats() {
    // `b` is a zero-arity (boolean) head: once it derives, the §3.1 cut
    // retires its rule. `a` keeps iterating, so the fixpoint continues
    // after the retirement.
    let src = "b :- p(X, Y).\n\
               a(X, Y) :- p(X, Y), b.\n\
               a(X, Y) :- p(X, Z), a(Z, Y), b.\n\
               ?- a(X, Y).";
    let p = parse_program(src).unwrap().program;
    let opts = EvalOptions {
        profile: true,
        boolean_cut: true,
        ..EvalOptions::default()
    };
    let (answers, out) = query_answers_full(&p, &chain_edb(6), &opts).unwrap();
    assert_eq!(answers.len(), 21); // 6*7/2
    assert!(out.stats.rules_retired > 0, "{}", out.stats);
    let profile = out.profile.as_ref().expect("profiling was on");

    // Exactly `rules_retired` rules carry a retirement iteration.
    let retired: Vec<&datalog_trace::RuleProfile> = profile
        .rules
        .iter()
        .filter(|r| r.retired_at.is_some())
        .collect();
    assert_eq!(retired.len() as u64, out.stats.rules_retired);
    // The boolean rule itself is among them, and its retirement iteration
    // appears in the timeline's rules_retired accounting.
    assert!(retired.iter().any(|r| r.head == "b"));
    for r in &retired {
        let it = r.retired_at.unwrap();
        let iter_profile = profile
            .timeline
            .iter()
            .find(|t| t.iteration == it)
            .expect("retirement iteration is in the timeline");
        assert!(iter_profile.rules_retired > 0);
    }
    // Timeline total matches the global counter too.
    let timeline_retired: u64 = profile.timeline.iter().map(|t| t.rules_retired).sum();
    assert_eq!(timeline_retired, out.stats.rules_retired);
}

#[test]
fn profiling_off_yields_no_profile_and_same_answers() {
    let p = parse_program(TC).unwrap().program;
    let on = EvalOptions {
        profile: true,
        ..EvalOptions::default()
    };
    let off = EvalOptions::default();
    let (a_on, out_on) = query_answers_full(&p, &chain_edb(10), &on).unwrap();
    let (a_off, out_off) = query_answers_full(&p, &chain_edb(10), &off).unwrap();
    assert!(out_on.profile.is_some());
    assert!(out_off.profile.is_none());
    assert_eq!(a_on.rows, a_off.rows);
    assert_eq!(out_on.stats, out_off.stats);
}

#[test]
fn evaluate_profile_covers_stratified_negation() {
    // Two strata: reach in stratum 0, unreached (negation) in stratum 1.
    let src = "reach(X) :- start(X).\n\
               reach(Y) :- reach(X), edge(X, Y).\n\
               unreached(X) :- node(X), not reach(X).\n\
               ?- unreached(X).";
    let p = parse_program(src).unwrap().program;
    let mut fs = FactSet::new();
    for i in 0..5 {
        fs.insert(PredRef::new("node"), vec![Value::int(i)]);
    }
    fs.insert(PredRef::new("start"), vec![Value::int(0)]);
    fs.insert(PredRef::new("edge"), vec![Value::int(0), Value::int(1)]);
    fs.insert(PredRef::new("edge"), vec![Value::int(1), Value::int(2)]);
    let opts = EvalOptions {
        profile: true,
        ..EvalOptions::default()
    };
    let out = evaluate(&p, &fs, &opts).unwrap();
    let profile = out.profile.as_ref().unwrap();
    // Iterations from more than one stratum appear in the timeline.
    let strata: std::collections::BTreeSet<usize> =
        profile.timeline.iter().map(|t| t.stratum).collect();
    assert!(strata.len() >= 2, "timeline: {:?}", profile.timeline);
    // And the partition invariant holds across strata as well.
    let sum: u64 = profile.rules.iter().map(|r| r.derivations).sum();
    assert_eq!(sum, out.stats.derivations);
}

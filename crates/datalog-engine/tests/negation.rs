//! Stratified-negation evaluation tests (the §6 extension).

use datalog_ast::{parse_program, PredRef, Value};
use datalog_engine::{evaluate, query_answers, EngineError, EvalOptions, FactSet, Strategy};

fn fs(pairs: &[(&str, &[i64])]) -> FactSet {
    let mut f = FactSet::new();
    for (p, args) in pairs {
        f.insert(
            PredRef::new(p),
            args.iter().map(|&a| Value::int(a)).collect(),
        );
    }
    f
}

#[test]
fn basic_negation_as_failure() {
    let p = parse_program(
        "alive(X) :- node(X), not dead(X).\n\
         ?- alive(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[
        ("node", &[1]),
        ("node", &[2]),
        ("node", &[3]),
        ("dead", &[2]),
    ]);
    let (ans, _) = query_answers(&p, &input, &EvalOptions::default()).unwrap();
    let rows: Vec<i64> = ans
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(rows, vec![1, 3]);
}

#[test]
fn negation_of_derived_predicate_uses_lower_stratum() {
    // Unreachable nodes: reach in stratum 0, unreached in stratum 1.
    let p = parse_program(
        "reach(Y) :- start(Y).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         unreached(X) :- node(X), not reach(X).\n\
         ?- unreached(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[
        ("start", &[0]),
        ("edge", &[0, 1]),
        ("edge", &[1, 2]),
        ("edge", &[3, 4]),
        ("node", &[0]),
        ("node", &[1]),
        ("node", &[2]),
        ("node", &[3]),
        ("node", &[4]),
    ]);
    let (ans, _) = query_answers(&p, &input, &EvalOptions::default()).unwrap();
    assert_eq!(ans.len(), 2); // nodes 3 and 4
    assert!(ans.rows.contains(&vec![Value::int(3)]));
    assert!(ans.rows.contains(&vec![Value::int(4)]));
}

#[test]
fn three_strata_chain() {
    let p = parse_program(
        "a(X) :- base(X).\n\
         b(X) :- univ(X), not a(X).\n\
         c(X) :- univ(X), not b(X).\n\
         ?- c(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[("base", &[1]), ("univ", &[1]), ("univ", &[2])]);
    // a = {1}; b = {2}; c = univ \ b = {1}.
    let (ans, _) = query_answers(&p, &input, &EvalOptions::default()).unwrap();
    assert_eq!(ans.rows, [vec![Value::int(1)]].into());
}

#[test]
fn unstratified_program_is_rejected() {
    let p = parse_program(
        "win(X) :- move(X, Y), not win(Y).\n\
         ?- win(X).",
    )
    .unwrap()
    .program;
    let err = evaluate(&p, &FactSet::new(), &EvalOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::NotStratified { .. }), "{err}");
}

#[test]
fn mutual_recursion_with_external_negation_is_stratified() {
    let p = parse_program(
        "even(X) :- zero(X).\n\
         even(X) :- succ(Y, X), odd(Y).\n\
         odd(X) :- succ(Y, X), even(Y).\n\
         neither(X) :- num(X), not even(X), not odd(X).\n\
         ?- neither(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[
        ("zero", &[0]),
        ("succ", &[0, 1]),
        ("succ", &[1, 2]),
        ("num", &[0]),
        ("num", &[1]),
        ("num", &[2]),
        ("num", &[99]),
    ]);
    let (ans, _) = query_answers(&p, &input, &EvalOptions::default()).unwrap();
    assert_eq!(ans.rows, [vec![Value::int(99)]].into());
}

#[test]
fn naive_and_seminaive_agree_under_negation() {
    let p = parse_program(
        "reach(Y) :- start(Y).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         frontier(X) :- reach(X), not interior(X).\n\
         interior(X) :- edge(X, Y), reach(X), reach(Y).\n\
         ?- frontier(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[
        ("start", &[0]),
        ("edge", &[0, 1]),
        ("edge", &[1, 2]),
        ("edge", &[2, 3]),
    ]);
    let naive = evaluate(
        &p,
        &input,
        &EvalOptions {
            strategy: Strategy::Naive,
            ..EvalOptions::default()
        },
    )
    .unwrap();
    let semi = evaluate(&p, &input, &EvalOptions::default()).unwrap();
    assert_eq!(naive.database.dump(), semi.database.dump());
}

#[test]
fn negation_with_constants_and_wildcard_query() {
    let p = parse_program(
        "orphan(X) :- node(X), not edge(X, X).\n\
         ?- orphan(_).",
    )
    .unwrap()
    .program;
    let input = fs(&[("node", &[1]), ("node", &[2]), ("edge", &[1, 1])]);
    let (ans, _) = query_answers(&p, &input, &EvalOptions::default()).unwrap();
    // Boolean (all columns existential): some orphan exists.
    assert_eq!(ans.as_bool(), Some(true));
}

#[test]
fn stratified_negation_counts_probes() {
    let p = parse_program(
        "q(X) :- s(X), not t(X).\n\
         ?- q(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[("s", &[1]), ("s", &[2]), ("t", &[2])]);
    let out = evaluate(&p, &input, &EvalOptions::default()).unwrap();
    assert!(out.stats.index_probes >= 2, "negation checks are counted");
    assert_eq!(out.database.dump().count(&PredRef::new("q")), 1);
}

// --- join reordering (engine feature, not negation-specific, but this
// integration file exercises cross-cutting EvalOptions) ---

#[test]
fn join_reordering_preserves_answers_and_reduces_scans() {
    let p = parse_program(
        "q(X) :- e(X, Y), f(Y, 3).\n\
         ?- q(X).",
    )
    .unwrap()
    .program;
    let mut input = FactSet::new();
    for i in 0..200i64 {
        input.insert(PredRef::new("e"), vec![Value::int(i), Value::int(i % 50)]);
    }
    input.insert(PredRef::new("f"), vec![Value::int(7), Value::int(3)]);
    input.insert(PredRef::new("f"), vec![Value::int(8), Value::int(9)]);
    let plain = evaluate(&p, &input, &EvalOptions::default()).unwrap();
    let reordered = evaluate(
        &p,
        &input,
        &EvalOptions {
            reorder_joins: true,
            ..EvalOptions::default()
        },
    )
    .unwrap();
    assert_eq!(plain.database.dump(), reordered.database.dump());
    // Source order scans all of e then probes f; reordered starts from the
    // constant-bearing f literal and probes e on the bound column.
    assert!(
        reordered.stats.tuples_scanned < plain.stats.tuples_scanned / 5,
        "reordered {} vs plain {}",
        reordered.stats.tuples_scanned,
        plain.stats.tuples_scanned
    );
}

#[test]
fn join_reordering_agrees_on_recursion_and_negation() {
    let p = parse_program(
        "reach(Y) :- start(Y).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         frontier(X) :- reach(X), not interior(X).\n\
         interior(X) :- reach(X), edge(X, Y), reach(Y).\n\
         ?- frontier(X).",
    )
    .unwrap()
    .program;
    let input = fs(&[
        ("start", &[0]),
        ("edge", &[0, 1]),
        ("edge", &[1, 2]),
        ("edge", &[5, 6]),
    ]);
    let plain = evaluate(&p, &input, &EvalOptions::default()).unwrap();
    let reordered = evaluate(
        &p,
        &input,
        &EvalOptions {
            reorder_joins: true,
            ..EvalOptions::default()
        },
    )
    .unwrap();
    assert_eq!(plain.database.dump(), reordered.database.dump());
}

//! Regularity for linear chain grammars and the constructive direction of
//! Theorem 3.3.
//!
//! Theorem 3.3: a binary chain program with an existential query (`p[nd]` or
//! `p[dn]`) has an equivalent **monadic** chain program iff the language of
//! its grammar is regular — hence arity reduction is undecidable. Regularity
//! of a CFG is itself undecidable, but the classical decidable subclass of
//! *linear* (left- or right-linear) grammars covers most practical chain
//! programs; for those this module builds an NFA, determinizes and
//! minimizes it, and synthesizes the monadic program whose unary predicates
//! are the DFA states.

use std::collections::BTreeMap;

use datalog_ast::{Atom, PredRef, Program, Query, Rule, Symbol, Term};

use crate::automata::{Dfa, Nfa};
use crate::chain::{is_chain_program, program_to_grammar, Cfg, GSym};
use crate::GrammarError;

/// Detected linearity of a grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linearity {
    /// Every production is right-linear (`A → w B` or `A → w`, `w`
    /// terminal-only).
    Right,
    /// Every production is left-linear (`A → B w` or `A → w`).
    Left,
}

/// Classify the grammar's linearity, if any. A grammar that is both (no
/// production uses a nonterminal except trivially) reports `Right`.
pub fn linearity(cfg: &Cfg) -> Option<Linearity> {
    let right = cfg
        .productions
        .iter()
        .all(|p| p.rhs.iter().rev().skip(1).all(|g| g.is_terminal()));
    if right {
        return Some(Linearity::Right);
    }
    let left = cfg
        .productions
        .iter()
        .all(|p| p.rhs.iter().skip(1).all(|g| g.is_terminal()));
    left.then_some(Linearity::Left)
}

/// Eliminate unit productions (`A → B`) by closure, so the NFA construction
/// needs no ε-transitions.
fn eliminate_units(cfg: &Cfg) -> Cfg {
    use std::collections::BTreeSet;
    let nts: Vec<Symbol> = cfg.nonterminals().into_iter().collect();
    // unit_reach[a] = all B with A ⇒* B via unit productions (incl. A).
    let mut unit_reach: BTreeMap<Symbol, BTreeSet<Symbol>> =
        nts.iter().map(|&n| (n, BTreeSet::from([n]))).collect();
    loop {
        let mut changed = false;
        for p in &cfg.productions {
            if let [GSym::N(b)] = p.rhs.as_slice() {
                let b = *b;
                for &a in &nts {
                    if unit_reach[&a].contains(&p.lhs) {
                        let targets: Vec<Symbol> =
                            unit_reach.get(&b).into_iter().flatten().copied().collect();
                        let entry = unit_reach.get_mut(&a).expect("initialized");
                        for t in targets {
                            changed |= entry.insert(t);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut productions = Vec::new();
    for &a in &nts {
        for &b in &unit_reach[&a] {
            for p in cfg.productions_for(b) {
                if matches!(p.rhs.as_slice(), [GSym::N(_)]) {
                    continue;
                }
                productions.push(crate::chain::Production {
                    lhs: a,
                    rhs: p.rhs.clone(),
                });
            }
        }
    }
    productions.sort();
    productions.dedup();
    Cfg {
        start: cfg.start,
        productions,
    }
}

/// Build an NFA for a right-linear, unit-free grammar.
fn right_linear_nfa(cfg: &Cfg) -> Nfa {
    let nts: Vec<Symbol> = cfg.nonterminals().into_iter().collect();
    let state_of: BTreeMap<Symbol, usize> = nts.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut nfa = Nfa::new(nts.len() + 1);
    let accept = nts.len();
    nfa.start = state_of[&cfg.start];
    nfa.accepting.insert(accept);
    for p in &cfg.productions {
        let (terminals, target) = match p.rhs.last() {
            Some(GSym::N(b)) => (&p.rhs[..p.rhs.len() - 1], state_of[b]),
            _ => (&p.rhs[..], accept),
        };
        debug_assert!(terminals.iter().all(|g| g.is_terminal()));
        let mut cur = state_of[&p.lhs];
        for (i, g) in terminals.iter().enumerate() {
            let GSym::T(t) = g else { unreachable!() };
            let next = if i == terminals.len() - 1 {
                target
            } else {
                nfa.add_state()
            };
            nfa.add_transition(cur, *t, next);
            cur = next;
        }
        // `terminals` is nonempty: ε-free and unit-free.
    }
    nfa
}

/// Build a minimized DFA for a linear chain grammar, or `None` when the
/// grammar is not linear (regularity not certified).
pub fn linear_grammar_dfa(cfg: &Cfg) -> Option<Dfa> {
    let kind = linearity(cfg)?;
    let unit_free = eliminate_units(cfg);
    let dfa = match kind {
        Linearity::Right => right_linear_nfa(&unit_free).determinize().minimized(),
        Linearity::Left => {
            // Reverse every RHS: the reversed grammar is right-linear and
            // generates the reversed language; reverse the automaton back.
            let reversed = Cfg {
                start: unit_free.start,
                productions: unit_free
                    .productions
                    .iter()
                    .map(|p| crate::chain::Production {
                        lhs: p.lhs,
                        rhs: p.rhs.iter().rev().cloned().collect(),
                    })
                    .collect(),
            };
            right_linear_nfa(&reversed)
                .reversed()
                .determinize()
                .minimized()
        }
    };
    Some(dfa)
}

/// Which argument of the binary query survives projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeptArg {
    /// Query form `p[nd]`: keep the first (source) argument.
    First,
    /// Query form `p[dn]`: keep the second (target) argument.
    Second,
}

/// The result of the Theorem 3.3 rewriting.
#[derive(Debug, Clone)]
pub struct MonadicRewrite {
    /// The monadic chain program (unary recursive predicates).
    pub program: Program,
    /// Number of DFA states used (= number of unary predicates).
    pub dfa_states: usize,
}

/// Synthesize a monadic program equivalent to the existential query over a
/// binary chain program (constructive direction of Theorem 3.3), or `None`
/// when the grammar is not linear.
///
/// For `KeptArg::First` the synthesized query `exists_<q>(X)` holds iff
/// some path starting at `X` spells a word of the language; for
/// `KeptArg::Second`, iff some path ending at `X` does.
pub fn monadic_equivalent(
    program: &Program,
    kept: KeptArg,
) -> Result<Option<MonadicRewrite>, GrammarError> {
    if !is_chain_program(program) {
        return Err(GrammarError::NotChain {
            rule: program
                .rules
                .iter()
                .find(|r| !is_chain_program(&Program::new(vec![(*r).clone()])))
                .map(|r| r.to_string())
                .unwrap_or_default(),
        });
    }
    let cfg = program_to_grammar(program)?;
    let Some(dfa) = linear_grammar_dfa(&cfg) else {
        return Ok(None);
    };
    let qname = cfg.start.as_str();
    let state_pred = |s: usize| -> PredRef { PredRef::new(&format!("{qname}_st{s}")) };
    let answer = PredRef::new(&format!("exists_{qname}"));
    let mut rules = Vec::new();
    match kept {
        KeptArg::First => {
            // st_q(X) :- t(X, Y), st_q'(Y)   for δ(q, t) = q'
            // st_q(X) :- t(X, Y)             for δ(q, t) ∈ F
            for ((q, t), q2) in &dfa.trans {
                let edge = Atom::new(
                    PredRef {
                        name: *t,
                        adornment: None,
                    },
                    vec![Term::var("X"), Term::var("Y")],
                );
                rules.push(Rule::new(
                    Atom::new(state_pred(*q), vec![Term::var("X")]),
                    vec![
                        edge.clone(),
                        Atom::new(state_pred(*q2), vec![Term::var("Y")]),
                    ],
                ));
                if dfa.accepting.contains(q2) {
                    rules.push(Rule::new(
                        Atom::new(state_pred(*q), vec![Term::var("X")]),
                        vec![edge],
                    ));
                }
            }
            rules.push(Rule::new(
                Atom::new(answer.clone(), vec![Term::var("X")]),
                vec![Atom::new(state_pred(dfa.start), vec![Term::var("X")])],
            ));
        }
        KeptArg::Second => {
            // st_q(Y) :- t(X, Y)             for δ(start, t) = q
            // st_q(Y) :- st_q'(X), t(X, Y)   for δ(q', t) = q
            for ((q, t), q2) in &dfa.trans {
                let edge = Atom::new(
                    PredRef {
                        name: *t,
                        adornment: None,
                    },
                    vec![Term::var("X"), Term::var("Y")],
                );
                if *q == dfa.start {
                    rules.push(Rule::new(
                        Atom::new(state_pred(*q2), vec![Term::var("Y")]),
                        vec![edge.clone()],
                    ));
                }
                rules.push(Rule::new(
                    Atom::new(state_pred(*q2), vec![Term::var("Y")]),
                    vec![Atom::new(state_pred(*q), vec![Term::var("X")]), edge],
                ));
            }
            for q in &dfa.accepting {
                rules.push(Rule::new(
                    Atom::new(answer.clone(), vec![Term::var("X")]),
                    vec![Atom::new(state_pred(*q), vec![Term::var("X")])],
                ));
            }
        }
    }
    let mut out = Program::new(rules);
    out.query = Some(Query::new(Atom::new(answer, vec![Term::var("X")])));
    Ok(Some(MonadicRewrite {
        program: out,
        dfa_states: dfa.states,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_engine::{query_answers, EvalOptions, FactSet};

    fn program(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    const RIGHT_TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                            a(X, Y) :- p(X, Y).\n\
                            ?- a(X, Y).";
    const LEFT_TC: &str = "a(X, Y) :- a(X, Z), p(Z, Y).\n\
                           a(X, Y) :- p(X, Y).\n\
                           ?- a(X, Y).";
    const PALINDROME: &str = "s(X, Y) :- up(X, A), s(A, B), dn(B, Y).\n\
                              s(X, Y) :- up(X, A), flat(A, B), dn(B, Y).\n\
                              ?- s(X, Y).";

    #[test]
    fn linearity_classification() {
        let right = program_to_grammar(&program(RIGHT_TC)).unwrap();
        assert_eq!(linearity(&right), Some(Linearity::Right));
        let left = program_to_grammar(&program(LEFT_TC)).unwrap();
        assert_eq!(linearity(&left), Some(Linearity::Left));
        let pal = program_to_grammar(&program(PALINDROME)).unwrap();
        assert_eq!(linearity(&pal), None);
    }

    #[test]
    fn dfa_for_tc_recognizes_p_plus() {
        let g = program_to_grammar(&program(RIGHT_TC)).unwrap();
        let dfa = linear_grammar_dfa(&g).unwrap();
        let p = Symbol::intern("p");
        assert!(dfa.accepts(&[p]));
        assert!(dfa.accepts(&[p, p, p]));
        assert!(!dfa.accepts(&[]));
        // Minimal DFA for p+ has 2 states.
        assert_eq!(dfa.states, 2);
    }

    #[test]
    fn left_linear_dfa_matches_right_linear_dfa_for_tc() {
        // Both TCs generate p+, so their DFAs are equivalent.
        let dr = linear_grammar_dfa(&program_to_grammar(&program(RIGHT_TC)).unwrap()).unwrap();
        let dl = linear_grammar_dfa(&program_to_grammar(&program(LEFT_TC)).unwrap()).unwrap();
        assert!(dr.equivalent(&dl));
    }

    #[test]
    fn unit_productions_are_handled() {
        let p = program(
            "a(X, Y) :- b(X, Y).\n\
             b(X, Y) :- p(X, Z), b(Z, Y).\n\
             b(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let g = program_to_grammar(&p).unwrap();
        let dfa = linear_grammar_dfa(&g).unwrap();
        let sym_p = Symbol::intern("p");
        assert!(dfa.accepts(&[sym_p]));
        assert!(dfa.accepts(&[sym_p, sym_p]));
    }

    fn two_chain_edb(n: i64) -> FactSet {
        let mut fs = FactSet::new();
        for i in 0..n {
            fs.insert(
                PredRef::new("p"),
                vec![datalog_ast::Value::int(i), datalog_ast::Value::int(i + 1)],
            );
        }
        // A disconnected extra edge relation to exercise dead paths.
        fs.insert(
            PredRef::new("p"),
            vec![datalog_ast::Value::int(100), datalog_ast::Value::int(100)],
        );
        fs
    }

    #[test]
    fn monadic_rewrite_first_arg_matches_original() {
        let original = program(RIGHT_TC);
        let rewrite = monadic_equivalent(&original, KeptArg::First)
            .unwrap()
            .expect("right-linear grammar is regular");
        // Compare: π₁(a) on the original vs exists_a on the monadic program.
        let mut proj = original.clone();
        proj.query = Some(Query::new(datalog_ast::parse_atom("a(X, _)").unwrap()));
        let edb = two_chain_edb(6);
        let (orig, _) = query_answers(&proj, &edb, &EvalOptions::default()).unwrap();
        let (mono, _) = query_answers(&rewrite.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, mono.rows);
        assert!(!mono.rows.is_empty());
        // Every derived predicate of the rewrite is unary.
        for r in &rewrite.program.rules {
            assert_eq!(r.head.arity(), 1);
        }
    }

    #[test]
    fn monadic_rewrite_second_arg_matches_original() {
        let original = program(LEFT_TC);
        let rewrite = monadic_equivalent(&original, KeptArg::Second)
            .unwrap()
            .expect("left-linear grammar is regular");
        let mut proj = original.clone();
        proj.query = Some(Query::new(datalog_ast::parse_atom("a(_, Y)").unwrap()));
        let edb = two_chain_edb(6);
        let (orig, _) = query_answers(&proj, &edb, &EvalOptions::default()).unwrap();
        let (mono, _) = query_answers(&rewrite.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, mono.rows);
    }

    #[test]
    fn palindrome_grammar_is_not_certified_regular() {
        let p = program(PALINDROME);
        assert!(monadic_equivalent(&p, KeptArg::First).unwrap().is_none());
    }

    #[test]
    fn non_chain_program_is_an_error() {
        let p = program("a(X, Y) :- p(X, Y, Z).\n?- a(X, Y).");
        assert!(monadic_equivalent(&p, KeptArg::First).is_err());
    }

    #[test]
    fn multi_terminal_right_linear_rule() {
        // a -> up dn a | up dn : language (up dn)+.
        let p = program(
            "a(X, Y) :- up(X, W), dn(W, Z), a(Z, Y).\n\
             a(X, Y) :- up(X, W), dn(W, Y).\n\
             ?- a(X, Y).",
        );
        let rewrite = monadic_equivalent(&p, KeptArg::First).unwrap().unwrap();
        let mut edb = FactSet::new();
        use datalog_ast::Value;
        edb.insert(PredRef::new("up"), vec![Value::int(1), Value::int(2)]);
        edb.insert(PredRef::new("dn"), vec![Value::int(2), Value::int(3)]);
        edb.insert(PredRef::new("up"), vec![Value::int(3), Value::int(4)]);
        let (mono, _) = query_answers(&rewrite.program, &edb, &EvalOptions::default()).unwrap();
        // Only node 1 starts an (up dn)+ path.
        assert_eq!(mono.rows.len(), 1);
        assert!(mono.rows.contains(&vec![Value::int(1)]));
    }
}

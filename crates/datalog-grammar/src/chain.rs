//! Binary chain programs and the program ⇄ grammar correspondence (§1.1).

use std::collections::BTreeSet;

use datalog_ast::{Atom, PredRef, Program, Query, Rule, Symbol, Term, Var};

use crate::GrammarError;

/// A grammar symbol: terminal (base predicate) or nonterminal (derived
/// predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GSym {
    /// Terminal symbol (EDB predicate name).
    T(Symbol),
    /// Nonterminal symbol (IDB predicate name).
    N(Symbol),
}

impl GSym {
    /// The underlying name.
    pub fn name(&self) -> Symbol {
        match self {
            GSym::T(s) | GSym::N(s) => *s,
        }
    }

    /// Whether this is a terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, GSym::T(_))
    }
}

impl std::fmt::Display for GSym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GSym::T(s) => write!(f, "{s}"),
            GSym::N(s) => write!(f, "{}", s.as_str().to_uppercase()),
        }
    }
}

/// A production `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Production {
    /// Left-hand nonterminal.
    pub lhs: Symbol,
    /// Right-hand side (nonempty for chain grammars).
    pub rhs: Vec<GSym>,
}

impl std::fmt::Display for Production {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ->", self.lhs.as_str().to_uppercase())?;
        for s in &self.rhs {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

/// A context-free grammar with a start symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Start symbol (a nonterminal).
    pub start: Symbol,
    /// Productions.
    pub productions: Vec<Production>,
}

impl Cfg {
    /// All nonterminals (LHSs plus any `N` symbols on RHSs).
    pub fn nonterminals(&self) -> BTreeSet<Symbol> {
        let mut s: BTreeSet<Symbol> = self.productions.iter().map(|p| p.lhs).collect();
        for p in &self.productions {
            for g in &p.rhs {
                if let GSym::N(n) = g {
                    s.insert(*n);
                }
            }
        }
        s.insert(self.start);
        s
    }

    /// All terminals.
    pub fn terminals(&self) -> BTreeSet<Symbol> {
        self.productions
            .iter()
            .flat_map(|p| p.rhs.iter())
            .filter_map(|g| match g {
                GSym::T(t) => Some(*t),
                GSym::N(_) => None,
            })
            .collect()
    }

    /// Productions with the given LHS.
    pub fn productions_for(&self, n: Symbol) -> impl Iterator<Item = &Production> + '_ {
        self.productions.iter().filter(move |p| p.lhs == n)
    }

    /// Validate ε-freeness (chain grammars always satisfy this).
    pub fn check_epsilon_free(&self) -> Result<(), GrammarError> {
        for p in &self.productions {
            if p.rhs.is_empty() {
                return Err(GrammarError::EpsilonProduction {
                    nonterminal: p.lhs.as_str(),
                });
            }
        }
        Ok(())
    }

    /// Render one production per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "start: {}", self.start.as_str().to_uppercase());
        for p in &self.productions {
            let _ = writeln!(out, "{p}");
        }
        out
    }
}

/// Check a single rule for binary-chain shape:
/// `p(X, Y) :- q1(X, Z1), ..., qn(Z_{n-1}, Y)` with all predicates binary,
/// the chain variables distinct, and no constants.
fn chain_shape(rule: &Rule) -> bool {
    if rule.head.arity() != 2 || rule.body.is_empty() {
        return false;
    }
    let (hx, hy) = match (&rule.head.terms[0], &rule.head.terms[1]) {
        (Term::Var(a), Term::Var(b)) if a != b => (*a, *b),
        _ => return false,
    };
    let mut expected: Var = hx;
    let mut used: BTreeSet<Var> = BTreeSet::new();
    used.insert(hx);
    for (i, lit) in rule.body.iter().enumerate() {
        if lit.arity() != 2 {
            return false;
        }
        let (x, y) = match (&lit.terms[0], &lit.terms[1]) {
            (Term::Var(a), Term::Var(b)) if a != b => (*a, *b),
            _ => return false,
        };
        if x != expected {
            return false;
        }
        let last = i == rule.body.len() - 1;
        if last {
            if y != hy {
                return false;
            }
        } else {
            // Chain variables must be fresh.
            if y == hy || !used.insert(y) {
                return false;
            }
        }
        expected = y;
    }
    true
}

/// Whether every rule of the program is a binary chain rule.
pub fn is_chain_program(program: &Program) -> bool {
    program.rules.iter().all(chain_shape)
}

/// Drop the arguments of a binary chain program, yielding its CFG
/// (Lemma 4.1's correspondence). The query predicate becomes the start
/// symbol.
pub fn program_to_grammar(program: &Program) -> Result<Cfg, GrammarError> {
    let query = program.query.as_ref().ok_or(GrammarError::NoQuery)?;
    let idb: BTreeSet<Symbol> = program.idb_preds().iter().map(|p| p.name).collect();
    let mut productions = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        if !chain_shape(rule) {
            return Err(GrammarError::NotChain {
                rule: rule.to_string(),
            });
        }
        let rhs = rule
            .body
            .iter()
            .map(|lit| {
                if idb.contains(&lit.pred.name) {
                    GSym::N(lit.pred.name)
                } else {
                    GSym::T(lit.pred.name)
                }
            })
            .collect();
        productions.push(Production {
            lhs: rule.head.pred.name,
            rhs,
        });
    }
    Ok(Cfg {
        start: query.atom.pred.name,
        productions,
    })
}

/// The inverse correspondence: build the binary chain program of a grammar.
/// The query is `?- start(X, Y).`
pub fn grammar_to_program(cfg: &Cfg) -> Program {
    let mut rules = Vec::with_capacity(cfg.productions.len());
    for p in &cfg.productions {
        let n = p.rhs.len();
        // Variables X, C1, ..., C_{n-1}, Y.
        let var_at = |i: usize| -> Term {
            if i == 0 {
                Term::var("X")
            } else if i == n {
                Term::var("Y")
            } else {
                Term::Var(Var::new(&format!("C{i}")))
            }
        };
        let head = Atom::new(
            PredRef {
                name: p.lhs,
                adornment: None,
            },
            vec![Term::var("X"), Term::var("Y")],
        );
        let body = p
            .rhs
            .iter()
            .enumerate()
            .map(|(i, g)| {
                Atom::new(
                    PredRef {
                        name: g.name(),
                        adornment: None,
                    },
                    vec![var_at(i), var_at(i + 1)],
                )
            })
            .collect();
        rules.push(Rule::new(head, body));
    }
    let mut program = Program::new(rules);
    program.query = Some(Query::new(Atom::new(
        PredRef {
            name: cfg.start,
            adornment: None,
        },
        vec![Term::var("X"), Term::var("Y")],
    )));
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    const TC: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                      a(X, Y) :- p(X, Y).\n\
                      ?- a(X, Y).";

    #[test]
    fn tc_is_a_chain_program() {
        let p = parse_program(TC).unwrap().program;
        assert!(is_chain_program(&p));
        let g = program_to_grammar(&p).unwrap();
        assert_eq!(g.productions.len(), 2);
        assert_eq!(g.start, Symbol::intern("a"));
        assert_eq!(g.nonterminals().len(), 1);
        assert_eq!(g.terminals().len(), 1);
        let text = g.to_text();
        assert!(text.contains("A -> p A"));
        assert!(text.contains("A -> p"));
    }

    #[test]
    fn roundtrip_program_grammar_program() {
        let p = parse_program(TC).unwrap().program;
        let g = program_to_grammar(&p).unwrap();
        let p2 = grammar_to_program(&g);
        let g2 = program_to_grammar(&p2).unwrap();
        assert_eq!(g, g2);
        assert!(is_chain_program(&p2));
    }

    #[test]
    fn non_chain_shapes_are_rejected() {
        for src in [
            // Unary predicate.
            "a(X, Y) :- p(X), q(X, Y).\n?- a(X, Y).",
            // Broken chain (Z1 not consumed).
            "a(X, Y) :- p(X, Z), q(W, Y).\n?- a(X, Y).",
            // Constant argument.
            "a(X, Y) :- p(X, 3), q(3, Y).\n?- a(X, Y).",
            // Head variable repeated.
            "a(X, X) :- p(X, X).\n?- a(X, X).",
            // Chain variable reused.
            "a(X, Y) :- p(X, Z), q(Z, Z), r(Z, Y).\n?- a(X, Y).",
        ] {
            let p = parse_program(src).unwrap().program;
            assert!(!is_chain_program(&p), "accepted: {src}");
            assert!(program_to_grammar(&p).is_err());
        }
    }

    #[test]
    fn long_chain_rule() {
        let p = parse_program(
            "w(X, Y) :- up(X, A), flat(A, B), dn(B, Y).\n\
             ?- w(X, Y).",
        )
        .unwrap()
        .program;
        assert!(is_chain_program(&p));
        let g = program_to_grammar(&p).unwrap();
        assert_eq!(g.productions[0].rhs.len(), 3);
        assert!(g.productions[0].rhs.iter().all(|s| s.is_terminal()));
    }

    #[test]
    fn no_query_is_an_error() {
        let p = parse_program("a(X, Y) :- p(X, Y).").unwrap().program;
        assert_eq!(program_to_grammar(&p), Err(GrammarError::NoQuery));
    }
}

//! # datalog-grammar
//!
//! Chain programs and their context-free grammars, as used in §1.1, §3.2
//! (Theorem 3.3) and §4 (Lemma 4.1) of *Optimizing Existential Datalog
//! Queries* (PODS 1988).
//!
//! A *binary chain program* has rules of the form
//! `p(X, Y) :- q1(X, Z1), q2(Z1, Z2), ..., qn(Z_{n-1}, Y)`; dropping the
//! arguments turns each rule into a CFG production `P → Q1 Q2 ... Qn` with
//! IDB predicates as nonterminals, EDB predicates as terminals, and the
//! query predicate as start symbol.
//!
//! This crate implements:
//!
//! * the program ⇄ grammar correspondence ([`chain`]);
//! * bounded enumeration of the language `L(G, q)` and the *extended*
//!   language `L^ex(G, q)` of sentential forms — Lemma 4.1 reduces DB /
//!   query / uniform / uniform-query equivalence of chain programs to
//!   (extended) language equality, which the tests exercise up to a length
//!   bound ([`lang`]);
//! * finite automata (NFA → DFA, minimization, equivalence) and detection
//!   of *linear* grammars, the classical decidable subclass of regular
//!   context-free languages ([`automata`], [`regular`]);
//! * the constructive direction of **Theorem 3.3**: when the grammar of a
//!   binary chain program is (detectably) regular, an equivalent *monadic*
//!   chain program is synthesized from the DFA ([`regular::monadic_equivalent`]).
//!   The negative direction (no monadic program exists when the language is
//!   not regular) is undecidable in general; the tests demonstrate it on
//!   the classical non-regular witness `{ upⁿ flat dnⁿ }`.

pub mod automata;
pub mod chain;
pub mod lang;
pub mod regular;

pub use automata::{Dfa, Nfa};
pub use chain::{grammar_to_program, is_chain_program, program_to_grammar, Cfg, GSym, Production};
pub use lang::{bounded_extended_language, bounded_language, bounded_language_equal};
pub use regular::{linearity, monadic_equivalent, Linearity};

/// Errors for chain-program / grammar conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// The program is not a binary chain program.
    NotChain { rule: String },
    /// The program has no query (needed to pick the start symbol).
    NoQuery,
    /// A production has an empty right-hand side (chain grammars are
    /// ε-free by construction; enumeration requires it).
    EpsilonProduction { nonterminal: String },
    /// The grammar is not linear, so this crate cannot certify regularity.
    NotLinear,
}

impl std::fmt::Display for GrammarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrammarError::NotChain { rule } => write!(f, "not a binary chain rule: {rule}"),
            GrammarError::NoQuery => write!(f, "program has no query"),
            GrammarError::EpsilonProduction { nonterminal } => {
                write!(f, "epsilon production for {nonterminal}")
            }
            GrammarError::NotLinear => write!(f, "grammar is not linear"),
        }
    }
}

impl std::error::Error for GrammarError {}

//! Finite automata over interned symbols: NFA, subset construction,
//! DFA minimization (Moore), and language equivalence.
//!
//! Used by [`crate::regular`] to decide regularity for *linear* chain
//! grammars and to synthesize the monadic programs of Theorem 3.3.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use datalog_ast::Symbol;

/// A nondeterministic finite automaton. States are dense `usize` ids.
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    /// Number of states.
    pub states: usize,
    /// Start state.
    pub start: usize,
    /// Accepting states.
    pub accepting: BTreeSet<usize>,
    /// Transitions `(state, symbol) → {states}`.
    pub trans: BTreeMap<(usize, Symbol), BTreeSet<usize>>,
}

impl Nfa {
    /// Create an NFA with `states` states, start state 0, no transitions.
    pub fn new(states: usize) -> Nfa {
        Nfa {
            states,
            ..Nfa::default()
        }
    }

    /// Add a fresh state, returning its id.
    pub fn add_state(&mut self) -> usize {
        self.states += 1;
        self.states - 1
    }

    /// Add a transition.
    pub fn add_transition(&mut self, from: usize, sym: Symbol, to: usize) {
        self.trans.entry((from, sym)).or_default().insert(to);
    }

    /// The alphabet actually used.
    pub fn alphabet(&self) -> BTreeSet<Symbol> {
        self.trans.keys().map(|(_, s)| *s).collect()
    }

    /// Whether the NFA accepts a word (direct simulation; used in tests).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current: BTreeSet<usize> = BTreeSet::new();
        current.insert(self.start);
        for sym in word {
            let mut next = BTreeSet::new();
            for &s in &current {
                if let Some(ts) = self.trans.get(&(s, *sym)) {
                    next.extend(ts.iter().copied());
                }
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.accepting.contains(s))
    }

    /// Reverse the automaton (accepts the reversal of the language).
    /// Introduces a fresh start state with out-transitions mirroring the
    /// accepting set; the old start becomes the only accepting state.
    pub fn reversed(&self) -> Nfa {
        let mut rev = Nfa::new(self.states + 1);
        let new_start = self.states;
        rev.start = new_start;
        rev.accepting.insert(self.start);
        for ((from, sym), tos) in &self.trans {
            for to in tos {
                rev.add_transition(*to, *sym, *from);
                if self.accepting.contains(to) {
                    rev.add_transition(new_start, *sym, *from);
                }
            }
        }
        // Empty word: if the original start is accepting, the reversal also
        // accepts ε.
        if self.accepting.contains(&self.start) {
            rev.accepting.insert(new_start);
        }
        rev
    }

    /// Subset construction.
    pub fn determinize(&self) -> Dfa {
        let alphabet: Vec<Symbol> = self.alphabet().into_iter().collect();
        let mut subset_ids: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let start_set: BTreeSet<usize> = [self.start].into();
        subset_ids.insert(start_set.clone(), 0);
        subsets.push(start_set);
        queue.push_back(0);

        let mut trans: BTreeMap<(usize, Symbol), usize> = BTreeMap::new();
        while let Some(id) = queue.pop_front() {
            let current = subsets[id].clone();
            for &sym in &alphabet {
                let mut next: BTreeSet<usize> = BTreeSet::new();
                for &s in &current {
                    if let Some(ts) = self.trans.get(&(s, sym)) {
                        next.extend(ts.iter().copied());
                    }
                }
                if next.is_empty() {
                    continue; // partial DFA: missing transition = dead
                }
                let next_id = *subset_ids.entry(next.clone()).or_insert_with(|| {
                    subsets.push(next.clone());
                    queue.push_back(subsets.len() - 1);
                    subsets.len() - 1
                });
                trans.insert((id, sym), next_id);
            }
        }
        let accepting = subsets
            .iter()
            .enumerate()
            .filter_map(|(i, set)| set.iter().any(|s| self.accepting.contains(s)).then_some(i))
            .collect();
        Dfa {
            states: subsets.len(),
            start: 0,
            accepting,
            trans,
            alphabet: alphabet.into_iter().collect(),
        }
    }
}

/// A (partial) deterministic finite automaton: a missing transition is a
/// rejecting sink.
#[derive(Debug, Clone, Default)]
pub struct Dfa {
    /// Number of states.
    pub states: usize,
    /// Start state.
    pub start: usize,
    /// Accepting states.
    pub accepting: BTreeSet<usize>,
    /// Transitions `(state, symbol) → state`.
    pub trans: BTreeMap<(usize, Symbol), usize>,
    /// Alphabet over which equivalence/minimization operate.
    pub alphabet: BTreeSet<Symbol>,
}

impl Dfa {
    /// Whether the DFA accepts a word.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for sym in word {
            match self.trans.get(&(s, *sym)) {
                Some(&t) => s = t,
                None => return false,
            }
        }
        self.accepting.contains(&s)
    }

    /// Completion: add an explicit dead state so every (state, symbol) has a
    /// transition. Needed before Moore minimization and product tests.
    fn completed(&self, alphabet: &BTreeSet<Symbol>) -> Dfa {
        let mut d = self.clone();
        d.alphabet = alphabet.clone();
        let dead = d.states;
        let mut used_dead = false;
        for s in 0..d.states {
            for &a in alphabet {
                d.trans.entry((s, a)).or_insert_with(|| {
                    used_dead = true;
                    dead
                });
            }
        }
        if used_dead {
            d.states += 1;
            for &a in alphabet {
                d.trans.insert((dead, a), dead);
            }
        }
        d
    }

    /// States reachable from the start.
    fn reachable(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([self.start]);
        seen.insert(self.start);
        while let Some(s) = queue.pop_front() {
            for &a in &self.alphabet {
                if let Some(&t) = self.trans.get(&(s, a)) {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// Moore minimization (after completion and reachability trimming).
    pub fn minimized(&self) -> Dfa {
        let complete = self.completed(&self.alphabet);
        let reachable: Vec<usize> = complete.reachable().into_iter().collect();
        let alphabet: Vec<Symbol> = complete.alphabet.iter().copied().collect();
        // Initial partition: accepting vs non-accepting.
        let mut class: BTreeMap<usize, usize> = reachable
            .iter()
            .map(|&s| (s, usize::from(complete.accepting.contains(&s))))
            .collect();
        loop {
            // Signature: (class, class of each successor).
            let mut sig_ids: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut next_class: BTreeMap<usize, usize> = BTreeMap::new();
            for &s in &reachable {
                let sig: Vec<usize> = alphabet
                    .iter()
                    .map(|&a| class[&complete.trans[&(s, a)]])
                    .collect();
                let key = (class[&s], sig);
                let n = sig_ids.len();
                let id = *sig_ids.entry(key).or_insert(n);
                next_class.insert(s, id);
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        let n_classes = class.values().copied().collect::<BTreeSet<_>>().len();
        let mut trans = BTreeMap::new();
        let mut accepting = BTreeSet::new();
        for &s in &reachable {
            let c = class[&s];
            if complete.accepting.contains(&s) {
                accepting.insert(c);
            }
            for &a in &alphabet {
                trans.insert((c, a), class[&complete.trans[&(s, a)]]);
            }
        }
        Dfa {
            states: n_classes,
            start: class[&complete.start],
            accepting,
            trans,
            alphabet: complete.alphabet,
        }
    }

    /// Language equivalence via the product construction: search for a
    /// reachable pair of states with different acceptance.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let alphabet: BTreeSet<Symbol> = self.alphabet.union(&other.alphabet).copied().collect();
        let a = self.completed(&alphabet);
        let b = other.completed(&alphabet);
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::from([(a.start, b.start)]);
        seen.insert((a.start, b.start));
        while let Some((s, t)) = queue.pop_front() {
            if a.accepting.contains(&s) != b.accepting.contains(&t) {
                return false;
            }
            for &sym in &alphabet {
                let pair = (a.trans[&(s, sym)], b.trans[&(t, sym)]);
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    /// NFA for (ab)*a — nondeterministic on purpose.
    fn aba_nfa() -> Nfa {
        let mut n = Nfa::new(2);
        n.add_transition(0, sym("a"), 1);
        n.add_transition(1, sym("b"), 0);
        n.accepting.insert(1);
        n
    }

    #[test]
    fn nfa_accepts() {
        let n = aba_nfa();
        assert!(n.accepts(&[sym("a")]));
        assert!(n.accepts(&[sym("a"), sym("b"), sym("a")]));
        assert!(!n.accepts(&[sym("a"), sym("a")]));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[sym("b")]));
    }

    #[test]
    fn determinize_preserves_language() {
        let n = aba_nfa();
        let d = n.determinize();
        for word in [
            vec![],
            vec![sym("a")],
            vec![sym("b")],
            vec![sym("a"), sym("b")],
            vec![sym("a"), sym("b"), sym("a")],
            vec![sym("a"), sym("a"), sym("b")],
        ] {
            assert_eq!(n.accepts(&word), d.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn minimization_reduces_and_preserves() {
        // A DFA for "contains at least one a", written wastefully with 4
        // states; the minimum has 2.
        let a = sym("a");
        let b = sym("b");
        let mut d = Dfa {
            states: 4,
            start: 0,
            accepting: [2, 3].into(),
            trans: BTreeMap::new(),
            alphabet: [a, b].into(),
        };
        d.trans.insert((0, a), 2);
        d.trans.insert((0, b), 1);
        d.trans.insert((1, a), 3);
        d.trans.insert((1, b), 0);
        d.trans.insert((2, a), 3);
        d.trans.insert((2, b), 2);
        d.trans.insert((3, a), 2);
        d.trans.insert((3, b), 3);
        let m = d.minimized();
        assert_eq!(m.states, 2);
        for word in [vec![], vec![b, b], vec![b, a], vec![a], vec![a, b, a]] {
            assert_eq!(d.accepts(&word), m.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn equivalence_distinguishes() {
        let n1 = aba_nfa().determinize();
        // Same language, built differently: states doubled.
        let mut n2 = Nfa::new(4);
        n2.add_transition(0, sym("a"), 1);
        n2.add_transition(1, sym("b"), 2);
        n2.add_transition(2, sym("a"), 3);
        n2.add_transition(3, sym("b"), 0);
        n2.accepting.insert(1);
        n2.accepting.insert(3);
        let d2 = n2.determinize();
        assert!(n1.equivalent(&d2));
        assert!(n1.minimized().equivalent(&d2.minimized()));
        // Different language: a* .
        let mut n3 = Nfa::new(1);
        n3.add_transition(0, sym("a"), 0);
        n3.accepting.insert(0);
        assert!(!n1.equivalent(&n3.determinize()));
    }

    #[test]
    fn reversal_reverses() {
        let n = aba_nfa(); // (ab)*a
        let r = n.reversed(); // a(ba)*
        assert!(r.accepts(&[sym("a")]));
        assert!(r.accepts(&[sym("a"), sym("b"), sym("a")]));
        assert!(!r.accepts(&[sym("b"), sym("a")]));
        // Reversal twice is the original language.
        let rr = r.reversed().determinize().minimized();
        assert!(rr.equivalent(&n.determinize().minimized()));
    }

    #[test]
    fn minimization_is_idempotent() {
        let d = aba_nfa().determinize();
        let m1 = d.minimized();
        let m2 = m1.minimized();
        assert_eq!(m1.states, m2.states);
        assert!(m1.equivalent(&m2));
    }

    #[test]
    fn equivalence_is_reflexive_and_symmetric() {
        let a = aba_nfa().determinize();
        let mut n = Nfa::new(1);
        n.add_transition(0, sym("a"), 0);
        n.accepting.insert(0);
        let b = n.determinize();
        assert!(a.equivalent(&a));
        assert!(b.equivalent(&b));
        assert_eq!(a.equivalent(&b), b.equivalent(&a));
    }

    #[test]
    fn empty_automaton_rejects_everything() {
        let n = Nfa::new(1);
        assert!(!n.accepts(&[]));
        let d = n.determinize();
        assert!(!d.accepts(&[sym("a")]));
        assert_eq!(d.minimized().accepting.len(), 0);
    }
}

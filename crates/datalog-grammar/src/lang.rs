//! Bounded enumeration of `L(G, q)` and the extended language `L^ex(G, q)`.
//!
//! Lemma 4.1 of the paper relates the four equivalence notions of §4 to
//! (extended) language equality of the corresponding grammars:
//!
//! 1. DB equivalence ⟺ `L(G1, S) = L(G2, S)` for every nonterminal `S`;
//! 2. query equivalence ⟺ `L(G1, Q1) = L(G2, Q2)`;
//! 3. uniform equivalence ⟺ `L^ex(G1, S) = L^ex(G2, S)` for every `S`;
//! 4. uniform *query* equivalence ⟺ `L^ex(G1, Q1) = L^ex(G2, Q2)`.
//!
//! All four language equalities are undecidable for CFGs (hence Lemma 4.2),
//! so we enumerate *bounded* fragments: every string (or sentential form)
//! of length at most `k`. For ε-free grammars — which chain grammars always
//! are — a sentential form never shrinks under expansion, so breadth-first
//! expansion with a length cutoff terminates.

use std::collections::{BTreeSet, VecDeque};

use datalog_ast::Symbol;

use crate::chain::{Cfg, GSym};
use crate::GrammarError;

/// Enumerate all terminal strings of length ≤ `max_len` in `L(G, start)`.
pub fn bounded_language(cfg: &Cfg, max_len: usize) -> Result<BTreeSet<Vec<Symbol>>, GrammarError> {
    let forms = expand(cfg, max_len, false)?;
    Ok(forms
        .into_iter()
        .filter_map(|form| {
            form.iter()
                .map(|g| match g {
                    GSym::T(t) => Some(*t),
                    GSym::N(_) => None,
                })
                .collect::<Option<Vec<Symbol>>>()
        })
        .collect())
}

/// Enumerate all sentential forms (strings over terminals ∪ nonterminals)
/// of length ≤ `max_len` in `L^ex(G, start)`, including the start symbol
/// itself.
pub fn bounded_extended_language(
    cfg: &Cfg,
    max_len: usize,
) -> Result<BTreeSet<Vec<GSym>>, GrammarError> {
    expand(cfg, max_len, true)
}

fn expand(cfg: &Cfg, max_len: usize, any_order: bool) -> Result<BTreeSet<Vec<GSym>>, GrammarError> {
    cfg.check_epsilon_free()?;
    let mut seen: BTreeSet<Vec<GSym>> = BTreeSet::new();
    let mut queue: VecDeque<Vec<GSym>> = VecDeque::new();
    let start = vec![GSym::N(cfg.start)];
    if max_len >= 1 {
        seen.insert(start.clone());
        queue.push_back(start);
    }
    while let Some(form) = queue.pop_front() {
        // For the *terminal* language, expanding the leftmost nonterminal is
        // complete (every string has a leftmost derivation). For `L^ex` —
        // the set of ALL sentential forms — we must expand every
        // nonterminal position: e.g. with S → AB, the form `Ab` has no
        // leftmost derivation but belongs to L^ex.
        let positions: Vec<usize> = if any_order {
            form.iter()
                .enumerate()
                .filter_map(|(i, g)| matches!(g, GSym::N(_)).then_some(i))
                .collect()
        } else {
            form.iter()
                .position(|g| matches!(g, GSym::N(_)))
                .into_iter()
                .collect()
        };
        for pos in positions {
            let GSym::N(nt) = form[pos] else {
                unreachable!()
            };
            for prod in cfg.productions_for(nt) {
                let new_len = form.len() - 1 + prod.rhs.len();
                if new_len > max_len {
                    continue;
                }
                let mut next = Vec::with_capacity(new_len);
                next.extend_from_slice(&form[..pos]);
                next.extend_from_slice(&prod.rhs);
                next.extend_from_slice(&form[pos + 1..]);
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    Ok(seen)
}

/// Compare two grammars' languages up to length `k` (Lemma 4.1 item 2,
/// bounded). Set `extended` for the `L^ex` comparison (items 3/4).
pub fn bounded_language_equal(
    g1: &Cfg,
    g2: &Cfg,
    max_len: usize,
    extended: bool,
) -> Result<bool, GrammarError> {
    if extended {
        // Compare sentential forms with nonterminal identity preserved
        // modulo the start symbol (the query nonterminals may be named
        // differently in the two programs).
        let l1 = normalize_start(bounded_extended_language(g1, max_len)?, g1.start);
        let l2 = normalize_start(bounded_extended_language(g2, max_len)?, g2.start);
        Ok(l1 == l2)
    } else {
        Ok(bounded_language(g1, max_len)? == bounded_language(g2, max_len)?)
    }
}

fn normalize_start(forms: BTreeSet<Vec<GSym>>, start: Symbol) -> BTreeSet<Vec<GSym>> {
    let marker = Symbol::intern("$start");
    forms
        .into_iter()
        .map(|f| {
            f.into_iter()
                .map(|g| match g {
                    GSym::N(n) if n == start => GSym::N(marker),
                    other => other,
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::program_to_grammar;
    use datalog_ast::parse_program;

    fn grammar(src: &str) -> Cfg {
        program_to_grammar(&parse_program(src).unwrap().program).unwrap()
    }

    fn strings(set: &BTreeSet<Vec<Symbol>>) -> BTreeSet<String> {
        set.iter()
            .map(|w| w.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" "))
            .collect()
    }

    #[test]
    fn tc_language_is_p_plus() {
        let g = grammar(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let l = bounded_language(&g, 4).unwrap();
        assert_eq!(
            strings(&l),
            ["p", "p p", "p p p", "p p p p"]
                .into_iter()
                .map(String::from)
                .collect()
        );
    }

    #[test]
    fn extended_language_contains_sentential_forms() {
        let g = grammar(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let lex = bounded_extended_language(&g, 3).unwrap();
        // Contains A, pA, p, ppA, pp, ppp.
        assert_eq!(lex.len(), 6);
        assert!(lex.contains(&vec![GSym::N(Symbol::intern("a"))]));
        assert!(lex.contains(&vec![
            GSym::T(Symbol::intern("p")),
            GSym::N(Symbol::intern("a"))
        ]));
    }

    /// Lemma 4.1 bounded: left- and right-recursive TC generate the same
    /// language (query equivalent) but different extended languages
    /// (NOT uniformly equivalent).
    #[test]
    fn left_and_right_tc_same_language_different_extended() {
        let right = grammar(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let left = grammar(
            "a(X, Y) :- a(X, Z), p(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        assert!(bounded_language_equal(&right, &left, 6, false).unwrap());
        assert!(!bounded_language_equal(&right, &left, 6, true).unwrap());
    }

    #[test]
    fn different_languages_detected() {
        let tc = grammar(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let even = grammar(
            "a(X, Y) :- p(X, Z), p(Z, W), a(W, Y).\n\
             a(X, Y) :- p(X, Z), p(Z, Y).\n\
             ?- a(X, Y).",
        );
        assert!(!bounded_language_equal(&tc, &even, 3, false).unwrap());
        // The even grammar generates only even-length strings.
        let l = bounded_language(&even, 5).unwrap();
        assert!(l.iter().all(|w| w.len() % 2 == 0));
    }

    #[test]
    fn non_regular_updown_language() {
        // S -> up S dn | up flat dn: the classical { upⁿ flat dnⁿ } witness.
        let g = grammar(
            "s(X, Y) :- up(X, A), s(A, B), dn(B, Y).\n\
             s(X, Y) :- up(X, A), flat(A, B), dn(B, Y).\n\
             ?- s(X, Y).",
        );
        let l = bounded_language(&g, 7).unwrap();
        let rendered = strings(&l);
        assert!(rendered.contains("up flat dn"));
        assert!(rendered.contains("up up flat dn dn"));
        assert!(rendered.contains("up up up flat dn dn dn"));
        assert_eq!(l.len(), 3);
    }

    /// L^ex must include forms no leftmost derivation reaches: with
    /// S -> A B, A -> a, B -> b, the form `A b` exists.
    #[test]
    fn extended_language_is_derivation_order_complete() {
        let g = grammar(
            "s(X, Y) :- a(X, Z), b(Z, Y).\n\
             a(X, Y) :- ta(X, Y).\n\
             b(X, Y) :- tb(X, Y).\n\
             ?- s(X, Y).",
        );
        let lex = bounded_extended_language(&g, 3).unwrap();
        let a_then_tb = vec![GSym::N(Symbol::intern("a")), GSym::T(Symbol::intern("tb"))];
        let ta_then_b = vec![GSym::T(Symbol::intern("ta")), GSym::N(Symbol::intern("b"))];
        assert!(lex.contains(&a_then_tb), "non-leftmost form missing");
        assert!(lex.contains(&ta_then_b));
    }

    #[test]
    fn epsilon_production_is_rejected() {
        let g = Cfg {
            start: Symbol::intern("s"),
            productions: vec![crate::chain::Production {
                lhs: Symbol::intern("s"),
                rhs: vec![],
            }],
        };
        assert!(matches!(
            bounded_language(&g, 3),
            Err(GrammarError::EpsilonProduction { .. })
        ));
    }

    #[test]
    fn zero_bound_yields_empty() {
        let g = grammar("a(X, Y) :- p(X, Y).\n?- a(X, Y).");
        assert!(bounded_language(&g, 0).unwrap().is_empty());
    }
}

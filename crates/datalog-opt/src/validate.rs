//! Translation validation of a pipeline run.
//!
//! [`validate`] re-checks an optimization [`Report`] with the independent
//! machinery of `datalog-lint`:
//!
//! * the rewrite phases are verified pairwise between the report's
//!   phase-boundary [`Snapshot`]s (adornment against the Lemma 2.2
//!   recomputation, boolean extraction against the Lemma 3.1 connectivity
//!   argument, projection against a from-scratch Lemma 3.2 recomputation);
//! * the deletion phases are **replayed**: starting from the pre-deletion
//!   snapshot, every recorded `RuleDeleted` event is re-justified against
//!   the program state *at that point* (θ-subsumption witness, Sagiv
//!   frozen-rule test, structural cleanup conditions, or the uniform-query
//!   freeze test backed by a fixed-seed differential), and every
//!   `UnitRuleAdded` event is re-justified as an implied or §5 cover rule.
//!   Replaying sequentially matters: Example 6 deletes its recursive rule
//!   on the strength of a cover rule that is itself deleted later, so no
//!   single final-state check could justify the chain;
//! * the replayed program must coincide with the final snapshot, and the
//!   end-to-end pair (input, final) must survive the bounded differential
//!   oracle.
//!
//! A deletion the checker cannot justify fails validation — and with
//! [`OptimizerConfig::verify`](crate::OptimizerConfig) set, fails the whole
//! [`optimize`](crate::optimize) call with
//! [`OptError::ValidationFailed`](crate::OptError). The fold rewrite
//! (`auto_fold`) sits between the projected and pre-deletion snapshots and
//! is covered by the end-to-end differential only.

use datalog_ast::parse_rule;
use datalog_lint::verify::{
    differential_config, justify_addition, justify_deletion, verify_adornment, verify_components,
    verify_differential, verify_projection, PhaseCheck,
};
use datalog_trace::{Json, PhaseEvent};

use crate::report::Report;

/// The outcome of validating one optimization run.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Every check performed, in pipeline order: one per rewrite phase,
    /// one per replayed deletion/addition, the replay-consistency check,
    /// and the end-to-end differential.
    pub checks: Vec<PhaseCheck>,
}

impl Validation {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&PhaseCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }

    /// One line per check.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.checks {
            let _ = writeln!(
                out,
                "[{}] {}: {}",
                if c.ok { "ok" } else { "FAIL" },
                c.phase,
                c.detail
            );
        }
        out
    }

    /// JSON object for `xdl verify-opt --json`.
    pub fn to_json(&self) -> Json {
        Json::obj().with("ok", self.ok()).with(
            "checks",
            Json::Arr(self.checks.iter().map(|c| c.to_json()).collect()),
        )
    }
}

/// Validate a pipeline run from its report. Requires the report to carry
/// snapshots (every [`optimize`](crate::optimize) run records them).
pub fn validate(report: &Report) -> Validation {
    let mut checks = Vec::new();
    let Some(input) = report.snapshot_at("input") else {
        return Validation {
            checks: vec![PhaseCheck::fail(
                "replay",
                "report carries no input snapshot: nothing to validate against",
            )],
        };
    };

    // Rewrite phases, pairwise between boundaries.
    let mut prev = input;
    if let Some(s) = report.snapshot_at("adorned") {
        checks.push(verify_adornment(&prev.program, &s.program));
        prev = s;
    }
    if let Some(s) = report.snapshot_at("components") {
        checks.push(verify_components(&prev.program, &s.program));
        prev = s;
    }
    if let Some(s) = report.snapshot_at("projected") {
        checks.push(verify_projection(&prev.program, &s.program));
    }

    // Deletion replay from the pre-deletion snapshot.
    if let Some(start) = report.snapshot_at("deletions") {
        let derived = start.program.idb_preds();
        let mut current = start.program.clone();
        for action in &report.actions[start.at_action..] {
            match &action.event {
                PhaseEvent::RuleDeleted { rule, condition } => {
                    let Some(idx) = current.rules.iter().position(|r| r.to_string() == *rule)
                    else {
                        checks.push(PhaseCheck::fail(
                            "deletion",
                            format!("deleted rule `{rule}` is not present at its replay point"),
                        ));
                        continue;
                    };
                    match justify_deletion(&current, idx, &derived) {
                        Ok(witness) => checks.push(PhaseCheck::pass(
                            "deletion",
                            format!("`{rule}` — {witness}"),
                        )),
                        Err(e) => checks.push(PhaseCheck::fail(
                            "deletion",
                            format!("`{rule}` (optimizer claimed: {condition}) — {e}"),
                        )),
                    }
                    // Remove even on failure so the rest of the replay stays
                    // aligned with what the optimizer actually did.
                    current = current.without_rule(idx);
                }
                PhaseEvent::UnitRuleAdded { rule } => match parse_rule(rule) {
                    Ok(r) => {
                        match justify_addition(&current, &r) {
                            Ok(witness) => checks.push(PhaseCheck::pass(
                                "unit-rule",
                                format!("`{rule}` — {witness}"),
                            )),
                            Err(e) => checks.push(PhaseCheck::fail("unit-rule", e)),
                        }
                        current.rules.push(r);
                    }
                    Err(e) => checks.push(PhaseCheck::fail(
                        "unit-rule",
                        format!("added rule `{rule}` does not parse: {}", e.message),
                    )),
                },
                _ => {}
            }
        }
        if let Some(fin) = report.snapshot_at("final") {
            let mut replayed: Vec<String> = current.rules.iter().map(|r| r.to_string()).collect();
            let mut actual: Vec<String> = fin.program.rules.iter().map(|r| r.to_string()).collect();
            replayed.sort();
            actual.sort();
            if replayed == actual {
                checks.push(PhaseCheck::pass(
                    "replay",
                    format!(
                        "replaying {} event(s) reproduces the final {}-rule program",
                        report.actions.len() - start.at_action,
                        actual.len()
                    ),
                ));
            } else {
                checks.push(PhaseCheck::fail(
                    "replay",
                    format!(
                        "replayed program disagrees with the final snapshot:\n\
                         replayed: {replayed:?}\nfinal: {actual:?}"
                    ),
                ));
            }
        }
    }

    // End-to-end bounded differential oracle.
    if let Some(fin) = report.snapshot_at("final") {
        if input.program.query.is_some() && !input.program.has_negation() {
            checks.push(verify_differential(
                &input.program,
                &fin.program,
                &differential_config(),
            ));
        }
    }

    // Bounds replay: if the run recorded a size-bound verdict (prepared
    // forms do), recompute the analysis from the final snapshot and demand
    // the recorded classification, query-predicate bound, and analyzed
    // predicate count all match. A drifted verdict means admission control
    // is keying on stale analysis.
    for action in &report.actions {
        let PhaseEvent::BoundsAnalyzed {
            pred,
            class,
            bound,
            preds,
        } = &action.event
        else {
            continue;
        };
        let Some(fin) = report.snapshot_at("final") else {
            checks.push(PhaseCheck::fail(
                "bounds",
                "report records a bounds verdict but carries no final snapshot",
            ));
            continue;
        };
        match datalog_lint::bounds::analyze(&fin.program) {
            Ok(re) => {
                let re_class = re.worst_class();
                let re_bound = fin
                    .program
                    .query
                    .as_ref()
                    .and_then(|q| re.preds.get(&q.atom.pred))
                    .map(|pb| pb.count.render())
                    .unwrap_or_else(|| "0".to_string());
                let re_preds = re.idb.len();
                if re_class == *class && re_bound == *bound && re_preds == *preds {
                    checks.push(PhaseCheck::pass(
                        "bounds",
                        format!("recomputed verdict for {pred} matches: {class}, count <= {bound}"),
                    ));
                } else {
                    checks.push(PhaseCheck::fail(
                        "bounds",
                        format!(
                            "recorded verdict for {pred} ({class}, count <= {bound}, \
                             {preds} preds) disagrees with recomputation \
                             ({re_class}, count <= {re_bound}, {re_preds} preds)"
                        ),
                    ));
                }
            }
            Err(e) => checks.push(PhaseCheck::fail(
                "bounds",
                format!("recomputing bounds on the final snapshot failed: {e}"),
            )),
        }
    }

    Validation { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{optimize, OptimizerConfig};
    use crate::report::{EquivalenceLevel, Phase};
    use datalog_ast::parse_program;
    use datalog_ast::Program;

    fn program(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    #[test]
    fn flagship_run_validates_end_to_end() {
        let p = program(
            "query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
        );
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        let v = validate(&out.report);
        assert!(v.ok(), "{}", v.to_text());
        // The run had rewrite phases, deletions, a replay check and the
        // differential.
        assert!(v.checks.iter().any(|c| c.phase == "projection"));
        assert!(v.checks.iter().any(|c| c.phase == "deletion"));
        assert!(v.checks.iter().any(|c| c.phase == "replay"));
        assert!(v.checks.iter().any(|c| c.phase == "differential"));
    }

    #[test]
    fn example_6_cover_chain_replays() {
        // Left-recursive TC: the recursive rule's deletion is justified by
        // a cover rule that is itself deleted afterwards — only the
        // sequential replay can validate this chain.
        let p = program(
            "a(X, Y) :- a(X, Z), p(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        );
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        assert_eq!(out.program.rules.len(), 1);
        let v = validate(&out.report);
        assert!(v.ok(), "{}", v.to_text());
        assert!(
            v.checks.iter().any(|c| c.phase == "unit-rule"),
            "{}",
            v.to_text()
        );
    }

    #[test]
    fn tampered_deletion_event_fails_validation() {
        let p = program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Z), t(Z, Y).\n\
             ?- t(X, Y).",
        );
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        let mut report = out.report.clone();
        // Forge an unjustifiable deletion of the exit rule.
        let victim = report
            .snapshot_at("final")
            .unwrap()
            .program
            .rules
            .iter()
            .find(|r| r.body.len() == 1)
            .unwrap()
            .to_string();
        report.record_event(
            Phase::UqeDeletion,
            EquivalenceLevel::UniformQuery,
            "forged",
            datalog_trace::PhaseEvent::RuleDeleted {
                rule: victim,
                condition: "forged event".into(),
            },
        );
        let v = validate(&report);
        assert!(!v.ok());
        assert!(
            v.failures().iter().any(|c| c.phase == "deletion"),
            "{}",
            v.to_text()
        );
    }

    #[test]
    fn prepared_bounds_verdict_replays_and_tampering_fails() {
        use crate::prepare::prepare;
        use datalog_ast::{Adornment, PredRef};
        let p = program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let prep = prepare(
            &p.rules,
            &PredRef::new("a"),
            &Adornment::parse("nn").unwrap(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let v = validate(&prep.report);
        assert!(v.ok(), "{}", v.to_text());
        assert!(
            v.checks.iter().any(|c| c.phase == "bounds"),
            "{}",
            v.to_text()
        );
        // Tamper with the recorded classification: the recomputation must
        // catch the drift.
        let mut report = prep.report.clone();
        for a in &mut report.actions {
            if let datalog_trace::PhaseEvent::BoundsAnalyzed { class, .. } = &mut a.event {
                *class = datalog_trace::BoundClass::Unbounded;
            }
        }
        let v = validate(&report);
        assert!(
            v.failures().iter().any(|c| c.phase == "bounds"),
            "{}",
            v.to_text()
        );
    }

    #[test]
    fn snapshotless_report_is_rejected() {
        let v = validate(&Report::default());
        assert!(!v.ok());
        assert!(v.to_text().contains("no input snapshot"));
    }

    #[test]
    fn json_export_carries_checks() {
        let p = program("q(X) :- e(X, Y).\n?- q(X).");
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        let v = validate(&out.report);
        assert!(v.ok(), "{}", v.to_text());
        let s = v.to_json().to_string();
        assert!(s.contains("\"ok\":true"), "{s}");
        assert!(s.contains("\"checks\":["), "{s}");
    }
}

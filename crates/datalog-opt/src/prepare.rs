//! Prepared query forms: fingerprinting, canonical optimization, reuse.
//!
//! The paper's central artifact — the adorned, optimized program
//! `P^{e,ad}` (§2–§3) — depends only on the *query form*: the rule set,
//! the query predicate, and the query's existential adornment. Two queries
//! `?- a(X, _)` and `?- a(7, _)` share the form `(P, a, nd)`; the
//! optimized program is the same, only the selection applied at answer
//! extraction differs. That makes the form the natural cache key for a
//! long-running service: optimize once per form, evaluate per query.
//!
//! This module provides the three pieces the `datalog-server` cache needs:
//!
//! * [`fingerprint_rules`] — an order-insensitive 64-bit fingerprint of a
//!   rule set (FNV-1a over sorted rule renderings);
//! * [`prepare`] — run the full pipeline against a *canonical* query atom
//!   of the given adornment and remember how the pipeline reshaped the
//!   query (projection may have dropped the `d` positions, Lemma 3.2);
//! * [`PreparedProgram::instantiate`] — splice a concrete query atom of
//!   the same form into the optimized program, so a cache hit skips the
//!   optimizer entirely and still answers exactly like a cold run.
//!
//! Reuse is sound because every pipeline phase preserves *query
//! equivalence* (§4): the optimized program computes the same relation for
//! the query form on every EDB, and a concrete atom's constants and
//! repeated variables are selections applied on top of that relation at
//! extraction time.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use datalog_ast::{Ad, Adornment, Atom, PredRef, Program, Query, Rule, Term, Var};
use datalog_lint::bounds::BoundsReport;
use datalog_trace::{BoundClass, PhaseEvent};

use crate::pipeline::{optimize, OptimizerConfig};
use crate::report::{EquivalenceLevel, Phase, Report};
use crate::OptError;

/// Order-insensitive FNV-1a fingerprint of a rule set. Renders each rule,
/// sorts the renderings, and hashes the result — so rule order, which does
/// not affect semantics, does not affect the fingerprint either.
pub fn fingerprint_rules(rules: &[Rule]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut texts: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
    texts.sort();
    let mut h = OFFSET;
    for t in &texts {
        for b in t.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // Separator so rule boundaries matter.
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// How the pipeline reshaped the query atom, i.e. how to splice a concrete
/// atom into the optimized program on a cache hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryShape {
    /// The optimized query atom kept the original arity: copy the concrete
    /// atom's terms through unchanged.
    Full,
    /// Projection dropped the `d` positions (§3.2): keep only the terms at
    /// these (original) positions, in order.
    Projected(Vec<usize>),
}

/// A fully optimized program for one query form, plus everything needed to
/// reuse and invalidate it.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    /// The optimized program, with the canonical query still in place.
    pub program: Program,
    /// The optimizer's phase-by-phase report for the canonical run.
    pub report: Report,
    /// The form's adornment (over the *original* query arity).
    pub adornment: Adornment,
    /// How to rebuild the query atom for a concrete query of this form.
    pub shape: QueryShape,
    /// Base (unadorned) EDB predicates the optimized query reads —
    /// transitively, via [`Program::reachable_from_query`]. An ingested
    /// fact outside this set cannot change this form's answers.
    pub support: BTreeSet<PredRef>,
    /// Static derivation bounds of the *optimized* program: per-predicate
    /// symbolic upper bounds on derived-fact counts as polynomials in EDB
    /// cardinalities. Serving layers evaluate these against live
    /// cardinalities for bound-aware admission.
    pub bounds: BoundsReport,
    /// Worst recursion classification across the optimized program's IDB
    /// predicates — the form-level verdict admission control keys on.
    pub bound_class: BoundClass,
    /// Join-reorder cost hints evaluated at the nominal cold-start
    /// cardinality ([`datalog_lint::bounds::DEFAULT_CARD`]), keyed by
    /// rendered predicate. Cheap static defaults for callers without live
    /// statistics; the server re-evaluates against real cardinalities.
    pub static_hints: Arc<BTreeMap<String, u64>>,
}

/// The canonical query atom of a form: fresh named variables `Qc<i>` at
/// the `n` positions, fresh wildcards at the `d` positions. Optimizing
/// against this atom is exactly as general as the form itself.
pub fn canonical_query_atom(pred: &PredRef, adornment: &Adornment) -> Atom {
    let terms = adornment
        .0
        .iter()
        .enumerate()
        .map(|(i, ad)| match ad {
            Ad::N => Term::var(&format!("Qc{i}")),
            Ad::D => Term::Var(Var::fresh_wildcard()),
        })
        .collect();
    Atom::new(pred.base(), terms)
}

/// Base EDB predicates the program's query transitively reads. Adornment
/// is stripped so the set can be intersected with ingestion-side predicate
/// names (facts are always stored under base predicates).
pub fn edb_support(program: &Program) -> BTreeSet<PredRef> {
    let reachable = program.reachable_from_query();
    program
        .edb_preds()
        .iter()
        .filter(|p| reachable.contains(*p))
        .map(|p| p.base())
        .collect()
}

/// Optimize a rule set for one query form. The concrete query that
/// triggered preparation is *not* consulted beyond its predicate and
/// adornment — the result serves every atom of the form.
pub fn prepare(
    rules: &[Rule],
    pred: &PredRef,
    adornment: &Adornment,
    cfg: &OptimizerConfig,
) -> Result<PreparedProgram, OptError> {
    let canonical = canonical_query_atom(pred, adornment);
    let input = Program::with_query(rules.to_vec(), Query::new(canonical));
    let mut out = optimize(&input, cfg)?;
    let bounds = datalog_lint::bounds::analyze(&out.program)
        .map_err(|e| OptError::ValidationFailed(format!("bounds analysis: {e}")))?;
    let bound_class = bounds.worst_class();
    let static_hints = Arc::new(bounds.cost_hints(&bounds.default_cards()));
    let query_pred = out
        .program
        .query
        .as_ref()
        .map(|q| q.atom.pred.clone())
        .unwrap_or_else(|| pred.clone());
    let query_bound = bounds
        .preds
        .get(&query_pred)
        .map(|pb| pb.count.render())
        .unwrap_or_else(|| "0".to_string());
    out.report.record_event(
        Phase::Bounds,
        EquivalenceLevel::Uniform,
        format!(
            "bounds: query form {query_pred} classified {bound_class}, count <= {query_bound} \
             ({} derived predicates analyzed)",
            bounds.idb.len()
        ),
        PhaseEvent::BoundsAnalyzed {
            pred: query_pred.to_string(),
            class: bound_class,
            bound: query_bound,
            preds: bounds.idb.len(),
        },
    );
    let opt_arity = out
        .program
        .query
        .as_ref()
        .map_or(adornment.len(), |q| q.atom.arity());
    let shape = if opt_arity == adornment.len() {
        QueryShape::Full
    } else {
        // After projection the optimized atom holds exactly the `n`
        // positions (Lemma 3.2); anything else would mean the pipeline
        // produced a query shape this module does not understand.
        debug_assert_eq!(opt_arity, adornment.needed_count());
        QueryShape::Projected(adornment.needed_positions())
    };
    let support = edb_support(&out.program);
    Ok(PreparedProgram {
        program: out.program,
        report: out.report,
        adornment: adornment.clone(),
        shape,
        support,
        bounds,
        bound_class,
        static_hints,
    })
}

impl PreparedProgram {
    /// Splice a concrete query atom of this form into the optimized
    /// program. Returns `None` when the atom's arity does not match the
    /// form (the caller keyed the cache wrongly).
    ///
    /// The resulting program is ready for `query_answers_full`: constants
    /// and repeated variables in `atom` become selections at answer
    /// extraction, exactly as in a cold run.
    pub fn instantiate(&self, atom: &Atom) -> Option<Program> {
        let spliced = self.instantiate_atom(atom)?;
        let mut program = self.program.clone();
        program.query = Some(Query::new(spliced));
        Some(program)
    }

    /// Reshape a concrete query atom of this form into the optimized
    /// query's predicate and shape — the atom [`instantiate`] would put in
    /// the program, without cloning the program. Serving paths that keep
    /// the form's evaluation resident (the optimized program is
    /// query-atom-independent) extract answers by matching this atom
    /// against the resident query-predicate relation.
    ///
    /// Returns `None` when the atom's arity does not match the form.
    ///
    /// [`instantiate`]: PreparedProgram::instantiate
    pub fn instantiate_atom(&self, atom: &Atom) -> Option<Atom> {
        if atom.arity() != self.adornment.len() {
            return None;
        }
        let opt_query = self.program.query.as_ref()?;
        let terms: Vec<Term> = match &self.shape {
            QueryShape::Full => atom.terms.clone(),
            QueryShape::Projected(keep) => {
                let mut kept: Vec<Term> = keep.iter().map(|&i| atom.terms[i]).collect();
                if kept.len() != opt_query.atom.arity() {
                    return None;
                }
                // Replace any wildcard that survived (an explicitly adorned
                // query may name a `d` position `n`) with a fresh one so
                // instantiations never share wildcard identities.
                for t in &mut kept {
                    if t.as_var().is_some_and(|v| v.is_wildcard()) {
                        *t = Term::Var(Var::fresh_wildcard());
                    }
                }
                kept
            }
        };
        Some(Atom::new(opt_query.atom.pred.clone(), terms))
    }

    /// Whether an update to (base) predicate `pred` can change this form's
    /// answers.
    pub fn depends_on(&self, pred: &PredRef) -> bool {
        self.support.contains(&pred.base())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_ast::Value;
    use datalog_engine::{query_answers, EvalOptions, FactSet};

    fn chain(n: i64) -> FactSet {
        let mut fs = FactSet::new();
        for i in 0..n {
            fs.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
        }
        fs
    }

    #[test]
    fn fingerprint_ignores_rule_order_but_not_content() {
        let a = parse_program("a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).")
            .unwrap()
            .program;
        let b = parse_program("a(X, Y) :- p(X, Y).\na(X, Y) :- p(X, Z), a(Z, Y).")
            .unwrap()
            .program;
        let c = parse_program("a(X, Y) :- q(X, Y).").unwrap().program;
        assert_eq!(fingerprint_rules(&a.rules), fingerprint_rules(&b.rules));
        assert_ne!(fingerprint_rules(&a.rules), fingerprint_rules(&c.rules));
        assert_ne!(fingerprint_rules(&a.rules), fingerprint_rules(&[]));
    }

    #[test]
    fn prepared_projected_form_answers_like_cold_run() {
        let src = "a(X, Y) :- a(X, Z), p(Z, Y).\na(X, Y) :- p(X, Y).\n?- a(X, _).";
        let cold = parse_program(src).unwrap().program;
        let edb = chain(6);
        let cold_out = optimize(&cold, &OptimizerConfig::default()).unwrap();
        let (cold_ans, _) =
            query_answers(&cold_out.program, &edb, &EvalOptions::default()).unwrap();

        let ad = Adornment::parse("nd").unwrap();
        let prep = prepare(
            &cold.rules,
            &PredRef::new("a"),
            &ad,
            &OptimizerConfig::default(),
        )
        .unwrap();
        assert_eq!(prep.shape, QueryShape::Projected(vec![0]));
        assert!(prep.support.contains(&PredRef::new("p")));
        assert!(!prep.depends_on(&PredRef::new("q")));

        let warm = prep
            .instantiate(&cold.query.as_ref().unwrap().atom)
            .unwrap();
        let (warm_ans, _) = query_answers(&warm, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(warm_ans, cold_ans);
    }

    #[test]
    fn instantiate_applies_constant_selection() {
        let src = "a(X, Y) :- a(X, Z), p(Z, Y).\na(X, Y) :- p(X, Y).\n?- a(X, _).";
        let p = parse_program(src).unwrap().program;
        let ad = Adornment::parse("nd").unwrap();
        let prep = prepare(
            &p.rules,
            &PredRef::new("a"),
            &ad,
            &OptimizerConfig::default(),
        )
        .unwrap();
        // ?- a(2, _): same form, constant at the needed position.
        let atom = Atom::new(
            PredRef::new("a"),
            vec![Term::int(2), Term::Var(Var::fresh_wildcard())],
        );
        let warm = prep.instantiate(&atom).unwrap();
        let (ans, _) = query_answers(&warm, &chain(6), &EvalOptions::default()).unwrap();
        assert_eq!(ans.columns, Vec::<String>::new());
        assert_eq!(ans.as_bool(), Some(true));

        // Out-of-domain constant: same program, empty selection.
        let atom = Atom::new(
            PredRef::new("a"),
            vec![Term::int(99), Term::Var(Var::fresh_wildcard())],
        );
        let warm = prep.instantiate(&atom).unwrap();
        let (ans, _) = query_answers(&warm, &chain(6), &EvalOptions::default()).unwrap();
        assert_eq!(ans.as_bool(), Some(false));
    }

    #[test]
    fn all_needed_form_keeps_full_arity() {
        let src = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n?- a(X, Y).";
        let p = parse_program(src).unwrap().program;
        let ad = Adornment::parse("nn").unwrap();
        let prep = prepare(
            &p.rules,
            &PredRef::new("a"),
            &ad,
            &OptimizerConfig::default(),
        )
        .unwrap();
        assert_eq!(prep.shape, QueryShape::Full);
        let warm = prep.instantiate(&p.query.as_ref().unwrap().atom).unwrap();
        let (warm_ans, _) = query_answers(&warm, &chain(4), &EvalOptions::default()).unwrap();
        let (cold_ans, _) = query_answers(&p, &chain(4), &EvalOptions::default()).unwrap();
        assert_eq!(warm_ans, cold_ans);
        assert_eq!(warm_ans.len(), 10);
    }

    #[test]
    fn prepare_attaches_bounds_verdict_and_static_hints() {
        let src = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n?- a(X, Y).";
        let p = parse_program(src).unwrap().program;
        let ad = Adornment::parse("nn").unwrap();
        let prep = prepare(
            &p.rules,
            &PredRef::new("a"),
            &ad,
            &OptimizerConfig::default(),
        )
        .unwrap();
        // Linear TC must never be classified unbounded, and the analysis
        // must cover the optimized query predicate.
        assert!(prep.bound_class < BoundClass::Unbounded);
        assert!(!prep.bounds.idb.is_empty());
        let qp = &prep.program.query.as_ref().unwrap().atom.pred;
        assert!(prep.bounds.preds.contains_key(qp), "no bound for {qp}");
        // Static hints carry a finite nominal cost for every analyzed
        // predicate.
        assert!(prep.static_hints.contains_key(&qp.to_string()));
        assert!(prep.static_hints.values().all(|&c| c > 0));
        // The verdict was recorded as a typed event the validator replays.
        let ev = prep
            .report
            .events()
            .find(|e| e.kind() == "bounds-analyzed")
            .expect("no bounds-analyzed event recorded");
        if let PhaseEvent::BoundsAnalyzed { class, preds, .. } = ev {
            assert_eq!(*class, prep.bound_class);
            assert_eq!(*preds, prep.bounds.idb.len());
        }
    }

    #[test]
    fn instantiate_rejects_wrong_arity() {
        let src = "a(X, Y) :- p(X, Y).\n?- a(X, _).";
        let p = parse_program(src).unwrap().program;
        let ad = Adornment::parse("nd").unwrap();
        let prep = prepare(
            &p.rules,
            &PredRef::new("a"),
            &ad,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let bad = Atom::new(PredRef::new("a"), vec![Term::var("X")]);
        assert!(prep.instantiate(&bad).is_none());
    }

    #[test]
    fn instantiate_atom_matches_the_spliced_program_query() {
        let src = "a(X, Y) :- a(X, Z), p(Z, Y).\na(X, Y) :- p(X, Y).\n?- a(X, _).";
        let p = parse_program(src).unwrap().program;
        let ad = Adornment::parse("nd").unwrap();
        let prep = prepare(
            &p.rules,
            &PredRef::new("a"),
            &ad,
            &OptimizerConfig::default(),
        )
        .unwrap();
        // Constants survive the reshape, so answer extraction against a
        // resident database sees the same selection the spliced program
        // would apply.
        let atom = Atom::new(
            PredRef::new("a"),
            vec![Term::int(2), Term::Var(Var::fresh_wildcard())],
        );
        let spliced = prep.instantiate_atom(&atom).unwrap();
        let program = prep.instantiate(&atom).unwrap();
        let in_program = &program.query.as_ref().unwrap().atom;
        assert_eq!(spliced.pred, in_program.pred);
        assert_eq!(spliced.arity(), in_program.arity());
        assert_eq!(spliced.terms[0], Term::int(2));
        assert!(prep
            .instantiate_atom(&Atom::new(PredRef::new("a"), vec![Term::var("X")]))
            .is_none());
    }

    #[test]
    fn edb_support_excludes_unreachable_preds() {
        let src = "a(X) :- p(X, Y).\nother(X) :- r(X).\n?- a(X).";
        let p = parse_program(src).unwrap().program;
        let support = edb_support(&p);
        assert!(support.contains(&PredRef::new("p")));
        assert!(!support.contains(&PredRef::new("r")));
    }
}

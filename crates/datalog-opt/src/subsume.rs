//! Rule subsumption — the paper's §6 research direction made concrete:
//! "the problem is to devise techniques to detect subsumption of a rule by
//! other rules".
//!
//! The containment machinery itself (one-way atom matching, CQ
//! homomorphisms, θ-subsumption witnesses) lives in [`datalog_lint::contain`]
//! so the optimizer and the translation validator share one
//! implementation: the validator re-derives a witness for every deletion
//! this pass records, and a drifted second copy of the matcher would make
//! that check vacuous. This module re-exports the checker and keeps the
//! report-producing deletion pass.
//!
//! Rule `r1` **θ-subsumes** `r2` when some substitution `σ` maps `r1`'s
//! head onto `r2`'s head and every literal of `σ(body(r1))` occurs in
//! `body(r2)`. Then every fact `r2` derives (on any database) is derived by
//! `r1` from a subset of the same premises, so deleting `r2` preserves
//! **uniform equivalence** — the strongest level in our hierarchy.
//!
//! This is a purely syntactic test (no evaluation), so the pipeline runs it
//! as a cheap pre-pass before the freeze tests. Sagiv's uniform test would
//! eventually find the same deletions (the frozen body of a subsumed rule
//! lets the subsumer fire), but at the cost of a fixpoint evaluation per
//! candidate. Notably it already captures Example 4 of the paper: in the
//! projected transitive closure, the exit rule `a[nd](X) :- p(X, Z)`
//! θ-subsumes the recursive rule `a[nd](X) :- p(X, Z), a[nd](Z)`.

pub use datalog_lint::contain::{subsumed_indices, subsumes, subsumption_witness};

use datalog_ast::{Program, Rule};

use crate::report::{EquivalenceLevel, Phase, Report};
use datalog_trace::PhaseEvent;

/// Match `pattern` onto `target`, binding only pattern variables. Target
/// terms (variables included) are treated as ground. Shared with the fold
/// machinery, which needs the same one-way discipline; delegates to the
/// lint crate's matcher.
pub(crate) fn match_onto(
    pattern: &datalog_ast::Atom,
    target: &datalog_ast::Atom,
    map: &mut std::collections::BTreeMap<datalog_ast::Var, datalog_ast::Term>,
) -> bool {
    datalog_lint::contain::match_atom_onto(pattern, target, map)
}

/// Delete every rule that is θ-subsumed by another rule of the program.
/// Preserves uniform equivalence.
pub fn delete_subsumed(program: &Program, report: &mut Report) -> Program {
    let mut keep: Vec<bool> = vec![true; program.rules.len()];
    for i in 0..program.rules.len() {
        if !keep[i] {
            continue;
        }
        // Indexing is deliberate: `keep[i]` and `keep[j]` are read and
        // written across both loop levels, which iterator adapters can't
        // borrow-check.
        #[allow(clippy::needless_range_loop)]
        for j in 0..program.rules.len() {
            if i == j || !keep[j] {
                continue;
            }
            if subsumes(&program.rules[i], &program.rules[j]) {
                // Tie-break identical rules (mutual subsumption): keep the
                // first occurrence.
                if subsumes(&program.rules[j], &program.rules[i]) && j < i {
                    continue;
                }
                keep[j] = false;
                report.record_event(
                    Phase::UniformDeletion,
                    EquivalenceLevel::Uniform,
                    format!(
                        "deleted rule (subsumed by `{}`): {}",
                        program.rules[i], program.rules[j]
                    ),
                    PhaseEvent::RuleDeleted {
                        rule: program.rules[j].to_string(),
                        condition: format!("θ-subsumed by `{}`", program.rules[i]),
                    },
                );
            }
        }
    }
    let rules: Vec<Rule> = program
        .rules
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r.clone())
        .collect();
    Program {
        rules,
        query: program.query.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, parse_rule};
    use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};

    fn rule(s: &str) -> Rule {
        parse_rule(s).unwrap()
    }

    #[test]
    fn extra_literal_is_subsumed() {
        // q(X) :- e(X, Y) subsumes q(X) :- e(X, Y), f(Y).
        let g = rule("q(X) :- e(X, Y)");
        let s = rule("q(X) :- e(X, Y), f(Y)");
        assert!(subsumes(&g, &s));
        assert!(!subsumes(&s, &g));
    }

    #[test]
    fn variable_specialization_subsumes() {
        // q(X, Y) :- e(X, Y) subsumes q(X, X) :- e(X, X).
        let g = rule("q(X, Y) :- e(X, Y)");
        let s = rule("q(X, X) :- e(X, X)");
        assert!(subsumes(&g, &s));
        assert!(!subsumes(&s, &g));
    }

    #[test]
    fn constant_specialization_subsumes() {
        let g = rule("q(X) :- e(X, Y)");
        let s = rule("q(X) :- e(X, 3)");
        assert!(subsumes(&g, &s));
        assert!(!subsumes(&s, &g));
    }

    #[test]
    fn different_heads_do_not_subsume() {
        let g = rule("q(X) :- e(X, Y)");
        let s = rule("r(X) :- e(X, Y)");
        assert!(!subsumes(&g, &s));
        // Head argument mismatch.
        let s2 = rule("q(Y) :- e(X, Y)");
        assert!(!subsumes(&g, &s2));
    }

    #[test]
    fn identical_rules_subsume_mutually() {
        let a = rule("q(X) :- e(X, Y)");
        let b = rule("q(U) :- e(U, V)");
        assert!(subsumes(&a, &b));
        assert!(subsumes(&b, &a));
    }

    #[test]
    fn shared_variable_names_are_not_confused() {
        // Same variable names, different roles.
        let g = rule("q(X) :- e(X, Y), f(Y)");
        let s = rule("q(Y) :- e(Y, X), f(X)");
        assert!(subsumes(&g, &s), "alpha-equivalent rules must subsume");
    }

    #[test]
    fn repeated_literal_cases() {
        // A rule can map two body literals onto one.
        let g = rule("q(X) :- e(X, Y), e(X, Z)");
        let s = rule("q(X) :- e(X, Y)");
        assert!(subsumes(&g, &s), "both e-literals map onto the single one");
        // Reverse holds too (subset of body).
        assert!(subsumes(&s, &g));
    }

    #[test]
    fn delegated_witness_is_exposed() {
        // The lint crate's witness comes through the re-export.
        let g = rule("q(X) :- e(X, Y)");
        let s = rule("q(A) :- e(A, 3)");
        let w = subsumption_witness(&g, &s).unwrap();
        assert_eq!(w[&datalog_ast::Var::new("Y")], datalog_ast::Term::int(3));
    }

    #[test]
    fn delete_subsumed_preserves_answers() {
        let p = parse_program(
            "q(X) :- e(X, Y).\n\
             q(X) :- e(X, Y), f(Y).\n\
             q(X) :- e(X, 3).\n\
             q(X) :- r(X).\n\
             q(U) :- r(U).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut rep = Report::default();
        let out = delete_subsumed(&p, &mut rep);
        assert_eq!(out.rules.len(), 2, "{}", out.to_text());
        assert_eq!(rep.deletions(), 3);
        assert_eq!(rep.weakest_level(), EquivalenceLevel::Uniform);
        let w = bounded_equiv_check(&p, &out, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "{w:?}");
    }

    #[test]
    fn mutual_subsumption_keeps_exactly_one() {
        let p = parse_program(
            "q(X) :- r(X).\n\
             q(U) :- r(U).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut rep = Report::default();
        let out = delete_subsumed(&p, &mut rep);
        assert_eq!(out.rules.len(), 1);
        assert_eq!(subsumed_indices(&p), [1usize].into());
    }

    #[test]
    fn recursion_is_not_falsely_subsumed() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        assert!(subsumed_indices(&p).is_empty());
    }
}

//! Static program analysis: the diagnostics a user wants *before* running
//! the optimizer — where the existential opportunities are, which rules
//! look expensive, and what the optimizer would and would not be able to
//! exploit.

use std::collections::BTreeSet;

use datalog_adorn::{adorn, query_adornment};
use datalog_ast::{Program, Var};
use datalog_grammar::{is_chain_program, linearity, program_to_grammar, Linearity};

use crate::subsume::subsumed_indices;

/// One diagnostic finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity/kind tag, e.g. `existential-opportunity`.
    pub kind: FindingKind,
    /// Human-readable message.
    pub message: String,
}

/// Kinds of findings, ordered roughly by interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// The query has existential positions the optimizer can push.
    ExistentialOpportunity,
    /// A rule body contains a cross product (disconnected components).
    CrossProduct,
    /// A rule is θ-subsumed by another rule.
    SubsumedRule,
    /// A predicate is defined but unreachable from the query.
    UnreachablePredicate,
    /// A recursive predicate with no exit rule (provably empty).
    UnproductivePredicate,
    /// The program is a binary chain program (grammar tools apply).
    ChainProgram,
    /// The program uses stratified negation (deletion phases will stand
    /// down).
    UsesNegation,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FindingKind::ExistentialOpportunity => "existential-opportunity",
            FindingKind::CrossProduct => "cross-product",
            FindingKind::SubsumedRule => "subsumed-rule",
            FindingKind::UnreachablePredicate => "unreachable-predicate",
            FindingKind::UnproductivePredicate => "unproductive-predicate",
            FindingKind::ChainProgram => "chain-program",
            FindingKind::UsesNegation => "uses-negation",
        };
        f.write_str(s)
    }
}

/// Analyze a program, returning findings sorted by kind.
pub fn analyze(program: &Program) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();

    // Existential opportunity: query wildcards / d-adornments, and how many
    // argument positions adornment would mark don't-care.
    if let Some(q) = &program.query {
        if let Ok(ad) = query_adornment(q) {
            if ad.has_existential() {
                let mut d_positions = 0usize;
                if let Ok(res) = adorn(program) {
                    for rule in &res.program.rules {
                        for lit in &rule.body {
                            if let Some(a) = &lit.pred.adornment {
                                d_positions += a.existential_positions().len();
                            }
                        }
                    }
                }
                out.push(Finding {
                    kind: FindingKind::ExistentialOpportunity,
                    message: format!(
                        "query adornment {ad}: {} existential argument position(s) \
                         across the adorned rules can be projected away",
                        d_positions
                    ),
                });
            }
        }
    }

    // Cross products: components disconnected from each other (regardless
    // of the head), a classic performance hazard §3.1 turns into booleans.
    for (ri, rule) in program.rules.iter().enumerate() {
        let lits: Vec<_> = rule.body.iter().chain(rule.negative.iter()).collect();
        if lits.len() < 2 {
            continue;
        }
        // Union-find over literals by shared variables.
        let mut comp: Vec<usize> = (0..lits.len()).collect();
        fn find(comp: &mut Vec<usize>, x: usize) -> usize {
            if comp[x] != x {
                let r = find(comp, comp[x]);
                comp[x] = r;
            }
            comp[x]
        }
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                let vi: BTreeSet<Var> = lits[i].var_occurrences().collect();
                if lits[j].var_occurrences().any(|v| vi.contains(&v)) {
                    let (a, b) = (find(&mut comp, i), find(&mut comp, j));
                    if a != b {
                        comp[a] = b;
                    }
                }
            }
        }
        let roots: BTreeSet<usize> = (0..lits.len()).map(|i| find(&mut comp, i)).collect();
        if roots.len() > 1 {
            out.push(Finding {
                kind: FindingKind::CrossProduct,
                message: format!(
                    "rule {ri} joins {} disconnected component(s) (cross product); \
                     the optimizer will fence the existential ones behind booleans: {rule}",
                    roots.len()
                ),
            });
        }
    }

    // Subsumed rules.
    for ri in subsumed_indices(program) {
        out.push(Finding {
            kind: FindingKind::SubsumedRule,
            message: format!(
                "rule {ri} is subsumed by another rule and can be deleted: {}",
                program.rules[ri]
            ),
        });
    }

    // Unreachable predicates.
    if program.query.is_some() {
        let reachable = program.reachable_from_query();
        for p in program.idb_preds() {
            if !reachable.contains(&p) {
                out.push(Finding {
                    kind: FindingKind::UnreachablePredicate,
                    message: format!("predicate {p} is never reachable from the query"),
                });
            }
        }
    }

    // Unproductive predicates (no exit path).
    let derived = program.idb_preds();
    let mut productive: BTreeSet<_> = BTreeSet::new();
    loop {
        let mut changed = false;
        for r in &program.rules {
            if !productive.contains(&r.head.pred)
                && r.body
                    .iter()
                    .all(|a| !derived.contains(&a.pred) || productive.contains(&a.pred))
            {
                productive.insert(r.head.pred.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for p in &derived {
        if !productive.contains(p) {
            out.push(Finding {
                kind: FindingKind::UnproductivePredicate,
                message: format!("predicate {p} has no exit path: it is provably empty"),
            });
        }
    }

    // Chain program / grammar applicability.
    if program.query.is_some() && is_chain_program(program) {
        let note = match program_to_grammar(program).ok().and_then(|g| linearity(&g)) {
            Some(Linearity::Right) => {
                "right-linear grammar: regular; Theorem 3.3 monadic rewrite applies"
            }
            Some(Linearity::Left) => {
                "left-linear grammar: regular; Theorem 3.3 monadic rewrite applies"
            }
            None => "grammar is not linear: regularity undecided (Theorem 3.3 boundary)",
        };
        out.push(Finding {
            kind: FindingKind::ChainProgram,
            message: format!("binary chain program — {note}"),
        });
    }

    if program.has_negation() {
        out.push(Finding {
            kind: FindingKind::UsesNegation,
            message: "program uses stratified negation: freeze/summary deletions are disabled"
                .to_owned(),
        });
    }

    out.sort_by(|a, b| a.kind.cmp(&b.kind).then(a.message.cmp(&b.message)));
    out
}

/// Render findings one per line.
pub fn render(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if findings.is_empty() {
        let _ = writeln!(out, "no findings.");
    }
    for f in findings {
        let _ = writeln!(out, "[{}] {}", f.kind, f.message);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn findings(src: &str) -> Vec<Finding> {
        analyze(&parse_program(src).unwrap().program)
    }

    #[test]
    fn existential_opportunity_detected() {
        let f = findings(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        );
        assert!(f
            .iter()
            .any(|x| x.kind == FindingKind::ExistentialOpportunity));
        // Also a chain program (right-linear).
        assert!(f
            .iter()
            .any(|x| x.kind == FindingKind::ChainProgram && x.message.contains("right-linear")));
    }

    #[test]
    fn cross_product_detected() {
        let f = findings(
            "q(X) :- a(X), big(W).\n\
             ?- q(X).",
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::CrossProduct));
    }

    #[test]
    fn subsumed_and_unreachable_detected() {
        let f = findings(
            "q(X) :- e(X, Y).\n\
             q(X) :- e(X, Y), f(Y).\n\
             island(X) :- e(X, X).\n\
             ?- q(X).",
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::SubsumedRule));
        assert!(f
            .iter()
            .any(|x| x.kind == FindingKind::UnreachablePredicate && x.message.contains("island")));
    }

    #[test]
    fn unproductive_detected() {
        let f = findings(
            "q(X) :- h(X, Y).\n\
             h(X, Y) :- h(X, Z), g(Z, Y).\n\
             ?- q(X).",
        );
        assert!(f
            .iter()
            .any(|x| x.kind == FindingKind::UnproductivePredicate));
    }

    #[test]
    fn negation_noted() {
        let f = findings(
            "q(X) :- s(X), not t(X).\n\
             ?- q(X).",
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::UsesNegation));
    }

    #[test]
    fn clean_program_is_quiet() {
        let f = findings(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        // Chain-program note is informational; nothing else should fire.
        assert!(
            f.iter().all(|x| x.kind == FindingKind::ChainProgram),
            "{f:?}"
        );
        assert!(render(&f).contains("chain-program"));
    }
}

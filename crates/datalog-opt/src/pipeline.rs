//! The end-to-end optimizer pipeline.
//!
//! Order of phases (matching the paper's presentation):
//!
//! 1. **adorn** the program from the query (§2);
//! 2. **extract components** — boolean existential subqueries (§3.1);
//! 3. **push projections** — drop `d` argument positions (§3.2);
//! 4. **delete rules** to a fixpoint, interleaving the summary-based test
//!    (Lemmas 5.1/5.3), Sagiv's uniform test and the (validated) uniform-
//!    query freeze test, plus the cleanup passes (§3.3, §5);
//!
//! Magic-sets rewriting (`datalog-magic`) is orthogonal and composes after
//! this pipeline, as the paper observes.

use std::collections::BTreeSet;

use datalog_ast::Program;

use crate::components::extract_components;
use crate::deletion::{summary_deletion, SummaryConfig};
use crate::projection::push_projections;
use crate::report::{EquivalenceLevel, Phase, Report};
use crate::subsume::delete_subsumed;
use crate::uniform::{freeze_deletion, UniformConfig};
use crate::OptError;
use datalog_trace::PhaseEvent;

/// Pipeline configuration. The default runs everything the paper
/// describes, with randomized validation guarding the UQE freeze test.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// §2 adornment (required by later phases; disable only when feeding an
    /// already-adorned program).
    pub adorn: bool,
    /// §3.1 boolean extraction.
    pub components: bool,
    /// §3.2 projection pushing.
    pub projection: bool,
    /// §5 summary-based deletion.
    pub summary: SummaryConfig,
    /// Enable the summary-deletion phase.
    pub summary_enabled: bool,
    /// Freeze-test deletion (uniform + UQE).
    pub freeze: UniformConfig,
    /// Enable the freeze-test phase.
    pub freeze_enabled: bool,
    /// θ-subsumption pre-pass (syntactic, uniform-equivalence level).
    pub subsumption: bool,
    /// Search for folding opportunities (Example 11's "guess", §6) and
    /// apply the best one before deletions. Off by default: folding adds a
    /// predicate, which only pays off when it unlocks deletions.
    pub auto_fold: bool,
    /// Translation-validate the run before returning: re-check every
    /// rewrite phase and re-justify every deletion with `datalog-lint`'s
    /// independent checkers, failing with
    /// [`OptError::ValidationFailed`](crate::OptError) if any check fails.
    /// Off by default (it re-evaluates the program many times); `xdl
    /// verify-opt` and `xdl serve --verify` switch it on.
    pub verify: bool,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            adorn: true,
            components: true,
            projection: true,
            summary: SummaryConfig::default(),
            summary_enabled: true,
            freeze: UniformConfig::default(),
            freeze_enabled: true,
            subsumption: true,
            auto_fold: false,
            verify: false,
        }
    }
}

impl OptimizerConfig {
    /// Only adornment + rewriting, no deletions (cheap compile time).
    pub fn rewrite_only() -> OptimizerConfig {
        OptimizerConfig {
            summary_enabled: false,
            freeze_enabled: false,
            subsumption: false,
            ..OptimizerConfig::default()
        }
    }

    /// Everything on, including the fold search (Example 9 → Example 11).
    pub fn aggressive() -> OptimizerConfig {
        OptimizerConfig {
            auto_fold: true,
            ..OptimizerConfig::default()
        }
    }
}

/// Result of running the pipeline.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimized program.
    pub program: Program,
    /// What happened, phase by phase.
    pub report: Report,
}

/// Run the full optimizer.
pub fn optimize(program: &Program, cfg: &OptimizerConfig) -> Result<OptimizeOutcome, OptError> {
    program.validate()?;
    let mut report = Report {
        rules_before: program.rules.len(),
        ..Report::default()
    };
    let mut current = program.clone();
    report.snapshot("input", &current);

    // Skip adornment for programs that are already adorned (e.g. the
    // paper's worked examples are given in adorned form).
    let already_adorned = current
        .rules
        .iter()
        .any(|r| r.head.pred.is_adorned() || r.body.iter().any(|a| a.pred.is_adorned()));
    if cfg.adorn && !already_adorned {
        let adorned = datalog_adorn::adorn(&current)?;
        let versions = adorned.version_count();
        if versions > 0 {
            report.record_event(
                Phase::Adorn,
                EquivalenceLevel::Uniform,
                format!(
                    "adorned program: {} adorned predicate version(s), {} rule(s)",
                    versions,
                    adorned.program.rules.len()
                ),
                PhaseEvent::Adorned {
                    versions,
                    rules_after: adorned.program.rules.len(),
                },
            );
            current = adorned.program;
            report.snapshot("adorned", &current);
        }
    }

    if cfg.components {
        let r = extract_components(&current, cfg.projection, &mut report);
        if !r.booleans.is_empty() && r.needs_projection && !cfg.projection {
            // Cannot happen: extract_components only dangles heads when
            // assume_projection is set, which mirrors cfg.projection.
            unreachable!("components dangled a head without projection enabled");
        }
        current = r.program;
        report.snapshot("components", &current);
    }

    if cfg.projection {
        current = push_projections(&current, &mut report)?;
        report.snapshot("projected", &current);
    }

    // The set of semantically-derived predicates — every IDB predicate of
    // the rewritten program, *including* the booleans the components phase
    // generated. Captured after all program-shape-changing rewrites (and
    // re-captured after folding): a stale set would let deletions strand a
    // generated predicate without the undefined-users cleanup noticing.
    let mut derived: BTreeSet<_> = current.idb_preds();

    // Deletion phases loop until jointly stable. The summary and freeze
    // machinery is justified for Horn programs only; with stratified
    // negation (the §6 extension) we conservatively keep just the
    // syntactic θ-subsumption pass, whose soundness argument extends to
    // negated literals directly.
    let negated = current.has_negation();
    if cfg.auto_fold && !negated {
        // At most two rounds of folding: each adds one predicate; further
        // rounds rarely unlock anything and risk bloating the program.
        for _ in 0..2 {
            match crate::fold::apply_best_fold(&current, &derived, &mut report)? {
                Some(folded) => current = folded,
                None => break,
            }
        }
        derived = current.idb_preds();
    }
    if negated && (cfg.summary_enabled || cfg.freeze_enabled) {
        report.record(
            Phase::Cleanup,
            EquivalenceLevel::Uniform,
            "program uses negation: summary/freeze deletions disabled (Horn-only theory)",
        );
    }
    report.snapshot("deletions", &current);
    loop {
        let before = current.rules.len();
        if cfg.subsumption {
            current = delete_subsumed(&current, &mut report);
        }
        if !negated && cfg.summary_enabled && current.query.is_some() {
            current = summary_deletion(&current, &derived, &cfg.summary, &mut report)?;
        }
        if !negated && cfg.freeze_enabled {
            current = freeze_deletion(&current, &derived, &cfg.freeze, &mut report)?;
        }
        if current.rules.len() == before {
            break;
        }
    }

    report.rules_after = current.rules.len();
    report.snapshot("final", &current);

    if cfg.verify {
        let validation = crate::validate::validate(&report);
        if !validation.ok() {
            return Err(OptError::ValidationFailed(
                validation
                    .failures()
                    .iter()
                    .map(|c| format!("[{}] {}", c.phase, c.detail))
                    .collect::<Vec<_>>()
                    .join("\n"),
            ));
        }
        report.record_event(
            Phase::Validation,
            EquivalenceLevel::Uniform,
            format!(
                "translation validation passed: {} check(s)",
                validation.checks.len()
            ),
            PhaseEvent::TranslationValidated {
                checks: validation.checks.len(),
                failures: 0,
            },
        );
    }

    Ok(OptimizeOutcome {
        program: current,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};

    fn run(src: &str) -> OptimizeOutcome {
        let p = parse_program(src).unwrap().program;
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        let w = bounded_equiv_check(&p, &out.program, &EquivCheckConfig::default()).unwrap();
        assert!(
            w.is_none(),
            "pipeline changed answers: {w:?}\n{}",
            out.program.to_text()
        );
        out
    }

    /// The paper's flagship chain (Examples 1 → 3 → 4): right-recursive TC
    /// with an existential query ends as a single non-recursive rule.
    #[test]
    fn flagship_example_1_to_4() {
        let out = run("query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).");
        let text = out.program.to_text();
        // Adornment produced a[nd]; projection made it unary; the uniform
        // test deleted the recursive rule.
        assert!(!out.program.is_recursive(), "{text}");
        assert!(
            text.contains("a[nd](X) :- p(X, Y).") || text.contains("a[nd](X) :- p(X, Z)."),
            "{text}"
        );
        assert_eq!(out.report.rules_before, 3);
        assert!(out.report.rules_after <= 3);
        assert!(out
            .report
            .actions
            .iter()
            .any(|a| a.phase == Phase::UniformDeletion));
    }

    /// Example 5/6: left-recursive TC, existential query. The pipeline
    /// (covers + summaries + UQE) reduces four adorned rules to one.
    #[test]
    fn example_6_full_pipeline() {
        let out = run("a(X, Y) :- a(X, Z), p(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).");
        let text = out.program.to_text();
        assert_eq!(out.program.rules.len(), 1, "{text}");
        assert!(!out.program.is_recursive());
        assert!(text.contains("a[nd](X) :- p(X, Y)."), "{text}");
    }

    /// §1.2's motivating rule: the existential subquery c(W) becomes a
    /// boolean; the program stays recursive but c is fenced off.
    #[test]
    fn motivating_example_gets_boolean() {
        let out = run("q(X, Y) :- a(X, Z), q(Z, Y), c(W).\n\
             q(X, Y) :- b(X, Y).\n\
             ?- q(X, Y).");
        let text = out.program.to_text();
        assert!(text.contains("b1 :- c(_)."), "{text}");
        assert!(out
            .report
            .actions
            .iter()
            .any(|a| a.phase == Phase::Components));
    }

    /// All-needed query: the pipeline must not degrade a plain TC.
    #[test]
    fn plain_tc_survives_unharmed() {
        let out = run("a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).");
        assert_eq!(out.program.rules.len(), 2);
        assert!(out.program.is_recursive());
        assert_eq!(out.report.deletions(), 0);
    }

    /// Rewrite-only config performs no deletions.
    #[test]
    fn rewrite_only_config() {
        let p = parse_program(
            "query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
        )
        .unwrap()
        .program;
        let out = optimize(&p, &OptimizerConfig::rewrite_only()).unwrap();
        // Projection happened, deletion did not: recursive rule intact.
        assert!(out.program.is_recursive());
        assert!(out.program.to_text().contains("a[nd](X)"));
    }

    /// EDB-only query: nothing to do, nothing broken.
    #[test]
    fn edb_query_is_identity() {
        let p = parse_program("helper(X) :- e(X, Y).\n?- e(X, _).")
            .unwrap()
            .program;
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        // helper is unreachable from the query and gets cleaned up... but
        // only once a query exists over derived predicates; for an EDB
        // query the adorned program is the original.
        assert!(out.program.query.is_some());
    }

    /// The report records phases in order and totals line up.
    #[test]
    fn report_bookkeeping() {
        let out = run("query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).");
        assert_eq!(out.report.rules_before, 3);
        assert_eq!(out.report.rules_after, out.program.rules.len());
        let text = out.report.to_text();
        assert!(text.contains("adorn"));
        assert!(text.contains("projection"));
    }
}

//! Folding (Example 11 of the paper): manufacture unit rules by naming a
//! conjunction.
//!
//! When no unit rule lets the summary machinery fire, one can *define* a
//! new predicate for part of a rule body and fold other bodies through it —
//! the paper calls the choice of what to extract "essentially a guess".
//! We implement the two mechanical halves:
//!
//! * [`extract_definition`]: pick a rule and a subset of its body literals;
//!   introduce `aux(vars) :- <subset>` where `vars` are the variables the
//!   rest of the rule shares with the subset; replace the subset by
//!   `aux(vars)`.
//! * [`fold_with`]: given a defining (single-use) auxiliary rule, find
//!   other rule bodies containing an instance of its body (up to variable
//!   renaming) and fold them through the auxiliary predicate.
//!
//! Both transformations preserve query equivalence (the auxiliary predicate
//! is fresh); folding additionally requires the match to keep internal
//! variables private (checked).

use std::collections::BTreeSet;

use datalog_ast::{subst, Atom, PredRef, Program, Rule, Term, Var};

use crate::report::{EquivalenceLevel, Phase, Report};
use crate::OptError;
use datalog_trace::PhaseEvent;

/// Introduce `aux(shared vars) :- body[lit_indices]` in place of the chosen
/// literals of rule `rule_idx`. Returns the rewritten program; the new
/// defining rule is appended last.
pub fn extract_definition(
    program: &Program,
    rule_idx: usize,
    lit_indices: &[usize],
    aux_name: &str,
) -> Result<Program, OptError> {
    let rule = program
        .rules
        .get(rule_idx)
        .ok_or(OptError::BadRuleIndex(rule_idx))?;
    let picked: BTreeSet<usize> = lit_indices.iter().copied().collect();
    if picked.is_empty() || picked.iter().any(|&i| i >= rule.body.len()) {
        return Err(OptError::BadRuleIndex(rule_idx));
    }
    let aux = PredRef::new(aux_name);
    if program.all_preds().contains(&aux) {
        return Err(OptError::PredicateExists(aux_name.to_owned()));
    }
    // Interface variables: variables of the picked literals that also occur
    // in the head or in an unpicked literal.
    let picked_vars: Vec<Var> = {
        let mut seen = Vec::new();
        for &i in &picked {
            for v in rule.body[i].var_occurrences() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    };
    let outside: BTreeSet<Var> = rule
        .head
        .var_occurrences()
        .chain(
            rule.body
                .iter()
                .enumerate()
                .filter(|(i, _)| !picked.contains(i))
                .flat_map(|(_, a)| a.var_occurrences()),
        )
        .collect();
    let interface: Vec<Var> = picked_vars
        .into_iter()
        .filter(|v| outside.contains(v))
        .collect();

    let aux_head = Atom::new(
        aux.clone(),
        interface.iter().map(|v| Term::Var(*v)).collect(),
    );
    let def_body: Vec<Atom> = picked.iter().map(|&i| rule.body[i].clone()).collect();

    let mut out = program.clone();
    let mut new_body: Vec<Atom> = Vec::new();
    let mut inserted = false;
    for (i, lit) in rule.body.iter().enumerate() {
        if picked.contains(&i) {
            if !inserted {
                new_body.push(aux_head.clone());
                inserted = true;
            }
        } else {
            new_body.push(lit.clone());
        }
    }
    out.rules[rule_idx] = Rule::new(rule.head.clone(), new_body);
    out.rules.push(Rule::new(aux_head, def_body));
    Ok(out)
}

/// Fold other rules through the defining rule at `def_idx` (which must be
/// the only rule for its head predicate): wherever a rule body contains an
/// instance of the definition's body whose *internal* variables (those not
/// in the definition's head) map to variables private to the matched
/// literals, replace those literals by the instantiated head.
///
/// Returns the folded program and how many rule bodies were folded.
pub fn fold_with(program: &Program, def_idx: usize) -> Result<(Program, usize), OptError> {
    let def = program
        .rules
        .get(def_idx)
        .cloned()
        .ok_or(OptError::BadRuleIndex(def_idx))?;
    if program.rules_for(&def.head.pred).len() != 1 {
        return Err(OptError::FoldNeedsSingleDefinition(
            def.head.pred.to_string(),
        ));
    }
    let def_head_vars: BTreeSet<Var> = def.head.var_occurrences().collect();
    let mut out = program.clone();
    let mut folded = 0;
    for (ri, rule) in program.rules.iter().enumerate() {
        if ri == def_idx {
            continue;
        }
        if let Some(new_rule) = try_fold_rule(rule, &def, &def_head_vars) {
            out.rules[ri] = new_rule;
            folded += 1;
        }
    }
    Ok((out, folded))
}

fn try_fold_rule(rule: &Rule, def: &Rule, def_head_vars: &BTreeSet<Var>) -> Option<Rule> {
    let n = def.body.len();
    if rule.body.len() < n {
        return None;
    }
    // One-way matching only: a substitution over the DEFINITION's variables
    // maps its body literally onto the rule's literals; the rule's own
    // terms are never bound. (Two-way unification would let a repeated
    // definition variable merge two distinct rule variables — narrowing the
    // rule and losing answers.)
    let fresh_head_vars: BTreeSet<Var> = def.head.var_occurrences().collect();
    debug_assert_eq!(fresh_head_vars.len(), def_head_vars.len());
    // Try every combination of |def.body| distinct literals, in order.
    let indices: Vec<usize> = (0..rule.body.len()).collect();
    for combo in combinations(&indices, n) {
        let mut map: std::collections::BTreeMap<Var, Term> = std::collections::BTreeMap::new();
        let ok = combo
            .iter()
            .enumerate()
            .all(|(k, &i)| crate::subsume::match_onto(&def.body[k], &rule.body[i], &mut map));
        if !ok {
            continue;
        }
        // Internal definition variables must map to variables that occur
        // ONLY inside the matched literals (else folding would lose joins),
        // and distinct internal variables must not collapse onto the same
        // rule variable (that would widen the definition's row set).
        let matched: BTreeSet<usize> = combo.iter().copied().collect();
        let outside_vars: BTreeSet<Var> = rule
            .head
            .var_occurrences()
            .chain(
                rule.body
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !matched.contains(i))
                    .flat_map(|(_, a)| a.var_occurrences()),
            )
            .collect();
        let internal_vars: Vec<Var> = def
            .body
            .iter()
            .flat_map(|a| a.var_occurrences())
            .filter(|v| !fresh_head_vars.contains(v))
            .collect();
        let mut internal_ok = true;
        let mut seen_targets: BTreeSet<Term> = BTreeSet::new();
        for v in &internal_vars {
            match map.get(v) {
                Some(Term::Var(w)) if !outside_vars.contains(w) => {
                    seen_targets.insert(Term::Var(*w));
                }
                _ => {
                    internal_ok = false;
                    break;
                }
            }
        }
        // Distinct internal vars mapping to one rule var: the rule joins
        // where the definition does not — reject.
        let distinct_internals: BTreeSet<&Var> = internal_vars.iter().collect();
        if seen_targets.len() != distinct_internals.len() {
            internal_ok = false;
        }
        if !internal_ok {
            continue;
        }
        let mut s = subst::Subst::new();
        for (v, t) in &map {
            let bound = s.bind(*v, *t);
            debug_assert!(bound);
        }
        let folded_head = s.apply_atom(&def.head);
        // Every variable the rest of the rule still needs (head, unmatched
        // literals) that was supplied by the matched region must survive in
        // the folded head — otherwise the fold would orphan it (producing
        // an unsafe rule or, worse, silently changing the join).
        let folded_vars: BTreeSet<Var> = folded_head.var_occurrences().collect();
        let needed_from_match_ok = outside_vars.iter().all(|v| {
            let in_matched = combo
                .iter()
                .any(|&i| rule.body[i].var_occurrences().any(|w| w == *v));
            !in_matched || folded_vars.contains(v)
        });
        if !needed_from_match_ok {
            continue;
        }
        // Folded head must be fully determined (no leftover fresh vars
        // except ones bound by the match).
        let mut new_body: Vec<Atom> = Vec::new();
        let mut inserted = false;
        for (i, lit) in rule.body.iter().enumerate() {
            if matched.contains(&i) {
                if !inserted {
                    new_body.push(folded_head.clone());
                    inserted = true;
                }
            } else {
                new_body.push(lit.clone());
            }
        }
        return Some(Rule::new(rule.head.clone(), new_body));
    }
    None
}

/// A fold opportunity found by [`suggest_folds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldSuggestion {
    /// Rule whose body prefix becomes the new definition.
    pub source_rule: usize,
    /// Literal indices (into the source rule's positive body) to extract.
    pub literals: Vec<usize>,
    /// How many *other* rules fold through the new definition.
    pub fold_count: usize,
}

/// Search for folding opportunities: the paper presents the Example 11
/// rewrite as "essentially a guess"; this implements the guess as a search.
///
/// Heuristic: for every rule and every contiguous-or-not pair (or larger
/// subset, up to `max_size`) of its body literals containing at least one
/// derived literal, tentatively extract it as a definition and count how
/// many other rule bodies fold through it. Suggestions are returned best
/// first (most folds, then smallest extraction).
pub fn suggest_folds(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    max_size: usize,
) -> Vec<FoldSuggestion> {
    let mut out = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        if rule.has_negation() {
            continue;
        }
        let n = rule.body.len();
        if n < 2 {
            continue;
        }
        let indices: Vec<usize> = (0..n).collect();
        for size in 2..=max_size.min(n) {
            for combo in combinations(&indices, size) {
                // Only worth naming if it contains a derived literal (the
                // goal is manufacturing *unit rules over derived chains*).
                if !combo.iter().any(|&i| derived.contains(&rule.body[i].pred)) {
                    continue;
                }
                let Ok(extracted) = extract_definition(program, ri, &combo, "$fold_probe") else {
                    continue;
                };
                let def_idx = extracted.rules.len() - 1;
                let Ok((_, count)) = fold_with(&extracted, def_idx) else {
                    continue;
                };
                if count > 0 {
                    out.push(FoldSuggestion {
                        source_rule: ri,
                        literals: combo,
                        fold_count: count,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        b.fold_count
            .cmp(&a.fold_count)
            .then(a.literals.len().cmp(&b.literals.len()))
            .then(a.source_rule.cmp(&b.source_rule))
    });
    out
}

/// Apply the best fold suggestion, if any: extract the definition under a
/// fresh readable name (`q1`, `q2`, ...) and fold every other matching rule
/// body through it. Records the action at query-equivalence level (the new
/// predicate is fresh; folding preserves the defined conjunction exactly).
pub fn apply_best_fold(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    report: &mut Report,
) -> Result<Option<Program>, OptError> {
    let suggestions = suggest_folds(program, derived, 2);
    let Some(best) = suggestions.first() else {
        return Ok(None);
    };
    // Pick an unused name q1, q2, ...
    let used: BTreeSet<String> = program
        .all_preds()
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let mut i = 1;
    let name = loop {
        let candidate = format!("q{i}");
        if !used.contains(&candidate) {
            break candidate;
        }
        i += 1;
    };
    let extracted = extract_definition(program, best.source_rule, &best.literals, &name)?;
    let def_idx = extracted.rules.len() - 1;
    let (folded, count) = fold_with(&extracted, def_idx)?;
    report.record_event(
        Phase::UnitRules,
        EquivalenceLevel::Query,
        format!(
            "folded {} rule(s) through new definition: {}",
            count, folded.rules[def_idx]
        ),
        PhaseEvent::Folded {
            pred: name.clone(),
            definition: folded.rules[def_idx].to_string(),
        },
    );
    Ok(Some(folded))
}

/// All size-`k` combinations of `items` (lexicographic).
fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo: Vec<usize> = Vec::with_capacity(k);
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        combo: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if combo.len() == k {
            out.push(combo.clone());
            return;
        }
        for i in start..items.len() {
            combo.push(items[i]);
            rec(items, k, i + 1, combo, out);
            combo.pop();
        }
    }
    rec(items, k, 0, &mut combo, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};

    /// Example 11's shape: extract `q(X,Y,Z,U) :- p(X,Y), g3(Y,Z,U)` from
    /// the first rule, then fold the last rule through it.
    const EX11: &str = "pq[nd](X) :- pn[nn](X, Y), g3(Y, Z, U).\n\
                        pq[nd](X) :- p1[nnn](X, Z, U), g1(Z, U, Y).\n\
                        p1[nnn](X, Z, U) :- pn[nn](X, W), g2(W, Z, U).\n\
                        p1[nnn](X, Z, U) :- pn[nn](X, V), g3(V, Z, U), g4(U, W).\n\
                        pn[nn](X, Y) :- b(X, Y).\n\
                        ?- pq[nd](X).";

    #[test]
    fn example_11_extract_and_fold() {
        let p = parse_program(EX11).unwrap().program;
        // Extract q from rule 0's full body.
        let extracted = extract_definition(&p, 0, &[0, 1], "q").unwrap();
        let text = extracted.to_text();
        assert!(text.contains("pq[nd](X) :- q(X)."), "{text}");
        // Interface = {X}: Y, Z, U are private to the extracted pair...
        // which is exactly why folding rule 3 through it must FAIL (rule 3
        // uses U in g4). Verify equivalence of extraction itself.
        let w = bounded_equiv_check(&p, &extracted, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "extraction changed answers: {w:?}");

        // The paper keeps Z and U in q's interface by defining q with all
        // four variables. Model that by extracting from a variant rule that
        // uses Z and U outside; here, demonstrate folding directly instead:
        // define q(X, Z, U) :- pn(X, V), g3(V, Z, U) as its own rule set.
        let p2 = parse_program(
            "pq[nd](X) :- q[nnn](X, Z, U).\n\
             q[nnn](X, Z, U) :- pn[nn](X, Y), g3(Y, Z, U).\n\
             pq[nd](X) :- p1[nnn](X, Z, U), g1(Z, U, Y).\n\
             p1[nnn](X, Z, U) :- pn[nn](X, W), g2(W, Z, U).\n\
             p1[nnn](X, Z, U) :- pn[nn](X, V), g3(V, Z, U), g4(U, W).\n\
             pn[nn](X, Y) :- b(X, Y).\n\
             ?- pq[nd](X).",
        )
        .unwrap()
        .program;
        let (folded, count) = fold_with(&p2, 1).unwrap();
        assert_eq!(count, 1, "{}", folded.to_text());
        let text = folded.to_text();
        // Rule 4 now goes through q: p1(X,Z,U) :- q(X,Z,U), g4(U,W).
        assert!(
            text.contains("p1[nnn](X, Z, U) :- q[nnn](X, Z, U), g4(U, W)."),
            "{text}"
        );
        let w = bounded_equiv_check(&p2, &folded, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "folding changed answers: {w:?}");
    }

    #[test]
    fn fold_respects_private_variables() {
        // Definition's internal variable Y maps to a variable used outside
        // the matched literals: folding must not happen.
        let p = parse_program(
            "aux(X) :- e(X, Y), f(Y).\n\
             q(X, Y) :- e(X, Y), f(Y), g(Y).\n\
             ?- q(X, Y).",
        )
        .unwrap()
        .program;
        let (folded, count) = fold_with(&p, 0).unwrap();
        assert_eq!(count, 0);
        assert_eq!(folded, p);
    }

    #[test]
    fn fold_applies_when_variables_are_private() {
        let p = parse_program(
            "aux(X) :- e(X, Y), f(Y).\n\
             q(X) :- e(X, W), f(W), g(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let (folded, count) = fold_with(&p, 0).unwrap();
        assert_eq!(count, 1);
        assert!(folded.to_text().contains("q(X) :- aux(X), g(X)."));
        let w = bounded_equiv_check(&p, &folded, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none());
    }

    #[test]
    fn extract_rejects_existing_predicate_and_bad_indices() {
        let p = parse_program("q(X) :- e(X, Y), f(Y).\n?- q(X).")
            .unwrap()
            .program;
        assert!(matches!(
            extract_definition(&p, 0, &[0], "q"),
            Err(OptError::PredicateExists(_))
        ));
        assert!(matches!(
            extract_definition(&p, 0, &[7], "aux"),
            Err(OptError::BadRuleIndex(_))
        ));
        assert!(matches!(
            extract_definition(&p, 9, &[0], "aux"),
            Err(OptError::BadRuleIndex(_))
        ));
    }

    /// The fold search rediscovers the paper's Example 11 rewrite from
    /// Example 9's program: extract `pn ⋈ g3` from the g4-guarded rule so
    /// that the first rule folds through it.
    #[test]
    fn suggest_folds_discovers_example_11() {
        let nine = parse_program(crate::paper::EXAMPLE_9).unwrap().program;
        let derived = nine.idb_preds();
        let suggestions = suggest_folds(&nine, &derived, 2);
        assert!(!suggestions.is_empty(), "no fold found on Example 9");
        let best = &suggestions[0];
        // Best extraction: the pn/g3 pair of the g4-guarded rule (index 3).
        assert_eq!(best.source_rule, 3, "{suggestions:?}");
        assert_eq!(best.fold_count, 1);

        // Applying it yields Example 11's shape and preserves answers.
        let mut rep = crate::report::Report::default();
        let folded = apply_best_fold(&nine, &derived, &mut rep)
            .unwrap()
            .expect("fold applies");
        let text = folded.to_text();
        assert!(text.contains("q1[") || text.contains("q1("), "{text}");
        let w = bounded_equiv_check(&nine, &folded, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "folding changed answers: {w:?}");
    }

    /// End-to-end: the aggressive pipeline turns Example 9 into Example 11
    /// automatically and then deletes the g4-guarded rule — the paper's §6
    /// "guess", mechanized.
    #[test]
    fn aggressive_pipeline_closes_example_9() {
        use crate::pipeline::{optimize, OptimizerConfig};
        let nine = parse_program(crate::paper::EXAMPLE_9).unwrap().program;
        // Default pipeline cannot remove the g4 rule via summaries (the
        // freeze phase may or may not; disable it to isolate the claim).
        let summary_only = OptimizerConfig {
            freeze_enabled: false,
            ..OptimizerConfig::default()
        };
        let stuck = optimize(&nine, &summary_only).unwrap();
        assert!(stuck.program.to_text().contains("g4"));

        let mut aggressive = OptimizerConfig::aggressive();
        aggressive.freeze_enabled = false;
        let out = optimize(&nine, &aggressive).unwrap();
        assert!(
            !out.program.to_text().contains("g4"),
            "auto-fold should unlock the deletion:\n{}",
            out.program.to_text()
        );
        let w = bounded_equiv_check(&nine, &out.program, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "{w:?}");
    }

    #[test]
    fn fold_needs_single_definition() {
        let p = parse_program(
            "aux(X) :- e(X).\n\
             aux(X) :- f(X).\n\
             q(X) :- e(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        assert!(matches!(
            fold_with(&p, 0),
            Err(OptError::FoldNeedsSingleDefinition(_))
        ));
    }
}

//! Phase 2 (§3.2): pushing projections by deleting existential argument
//! positions.
//!
//! Lemma 3.2: consistently replacing every occurrence of an adorned literal
//! `p^a(t̄)` — in heads, bodies, and the query — by `p^a(t̄↾ₙ)`, where the
//! `d` positions are dropped, preserves the query's answers. The adornment
//! string keeps its original length; the correspondence between adornment
//! letters and arguments skips the `d`s.
//!
//! This is where the headline win of the paper materializes: the recursive
//! predicate of Example 1 goes from binary to unary (Example 3), shrinking
//! both the number of distinct facts and the duplicate-elimination cost.
//! Full arity minimization is undecidable (Theorem 3.3, implemented on the
//! grammar side in `datalog-grammar`); this phase performs exactly the
//! projection the adornments license.

use datalog_ast::{Ad, Atom, Program, Term};

use crate::report::{EquivalenceLevel, Phase, Report};
use crate::OptError;
use datalog_trace::PhaseEvent;

/// One projected atom occurrence: which predicate shrank, by how much, and
/// the rendered before/after for the report.
struct Projected {
    pred: String,
    arity_before: usize,
    arity_after: usize,
    desc: String,
}

/// Drop the `d` positions of every adorned atom (Lemma 3.2). Atoms whose
/// argument count already equals the adornment's needed-count are left
/// alone, so the transformation is idempotent.
pub fn push_projections(program: &Program, report: &mut Report) -> Result<Program, OptError> {
    let mut out = program.clone();
    let mut projected: Vec<Projected> = Vec::new();
    for rule in out.rules.iter_mut() {
        // Check dropped body variables do not occur elsewhere in the rule
        // (they cannot, for programs produced by the adornment algorithm,
        // but hand-written adorned programs might violate this).
        let full = rule.clone();
        project_atom(&mut rule.head, &mut projected)?;
        for lit in rule.negative.iter_mut() {
            // Negated literals are adorned all-needed; projecting them is a
            // no-op, but hand-written programs might carry d's — reject via
            // the same path.
            project_atom(lit, &mut projected)?;
        }
        for (li, lit) in rule.body.iter_mut().enumerate() {
            let before = lit.clone();
            project_atom(lit, &mut projected)?;
            if lit.arity() != before.arity() {
                // Dropped variables must not be used in any *other* literal
                // or in a surviving (n) position of the head.
                let kept: std::collections::BTreeSet<_> = lit.var_occurrences().collect();
                for v in before.var_occurrences() {
                    if kept.contains(&v) {
                        continue;
                    }
                    let used_elsewhere = full
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != li)
                        .any(|(_, other)| other.var_occurrences().any(|w| w == v))
                        || full
                            .negative
                            .iter()
                            .any(|other| other.var_occurrences().any(|w| w == v))
                        || occurs_in_needed_head(&full, v);
                    if used_elsewhere {
                        return Err(OptError::InvalidProjection {
                            pred: before.pred.to_string(),
                            var: v.name(),
                        });
                    }
                }
            }
        }
    }
    if let Some(q) = out.query.as_mut() {
        project_atom(&mut q.atom, &mut projected)?;
    }
    for p in projected {
        report.record_event(
            Phase::Projection,
            EquivalenceLevel::UniformQuery,
            p.desc,
            PhaseEvent::ArityReduced {
                pred: p.pred,
                before: p.arity_before,
                after: p.arity_after,
            },
        );
    }
    Ok(out)
}

fn occurs_in_needed_head(rule: &datalog_ast::Rule, v: datalog_ast::Var) -> bool {
    match &rule.head.pred.adornment {
        Some(ad) if ad.len() == rule.head.arity() => rule
            .head
            .terms
            .iter()
            .enumerate()
            .any(|(i, t)| ad[i] == Ad::N && *t == Term::Var(v)),
        _ => rule.head.terms.contains(&Term::Var(v)),
    }
}

fn project_atom(atom: &mut Atom, log: &mut Vec<Projected>) -> Result<(), OptError> {
    let Some(ad) = atom.pred.adornment.clone() else {
        return Ok(()); // unadorned (EDB or boolean): untouched
    };
    if atom.arity() == ad.needed_count() {
        return Ok(()); // already projected
    }
    if atom.arity() != ad.len() {
        return Err(OptError::Ast(datalog_ast::AstError::AdornmentMismatch {
            pred: atom.pred.name.as_str(),
            adornment: ad.to_string(),
            args: atom.arity(),
        }));
    }
    if ad.is_all_needed() {
        return Ok(());
    }
    let before = atom.to_string();
    let arity_before = atom.arity();
    atom.terms = ad
        .needed_positions()
        .into_iter()
        .map(|i| atom.terms[i])
        .collect();
    log.push(Projected {
        pred: atom.pred.to_string(),
        arity_before,
        arity_after: atom.arity(),
        desc: format!("projected {before} -> {atom}"),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};

    fn project(src: &str) -> Program {
        let p = parse_program(src).unwrap().program;
        let mut r = Report::default();
        push_projections(&p, &mut r).unwrap()
    }

    /// Example 1 → Example 3 of the paper: the adorned TC becomes unary.
    #[test]
    fn example_3_tc_becomes_unary() {
        let out = project(
            "query[n](X) :- a[nd](X, Y).\n\
             a[nd](X, Y) :- p(X, Z), a[nd](Z, Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- query[n](X).",
        );
        let text = out.to_text();
        assert!(text.contains("query[n](X) :- a[nd](X)."), "{text}");
        assert!(text.contains("a[nd](X) :- p(X, Z), a[nd](Z)."), "{text}");
        assert!(text.contains("a[nd](X) :- p(X, Y)."), "{text}");
        out.validate().expect("projected program is valid");
    }

    /// Lemma 3.2: answers are preserved.
    #[test]
    fn projection_preserves_answers() {
        let original = parse_program(
            "query[n](X) :- a[nd](X, Y).\n\
             a[nd](X, Y) :- p(X, Z), a[nd](Z, Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- query[n](X).",
        )
        .unwrap()
        .program;
        let mut r = Report::default();
        let projected = push_projections(&original, &mut r).unwrap();
        let w = bounded_equiv_check(&original, &projected, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "projection changed answers: {w:?}");
        assert!(r.actions.len() >= 3);
        assert_eq!(r.weakest_level(), EquivalenceLevel::UniformQuery);
    }

    #[test]
    fn wildcard_head_positions_are_dropped() {
        // The Example 2 shape after component extraction: head has a
        // dangling wildcard in its d position.
        let out = project(
            "p[nd](X, _) :- q1(X, Y), b1.\n\
             b1 :- q5(W).\n\
             ?- p[nd](X, _).",
        );
        let text = out.to_text();
        assert!(text.contains("p[nd](X) :- q1(X, Y), b1."), "{text}");
        assert!(text.contains("?- p[nd](X)."), "{text}");
        out.validate()
            .expect("valid after dropping dangling head vars");
    }

    #[test]
    fn idempotent_on_projected_programs() {
        let src = "a[nd](X) :- p(X, Z), a[nd](Z).\n\
                   a[nd](X) :- p(X, Y).\n\
                   ?- a[nd](X).";
        let once = project(src);
        let mut r = Report::default();
        let twice = push_projections(&once, &mut r).unwrap();
        assert_eq!(once, twice);
        assert!(r.actions.is_empty());
    }

    #[test]
    fn unadorned_literals_are_untouched() {
        let out = project(
            "q[nd](X, Y) :- e(X, Y).\n\
             ?- q[nd](X, _).",
        );
        let text = out.to_text();
        assert!(text.contains("q[nd](X) :- e(X, Y)."), "{text}");
        assert!(text.contains("e(X, Y)"), "EDB atom must keep both columns");
    }

    #[test]
    fn dropping_a_join_variable_is_rejected() {
        // Y is adorned d in a's occurrence but is used by s(Y): invalid.
        let p = parse_program(
            "q[n](X) :- a[nd](X, Y), s(Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- q[n](X).",
        )
        .unwrap()
        .program;
        let mut r = Report::default();
        let err = push_projections(&p, &mut r).unwrap_err();
        assert!(matches!(err, OptError::InvalidProjection { .. }));
    }

    #[test]
    fn all_needed_adornments_are_noops() {
        let src = "a[nn](X, Y) :- p(X, Y).\n?- a[nn](X, Y).";
        let out = project(src);
        assert_eq!(out, parse_program(src).unwrap().program);
    }
}

//! Cleanup passes shared by the deletion phases (Examples 6, 7 and 8 of the
//! paper lean on all three):
//!
//! * **undefined**: a rule using a *derived* predicate that no longer has
//!   any defining rule can never fire ("we can discard the second and
//!   fourth rule since there are now no rules defining p1", Example 7);
//! * **unproductive**: a derived predicate all of whose rules depend on
//!   unproductive derived predicates can never produce a fact ("the fourth
//!   rule can now be dropped since there is no exit rule defining p1",
//!   Example 8);
//! * **unreachable**: rules for predicates the query cannot reach
//!   contribute nothing to the answer (Example 8's final step).
//!
//! All three are sound at the **query equivalence** level only: they rely
//! on IDB predicates starting empty, which uniform equivalence does not
//! grant (this is exactly where Example 6's final step quietly drops from
//! uniform-query to plain query equivalence — see EXPERIMENTS.md).

use std::collections::BTreeSet;

use datalog_ast::{PredRef, Program};

use crate::report::{EquivalenceLevel, Phase, Report};
use datalog_trace::PhaseEvent;

/// Run all cleanup passes to a fixpoint. `derived` is the set of
/// predicates that are semantically IDB (empty on real inputs) — it must be
/// captured *before* deletions begin, because a predicate whose last rule
/// was deleted no longer looks derived.
pub fn cleanup(program: &Program, derived: &BTreeSet<PredRef>, report: &mut Report) -> Program {
    let mut p = program.clone();
    loop {
        let before = p.rules.len();
        p = drop_undefined_users(&p, derived, report);
        p = drop_unproductive(&p, derived, report);
        p = drop_unreachable(&p, report);
        if p.rules.len() == before {
            return p;
        }
    }
}

/// Delete rules whose body uses a derived predicate with no defining rules.
pub fn drop_undefined_users(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    report: &mut Report,
) -> Program {
    let mut p = program.clone();
    loop {
        let defined: BTreeSet<PredRef> = p.idb_preds();
        let mut kept = Vec::with_capacity(p.rules.len());
        let mut changed = false;
        for r in p.rules {
            let dead = r
                .body
                .iter()
                .any(|a| derived.contains(&a.pred) && !defined.contains(&a.pred));
            if dead {
                report.record_event(
                    Phase::Cleanup,
                    EquivalenceLevel::Query,
                    format!("dropped rule using undefined derived predicate: {r}"),
                    PhaseEvent::RuleDeleted {
                        rule: r.to_string(),
                        condition: "body uses a derived predicate with no remaining rules".into(),
                    },
                );
                changed = true;
            } else {
                kept.push(r);
            }
        }
        p = Program {
            rules: kept,
            query: program.query.clone(),
        };
        if !changed {
            return p;
        }
    }
}

/// Delete rules that mention an *unproductive* derived predicate: one that
/// cannot derive any fact because every derivation path lacks an exit.
pub fn drop_unproductive(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    report: &mut Report,
) -> Program {
    // Fixpoint: a derived predicate is productive if one of its rules uses
    // only productive predicates (EDB predicates are productive).
    let mut productive: BTreeSet<PredRef> = BTreeSet::new();
    loop {
        let mut changed = false;
        for r in &program.rules {
            if productive.contains(&r.head.pred) {
                continue;
            }
            let ok = r
                .body
                .iter()
                .all(|a| !derived.contains(&a.pred) || productive.contains(&a.pred));
            if ok {
                productive.insert(r.head.pred.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut kept = Vec::with_capacity(program.rules.len());
    for r in &program.rules {
        let dead = std::iter::once(&r.head)
            .chain(r.body.iter())
            .any(|a| derived.contains(&a.pred) && !productive.contains(&a.pred));
        if dead {
            report.record_event(
                Phase::Cleanup,
                EquivalenceLevel::Query,
                format!("dropped rule involving unproductive predicate: {r}"),
                PhaseEvent::RuleDeleted {
                    rule: r.to_string(),
                    condition: "involves a predicate with no productive derivation path".into(),
                },
            );
        } else {
            kept.push(r.clone());
        }
    }
    Program {
        rules: kept,
        query: program.query.clone(),
    }
}

/// Delete rules for predicates unreachable from the query.
pub fn drop_unreachable(program: &Program, report: &mut Report) -> Program {
    if program.query.is_none() {
        return program.clone();
    }
    let reachable = program.reachable_from_query();
    let mut kept = Vec::with_capacity(program.rules.len());
    for r in &program.rules {
        if reachable.contains(&r.head.pred) {
            kept.push(r.clone());
        } else {
            report.record_event(
                Phase::Cleanup,
                EquivalenceLevel::Query,
                format!("dropped rule unreachable from the query: {r}"),
                PhaseEvent::RuleDeleted {
                    rule: r.to_string(),
                    condition: "head predicate unreachable from the query".into(),
                },
            );
        }
    }
    Program {
        rules: kept,
        query: program.query.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn derived_of(p: &Program) -> BTreeSet<PredRef> {
        p.idb_preds()
    }

    #[test]
    fn undefined_cascade() {
        // Deleting nothing: h is defined. Then mark h as derived but give
        // it no rules: its user dies, cascading to q's emptiness? q still
        // has the direct rule.
        let p = parse_program(
            "q(X) :- h(X).\n\
             q(X) :- e(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut derived = derived_of(&p);
        derived.insert(PredRef::new("h")); // h is derived but undefined
        let mut rep = Report::default();
        let out = cleanup(&p, &derived, &mut rep);
        assert_eq!(out.rules.len(), 1);
        assert!(out.to_text().contains("q(X) :- e(X)."));
        assert_eq!(rep.weakest_level(), EquivalenceLevel::Query);
    }

    #[test]
    fn unproductive_recursion_without_exit() {
        // Example 8's pattern: p1 is defined only recursively.
        let p = parse_program(
            "q(X) :- p1(X, Y).\n\
             q(X) :- e(X).\n\
             p1(X, Y) :- p1(X, Z), g(Z, Y).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let derived = derived_of(&p);
        let mut rep = Report::default();
        let out = cleanup(&p, &derived, &mut rep);
        assert_eq!(out.rules.len(), 1);
        assert!(out.to_text().contains("q(X) :- e(X)."));
    }

    #[test]
    fn unreachable_rules_dropped() {
        let p = parse_program(
            "q(X) :- e(X).\n\
             island(X) :- e(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut rep = Report::default();
        let out = cleanup(&p, &derived_of(&p), &mut rep);
        assert_eq!(out.rules.len(), 1);
        assert!(!out.to_text().contains("island"));
    }

    #[test]
    fn whole_program_can_collapse_to_empty() {
        // Example 8's endgame: everything depends on an unproductive
        // predicate, so the answer is provably empty.
        let p = parse_program(
            "q(X) :- h(X, Y).\n\
             h(X, Y) :- h(X, Z), g(Z, Y).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let mut rep = Report::default();
        let out = cleanup(&p, &derived_of(&p), &mut rep);
        assert!(out.rules.is_empty());
        assert!(rep.deletions() >= 2);
    }

    #[test]
    fn healthy_program_is_untouched() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        let mut rep = Report::default();
        let out = cleanup(&p, &derived_of(&p), &mut rep);
        assert_eq!(out, p);
        assert!(rep.actions.is_empty());
    }
}

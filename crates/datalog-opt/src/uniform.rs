//! Freeze-test rule deletion: Sagiv's uniform-equivalence test (Example 4)
//! and the paper's uniform *query* equivalence test (Example 6).
//!
//! Both tests freeze a candidate rule's variables into skolem constants and
//! feed the frozen body to the program without the rule:
//!
//! * the **uniform** test requires the frozen *head* to be re-derived —
//!   decidable, sound, and complete for uniform equivalence of `P` vs
//!   `P − r` (Sagiv 1987);
//! * the **uniform-query** test only requires the *query-predicate* facts
//!   derivable from the frozen body to be preserved. The paper proposes it
//!   as a sufficient condition. As `datalog-engine::oracle` documents with
//!   a counterexample, the bare test can over-delete when the candidate is
//!   the sole producer of an intermediate predicate whose downstream
//!   consumers need *context* facts; we therefore (a) only apply it when
//!   [`UniformConfig::validate_uqe`] supplies a randomized-equivalence
//!   budget that fails to refute the deletion, and (b) record the action at
//!   the [`EquivalenceLevel::UniformQuery`] level with a note when
//!   validation was skipped.

use std::collections::BTreeSet;

use datalog_ast::{PredRef, Program};
use datalog_engine::oracle::{
    bounded_equiv_check, uniform_query_test, uniform_test, EquivCheckConfig,
};

use crate::cleanup::cleanup;
use crate::report::{EquivalenceLevel, Phase, Report};
use crate::OptError;
use datalog_trace::PhaseEvent;

/// Configuration for the freeze-test deletion loop.
#[derive(Debug, Clone)]
pub struct UniformConfig {
    /// Try Sagiv's uniform-equivalence deletions.
    pub uniform: bool,
    /// Try the paper's uniform-query-equivalence deletions.
    pub uqe: bool,
    /// Randomized validation budget for UQE deletions. `None` applies the
    /// paper's test unguarded (not recommended; see module docs).
    pub validate_uqe: Option<EquivCheckConfig>,
    /// Run cleanup passes between deletions.
    pub run_cleanups: bool,
}

impl Default for UniformConfig {
    fn default() -> UniformConfig {
        UniformConfig {
            uniform: true,
            uqe: true,
            validate_uqe: Some(EquivCheckConfig {
                instances: 60,
                domain: 4,
                facts_per_pred: 10,
                ..EquivCheckConfig::default()
            }),
            run_cleanups: true,
        }
    }
}

/// Delete rules to a fixpoint using the freeze tests.
pub fn freeze_deletion(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    cfg: &UniformConfig,
    report: &mut Report,
) -> Result<Program, OptError> {
    let query_pred = program.query.as_ref().map(|q| q.atom.pred.clone());
    // Candidate order: rules defining auxiliary (non-query) predicates
    // first. Deleting an auxiliary exit rule lets cleanups collapse the
    // whole auxiliary chain (Example 6's route to the one-rule program);
    // deleting the query's own exit first would instead strand an
    // equivalent but slower unit chain.
    let order = |p: &Program| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..p.rules.len()).collect();
        idx.sort_by_key(|&i| Some(&p.rules[i].head.pred) == query_pred.as_ref());
        idx
    };
    let mut current = program.clone();
    'outer: loop {
        if cfg.run_cleanups {
            current = cleanup(&current, derived, report);
        }
        // Per candidate (auxiliary-head rules first), try the uniform test
        // and then the UQE test before moving on. The candidate order
        // matters more than the level order: deleting an auxiliary exit
        // rule under UQE (Example 6) must win over deleting the query's
        // exit rule under uniform equivalence, or the optimizer strands an
        // equivalent-but-slower unit chain.
        for ri in order(&current) {
            if cfg.uniform && uniform_test(&current, ri).map_err(OptError::Engine)? {
                report.record_event(
                    Phase::UniformDeletion,
                    EquivalenceLevel::Uniform,
                    format!("deleted rule (Sagiv uniform test): {}", current.rules[ri]),
                    PhaseEvent::RuleDeleted {
                        rule: current.rules[ri].to_string(),
                        condition: "Sagiv uniform-equivalence test".into(),
                    },
                );
                current = current.without_rule(ri);
                continue 'outer;
            }
            if cfg.uqe
                && current.query.is_some()
                && uniform_query_test(&current, ri).map_err(OptError::Engine)?
            {
                let reduced = current.without_rule(ri);
                if let Some(val) = &cfg.validate_uqe {
                    if bounded_equiv_check(&current, &reduced, val)
                        .map_err(OptError::Engine)?
                        .is_some()
                    {
                        // The paper's test passed but randomized validation
                        // refuted the deletion: skip it.
                        report.record(
                            Phase::UqeDeletion,
                            EquivalenceLevel::UniformQuery,
                            format!(
                                "REFUSED unsound UQE deletion (validation found a \
                                 counterexample): {}",
                                current.rules[ri]
                            ),
                        );
                        continue;
                    }
                }
                report.record_event(
                    Phase::UqeDeletion,
                    EquivalenceLevel::UniformQuery,
                    format!(
                        "deleted rule (uniform-query freeze test{}): {}",
                        if cfg.validate_uqe.is_some() {
                            ", validated"
                        } else {
                            ", UNVALIDATED"
                        },
                        current.rules[ri]
                    ),
                    PhaseEvent::RuleDeleted {
                        rule: current.rules[ri].to_string(),
                        condition: if cfg.validate_uqe.is_some() {
                            "uniform-query freeze test (randomized validation passed)".into()
                        } else {
                            "uniform-query freeze test (unvalidated)".into()
                        },
                    },
                );
                current = reduced;
                continue 'outer;
            }
        }
        if cfg.run_cleanups {
            current = cleanup(&current, derived, report);
        }
        return Ok(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn run(src: &str, cfg: &UniformConfig) -> (Program, Report) {
        let p = parse_program(src).unwrap().program;
        let derived = p.idb_preds();
        let mut report = Report::default();
        let out = freeze_deletion(&p, &derived, cfg, &mut report).unwrap();
        (out, report)
    }

    /// Example 4: the projected TC's recursive rule is uniformly redundant.
    #[test]
    fn example_4_uniform_deletes_recursive_rule() {
        let (out, report) = run(
            "a[nd](X) :- p(X, Z), a[nd](Z).\n\
             a[nd](X) :- p(X, Z).\n\
             ?- a[nd](X).",
            &UniformConfig::default(),
        );
        assert_eq!(out.rules.len(), 1);
        assert_eq!(out.rules[0].to_string(), "a[nd](X) :- p(X, Z).");
        assert!(report
            .actions
            .iter()
            .any(|a| a.phase == Phase::UniformDeletion));
        assert_eq!(report.weakest_level(), EquivalenceLevel::Uniform);
    }

    /// Example 3a: with a different exit predicate the recursive rule must
    /// survive.
    #[test]
    fn example_3a_nothing_deletable() {
        let (out, report) = run(
            "a[nd](X) :- p(X, Z), a[nd](Z).\n\
             a[nd](X) :- p1(X, Z).\n\
             ?- a[nd](X).",
            &UniformConfig::default(),
        );
        assert_eq!(out.rules.len(), 2);
        assert_eq!(report.deletions(), 0);
    }

    /// Example 6 end-to-end: the left-recursive existential TC collapses to
    /// its exit rule under UQE (uniform equivalence alone deletes nothing —
    /// Example 5).
    #[test]
    fn example_6_collapses_to_exit_rule() {
        const EX5: &str = "a[nd](X) :- a[nn](X, Z), p(Z, Y).\n\
                           a[nd](X) :- p(X, Y).\n\
                           a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
                           a[nn](X, Y) :- p(X, Y).\n\
                           ?- a[nd](X).";
        // Uniform-only: stuck (Example 5's point).
        let (stuck, _) = run(
            EX5,
            &UniformConfig {
                uqe: false,
                ..UniformConfig::default()
            },
        );
        assert_eq!(stuck.rules.len(), 4);
        // With UQE: down to the single exit rule (Example 6's point).
        let (out, report) = run(EX5, &UniformConfig::default());
        assert_eq!(out.rules.len(), 1, "{}", out.to_text());
        assert_eq!(out.rules[0].to_string(), "a[nd](X) :- p(X, Y).");
        assert!(report.actions.iter().any(|a| a.phase == Phase::UqeDeletion));
        assert!(report.actions.iter().any(|a| a.phase == Phase::Cleanup));
        assert_eq!(report.weakest_level(), EquivalenceLevel::Query);
    }

    /// The engine-documented counterexample: the bare UQE test would delete
    /// the sole `h` rule and break the query; validation must refuse it.
    #[test]
    fn validation_refuses_unsound_uqe_deletion() {
        let (out, report) = run(
            "q(X) :- h(X, Y), w(Y).\n\
             h(X, Y) :- s(X, Y).\n\
             ?- q(X).",
            &UniformConfig::default(),
        );
        assert_eq!(out.rules.len(), 2, "{}", out.to_text());
        assert!(report
            .actions
            .iter()
            .any(|a| a.description.contains("REFUSED")));
        // Without validation the paper's bare test over-deletes — this is
        // the documented hazard.
        let (bare, _) = run(
            "q(X) :- h(X, Y), w(Y).\n\
             h(X, Y) :- s(X, Y).\n\
             ?- q(X).",
            &UniformConfig {
                validate_uqe: None,
                ..UniformConfig::default()
            },
        );
        assert!(bare.rules.len() < 2);
    }

    #[test]
    fn no_query_skips_uqe_but_uniform_still_works() {
        let p = parse_program(
            "a(X) :- p(X, Z), a(Z).\n\
             a(X) :- p(X, Z).",
        )
        .unwrap()
        .program;
        let derived = p.idb_preds();
        let mut report = Report::default();
        let out = freeze_deletion(&p, &derived, &UniformConfig::default(), &mut report).unwrap();
        assert_eq!(out.rules.len(), 1);
    }
}

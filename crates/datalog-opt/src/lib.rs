//! # datalog-opt
//!
//! The optimizer of *Optimizing Existential Datalog Queries* (Ramakrishnan,
//! Beeri, Krishnamurthy; PODS 1988): given a Datalog program and an
//! existential query, rewrite the program so bottom-up evaluation does less
//! work without changing the query's answers.
//!
//! The three phases of the paper, plus the supporting machinery:
//!
//! * **Adornment** (§2) — via the `datalog-adorn` crate;
//! * **Phase 1** ([`components`]) — connected components of rule bodies;
//!   existential subqueries become zero-arity boolean rules the engine can
//!   retire after first success (the bottom-up cut, §3.1);
//! * **Phase 2** ([`projection`]) — drop the `d` argument positions
//!   (Lemma 3.2), shrinking recursive predicates' arities;
//! * **Phase 3** — rule deletion three ways:
//!   [`deletion`] (summary-based, Lemmas 5.1/5.3, Algorithm 5.1/5.2),
//!   [`uniform`] (Sagiv's frozen-rule test and the paper's uniform-query
//!   variant, Examples 4–6), and [`cleanup`] (undefined / unproductive /
//!   unreachable predicates, Examples 7–8);
//! * [`fold`] — the Example 11 folding rewrite that manufactures unit
//!   rules;
//! * [`subsume`] — θ-subsumption deletion (the §6 research direction:
//!   "detect subsumption of a rule by other rules"), a syntactic pre-pass
//!   preserving uniform equivalence;
//! * [`analyze`](mod@crate::analyze) — static diagnostics: existential opportunities, cross
//!   products, subsumed/unreachable/unproductive rules, chain-program and
//!   negation notes;
//! * [`pipeline`] — the end-to-end optimizer with a per-action [`Report`];
//! * [`paper`] — the paper's twelve worked examples as ready-to-use
//!   programs (with reconstruction notes where the source text is garbled).

pub mod analyze;
pub mod argproj;
pub mod cleanup;
pub mod components;
pub mod deletion;
pub mod fold;
pub mod paper;
pub mod pipeline;
pub mod prepare;
pub mod projection;
pub mod report;
pub mod subsume;
pub mod uniform;
pub mod validate;

pub use analyze::{analyze, Finding, FindingKind};
pub use argproj::{close_summaries, rule_projection, ArgProj};
pub use components::{extract_components, ComponentsResult};
pub use deletion::{summary_deletion, SummaryConfig};
pub use fold::{extract_definition, fold_with};
pub use pipeline::{optimize, OptimizeOutcome, OptimizerConfig};
pub use prepare::{
    canonical_query_atom, edb_support, fingerprint_rules, prepare, PreparedProgram, QueryShape,
};
pub use projection::push_projections;
pub use report::{Action, EquivalenceLevel, Phase, Report, Snapshot};
pub use subsume::{delete_subsumed, subsumed_indices, subsumes, subsumption_witness};
pub use uniform::{freeze_deletion, UniformConfig};
pub use validate::{validate, Validation};

use datalog_adorn::AdornError;
use datalog_ast::AstError;
use datalog_engine::EngineError;

/// Optimizer errors.
#[derive(Debug)]
pub enum OptError {
    /// Structural problem in the program.
    Ast(AstError),
    /// Adornment failed.
    Adorn(AdornError),
    /// An equivalence oracle failed (evaluation error).
    Engine(EngineError),
    /// Projection would drop an argument whose variable is still used —
    /// the adornment was not produced by the §2 algorithm.
    InvalidProjection { pred: String, var: String },
    /// A rule or literal index was out of range.
    BadRuleIndex(usize),
    /// A generated predicate name collides with an existing predicate.
    PredicateExists(String),
    /// Folding requires the auxiliary predicate to have exactly one rule.
    FoldNeedsSingleDefinition(String),
    /// Translation validation refused the run; the string lists the
    /// failing checks.
    ValidationFailed(String),
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Ast(e) => write!(f, "{e}"),
            OptError::Adorn(e) => write!(f, "{e}"),
            OptError::Engine(e) => write!(f, "{e}"),
            OptError::InvalidProjection { pred, var } => write!(
                f,
                "cannot project {pred}: dropped variable {var} is still used"
            ),
            OptError::BadRuleIndex(i) => write!(f, "rule/literal index {i} out of range"),
            OptError::PredicateExists(p) => write!(f, "predicate {p} already exists"),
            OptError::FoldNeedsSingleDefinition(p) => {
                write!(
                    f,
                    "folding through {p} requires it to have exactly one rule"
                )
            }
            OptError::ValidationFailed(detail) => {
                write!(f, "translation validation failed:\n{detail}")
            }
        }
    }
}

impl std::error::Error for OptError {}

impl From<AstError> for OptError {
    fn from(e: AstError) -> OptError {
        OptError::Ast(e)
    }
}

impl From<AdornError> for OptError {
    fn from(e: AdornError) -> OptError {
        OptError::Adorn(e)
    }
}

impl From<EngineError> for OptError {
    fn from(e: EngineError) -> OptError {
        OptError::Engine(e)
    }
}

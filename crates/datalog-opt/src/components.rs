//! Phase 1 (§3.1): connected components and boolean extraction.
//!
//! Within a rule body, two literals are *connected* when they share a
//! variable (transitively). The head connects to the body through its
//! **needed** variables only — a variable that appears solely in `d`
//! positions of the head does not tie its literal to the head component
//! (that is the point: its value is never reported). Every body component
//! not connected to the head is an *existential subquery*: it is pulled out
//! into a fresh zero-arity **boolean** rule `Bᵢ :- Cᵢ`, and `Bᵢ` replaces
//! the component in the original body (Lemma 3.1).
//!
//! At run time, `datalog-engine`'s boolean-cut option retires each `Bᵢ`
//! rule once it fires — the bottom-up analogue of Prolog's cut.
//!
//! A subtlety the paper glosses over (its Example 2 writes `p[nd](X, _)` in
//! a rule head): extracting a component that binds a `d`-adorned head
//! variable leaves that head position unbound, which is only legal because
//! §3.2's projection will drop the position. `extract_components` therefore
//! takes an `assume_projection` flag: with it, heads may be left with
//! dangling existential positions (marked by fresh wildcard variables) and
//! the caller MUST run [`crate::projection::push_projections`] afterwards;
//! without it, only components sharing no head variable at all are
//! extracted, and the output is immediately evaluable.

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{Ad, Atom, PredRef, Program, Rule, Term, Var};

use crate::report::{EquivalenceLevel, Phase, Report};
use datalog_trace::PhaseEvent;

/// Result of the components transformation.
#[derive(Debug, Clone)]
pub struct ComponentsResult {
    /// The rewritten program.
    pub program: Program,
    /// The generated boolean predicates.
    pub booleans: Vec<PredRef>,
    /// Whether any head now has a dangling existential variable (requires
    /// projection).
    pub needs_projection: bool,
}

/// Union-find over literal indices.
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Head variables that anchor the head component: with `assume_projection`,
/// only variables in `n` positions (per the paper); otherwise all head
/// variables (safe for standalone use).
fn head_anchor_vars(rule: &Rule, assume_projection: bool) -> BTreeSet<Var> {
    let mut anchors = BTreeSet::new();
    match (&rule.head.pred.adornment, assume_projection) {
        (Some(ad), true) if ad.len() == rule.head.arity() => {
            for (i, t) in rule.head.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    if ad[i] == Ad::N {
                        anchors.insert(*v);
                    }
                }
            }
        }
        _ => {
            anchors.extend(rule.head.var_occurrences());
        }
    }
    anchors
}

/// Pick a boolean predicate name `b1, b2, ...` that is unused in the
/// program so far.
fn fresh_boolean(used: &mut BTreeSet<String>) -> PredRef {
    let mut i = 1;
    loop {
        let name = format!("b{i}");
        if used.insert(name.clone()) {
            return PredRef::new(&name);
        }
        i += 1;
    }
}

/// Apply the §3.1 transformation to every rule. See the module docs for the
/// `assume_projection` contract.
pub fn extract_components(
    program: &Program,
    assume_projection: bool,
    report: &mut Report,
) -> ComponentsResult {
    let mut used_names: BTreeSet<String> = program
        .all_preds()
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    let mut out = Program {
        rules: Vec::new(),
        query: program.query.clone(),
    };
    let mut booleans = Vec::new();
    let mut needs_projection = false;

    for rule in &program.rules {
        // Work over positive and negated literals uniformly; polarity is
        // restored when rebuilding rules.
        let all_lits: Vec<(Atom, bool)> = rule
            .body
            .iter()
            .map(|a| (a.clone(), false))
            .chain(rule.negative.iter().map(|a| (a.clone(), true)))
            .collect();
        let n = all_lits.len();
        if n <= 1 {
            out.rules.push(rule.clone());
            continue;
        }
        // Union literals sharing a variable.
        let mut uf = Uf::new(n);
        let mut first_lit_with: BTreeMap<Var, usize> = BTreeMap::new();
        for (i, (lit, _)) in all_lits.iter().enumerate() {
            for v in lit.var_occurrences() {
                match first_lit_with.get(&v) {
                    Some(&j) => uf.union(i, j),
                    None => {
                        first_lit_with.insert(v, i);
                    }
                }
            }
        }
        // The head component: every component containing an anchor var.
        let anchors = head_anchor_vars(rule, assume_projection);
        let mut head_roots: BTreeSet<usize> = BTreeSet::new();
        for v in &anchors {
            if let Some(&i) = first_lit_with.get(v) {
                head_roots.insert(uf.find(i));
            }
        }
        // Group literals by component root. Literals with no variables
        // (ground literals) are their own components and never connect to
        // the head. Main-body literals keep their original order; extracted
        // components are ordered by first literal.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            groups.entry(uf.find(i)).or_default().push(i);
        }
        let mut main_body: Vec<Atom> = Vec::new();
        let mut main_negative: Vec<Atom> = Vec::new();
        let mut extracted: Vec<Vec<usize>> = Vec::new();
        for (i, (lit, negated)) in all_lits.iter().enumerate() {
            let root = uf.find(i);
            if head_roots.contains(&root) {
                if *negated {
                    main_negative.push(lit.clone());
                } else {
                    main_body.push(lit.clone());
                }
            } else if groups[&root][0] == i {
                extracted.push(groups[&root].clone());
            }
        }
        if extracted.is_empty() {
            out.rules.push(rule.clone());
            continue;
        }
        // Head variables bound only inside extracted components become
        // dangling: replace them with fresh wildcards (projection drops
        // them). Only possible when assume_projection allowed d-anchored
        // components to leave.
        let mut head = rule.head.clone();
        let extracted_lits: BTreeSet<usize> = extracted.iter().flatten().copied().collect();
        let main_vars: BTreeSet<Var> = all_lits
            .iter()
            .enumerate()
            .filter(|(i, _)| !extracted_lits.contains(i))
            .flat_map(|(_, (l, _))| l.var_occurrences())
            .collect();
        for t in head.terms.iter_mut() {
            if let Term::Var(v) = t {
                if !main_vars.contains(v) {
                    *t = Term::Var(Var::fresh_wildcard());
                    needs_projection = true;
                }
            }
        }
        // Build boolean rules and the rewritten main rule.
        let mut new_body = main_body;
        for lits in extracted {
            let b = fresh_boolean(&mut used_names);
            let mut component: Vec<Atom> = lits
                .iter()
                .filter(|&&i| !all_lits[i].1)
                .map(|&i| all_lits[i].0.clone())
                .collect();
            let component_negative: Vec<Atom> = lits
                .iter()
                .filter(|&&i| all_lits[i].1)
                .map(|&i| all_lits[i].0.clone())
                .collect();
            // Variables occurring exactly once within the component are
            // purely existential: render them as wildcards, as the paper's
            // Example 2 does.
            let mut occ: BTreeMap<Var, usize> = BTreeMap::new();
            for a in component.iter().chain(component_negative.iter()) {
                for v in a.var_occurrences() {
                    *occ.entry(v).or_insert(0) += 1;
                }
            }
            for a in component.iter_mut() {
                for t in a.terms.iter_mut() {
                    if let Term::Var(v) = t {
                        if occ[v] == 1 {
                            *t = Term::Var(Var::fresh_wildcard());
                        }
                    }
                }
            }
            let definition = Rule::with_negation(
                Atom::new(b.clone(), vec![]),
                component.clone(),
                component_negative.clone(),
            );
            report.record_event(
                Phase::Components,
                EquivalenceLevel::Uniform,
                format!(
                    "extracted existential subquery {{{}}} as boolean {b}",
                    component
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                PhaseEvent::BooleanExtracted {
                    boolean: b.to_string(),
                    definition: definition.to_string(),
                },
            );
            out.rules.push(definition);
            new_body.push(Atom::new(b.clone(), vec![]));
            booleans.push(b);
        }
        out.rules
            .push(Rule::with_negation(head, new_body, main_negative));
    }
    ComponentsResult {
        program: out,
        booleans,
        needs_projection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn run(src: &str, assume_projection: bool) -> (ComponentsResult, Report) {
        let p = parse_program(src).unwrap().program;
        let mut report = Report::default();
        let r = extract_components(&p, assume_projection, &mut report);
        (r, report)
    }

    /// §1.2's motivating rule: `q(X,Y) :- a(X,Z), q(Z,Y), c(W)` — `c(W)` is
    /// an existential subquery.
    #[test]
    fn motivating_example_extracts_c() {
        let (r, report) = run(
            "q(X, Y) :- a(X, Z), q(Z, Y), c(W).\n\
             q(X, Y) :- b(X, Y).\n\
             ?- q(X, Y).",
            false,
        );
        let text = r.program.to_text();
        assert!(text.contains("b1 :- c(_)."), "{text}");
        assert!(text.contains("q(X, Y) :- a(X, Z), q(Z, Y), b1."), "{text}");
        assert_eq!(r.booleans.len(), 1);
        assert!(!r.needs_projection);
        assert_eq!(report.actions.len(), 1);
        assert_eq!(report.weakest_level(), EquivalenceLevel::Uniform);
    }

    /// Example 2 of the paper: two existential components, one of which
    /// binds the head's `d` argument.
    #[test]
    fn example_2_extracts_two_components() {
        let (r, _) = run(
            "p[nd](X, U) :- q1(X, Y), q2(Y, Z), q3(U, V), q4[n](V), q5(W).\n\
             q4[n](V) :- q6(V).\n\
             ?- p[nd](X, _).",
            true,
        );
        let text = r.program.to_text();
        // q3/q4 leave as one boolean (connected through V), q5 as another.
        assert_eq!(r.booleans.len(), 2);
        assert!(text.contains("b1 :- q3(_, V), q4[n](V)."), "{text}");
        assert!(text.contains("b2 :- q5(_)."), "{text}");
        // The head's U became a dangling wildcard: projection required.
        assert!(r.needs_projection);
        assert!(
            text.contains("p[nd](X, _) :- q1(X, Y), q2(Y, Z), b1, b2."),
            "{text}"
        );
    }

    /// Without assume_projection, a component anchored at a head `d`
    /// variable must stay in place (safety).
    #[test]
    fn head_d_component_stays_without_projection() {
        let (r, _) = run(
            "p[nd](X, U) :- q1(X, Y), q3(U, V), q5(W).\n\
             ?- p[nd](X, _).",
            false,
        );
        let text = r.program.to_text();
        assert_eq!(r.booleans.len(), 1); // only q5 leaves
        assert!(text.contains("b1 :- q5(_)."), "{text}");
        assert!(
            text.contains("p[nd](X, U) :- q1(X, Y), q3(U, V), b1."),
            "{text}"
        );
        assert!(!r.needs_projection);
        r.program.validate().expect("output stays safe");
    }

    #[test]
    fn fully_connected_rule_is_untouched() {
        let (r, report) = run(
            "q(X) :- a(X, Y), b(Y, Z), c(Z).\n\
             ?- q(X).",
            true,
        );
        assert!(r.booleans.is_empty());
        assert_eq!(r.program.rules.len(), 1);
        assert!(report.actions.is_empty());
    }

    #[test]
    fn ground_literal_is_extracted() {
        // A constant-only literal is trivially disconnected.
        let (r, _) = run(
            "q(X) :- a(X), flag(1).\n\
             ?- q(X).",
            false,
        );
        let text = r.program.to_text();
        assert!(text.contains("b1 :- flag(1)."), "{text}");
        assert!(text.contains("q(X) :- a(X), b1."), "{text}");
    }

    #[test]
    fn boolean_names_avoid_collisions() {
        let (r, _) = run(
            "q(X) :- a(X), c(W).\n\
             b1(X) :- a(X).\n\
             ?- q(X).",
            false,
        );
        // `b1` is taken by an existing predicate; the boolean becomes b2.
        assert_eq!(r.booleans[0], PredRef::new("b2"));
    }

    #[test]
    fn single_literal_bodies_are_skipped() {
        let (r, _) = run("q(X) :- a(X).\n?- q(X).", true);
        assert_eq!(r.program.rules.len(), 1);
        assert!(r.booleans.is_empty());
    }

    #[test]
    fn multiple_rules_each_get_own_booleans() {
        let (r, _) = run(
            "q(X) :- a(X), c(W).\n\
             r(X) :- d(X), e(V).\n\
             ?- q(X).",
            false,
        );
        assert_eq!(r.booleans.len(), 2);
        let names: Vec<String> = r.booleans.iter().map(|b| b.to_string()).collect();
        assert_eq!(names, vec!["b1", "b2"]);
    }

    #[test]
    fn boolean_head_extracts_all_components() {
        // A zero-arity head anchors nothing: both components become
        // booleans and the main rule is `ok :- b1, b2.`
        let (r, _) = run(
            "ok :- a(X), c(W).\n\
             ?- ok.",
            false,
        );
        let text = r.program.to_text();
        assert_eq!(r.booleans.len(), 2, "{text}");
        assert!(text.contains("ok :- b1, b2."), "{text}");
        r.program.validate().unwrap();
    }

    #[test]
    fn negated_literals_travel_with_their_component() {
        let (r, _) = run(
            "q(X) :- item(X), audit(A), not revoked(A).\n\
             ?- q(X).",
            false,
        );
        let text = r.program.to_text();
        assert!(text.contains("b1 :- audit(A), not revoked(A)."), "{text}");
        assert!(text.contains("q(X) :- item(X), b1."), "{text}");
    }

    /// Lemma 3.1: the transformation preserves query answers.
    #[test]
    fn equivalence_on_random_instances() {
        use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};
        let p = parse_program(
            "q(X, Y) :- a(X, Z), q(Z, Y), c(W).\n\
             q(X, Y) :- b(X, Y).\n\
             ?- q(X, Y).",
        )
        .unwrap()
        .program;
        let mut report = Report::default();
        let r = extract_components(&p, false, &mut report);
        let w = bounded_equiv_check(&p, &r.program, &EquivCheckConfig::default()).unwrap();
        assert!(w.is_none(), "components changed answers: {w:?}");
    }
}

//! The paper's worked examples as ready-to-parse programs.
//!
//! Each constant is the program text (our syntax: `p[nd]` for the paper's
//! `p^nd`); [`catalog`] lists them all with reconstruction notes. The PODS
//! 1988 scan garbles several examples (especially 7, 8 and 10 — OCR noise
//! in adornments and occurrence numbers); where the literal text is
//! unrecoverable we reconstruct a program that exercises exactly the
//! optimization step the example narrates, and the note says so. Every
//! reconstruction is validated by the integration tests: the optimizer
//! reproduces the paper's claimed outcome, and randomized equivalence
//! checking confirms answers are preserved.

use datalog_ast::{parse_program, Program};

/// Example 1 (§2): right-recursive transitive closure with an existential
/// query; the adornment algorithm produces `a[nd]`.
pub const EXAMPLE_1: &str = "query(X) :- a(X, Y).\n\
                             a(X, Y) :- p(X, Z), a(Z, Y).\n\
                             a(X, Y) :- p(X, Y).\n\
                             ?- query(X).";

/// Example 2 (§3.1): a rule with two existential subqueries (`q3 ⋈ q4` and
/// `q5`) that become boolean components; `q4` is derived.
pub const EXAMPLE_2: &str = "p[nd](X, U) :- q1(X, Y), q2(Y, Z), q3(U, V), q4[n](V), q5(W).\n\
                             q4[n](V) :- q6(V).\n\
                             ?- p[nd](X, _).";

/// Example 3 (§3.2): Example 1 after adornment + projection — the
/// recursive predicate is unary.
pub const EXAMPLE_3: &str = "query[n](X) :- a[nd](X).\n\
                             a[nd](X) :- p(X, Z), a[nd](Z).\n\
                             a[nd](X) :- p(X, Z).\n\
                             ?- query[n](X).";

/// Example 3a (§3.3): the variant whose exit rule uses a different base
/// predicate — the recursive rule is NOT deletable.
pub const EXAMPLE_3A: &str = "a[nd](X) :- p(X, Z), a[nd](Z).\n\
                              a[nd](X) :- p1(X, Z).\n\
                              ?- a[nd](X).";

/// Example 4 (§3.3): Example 3's core, on which Sagiv's uniform test
/// deletes the recursive rule.
pub const EXAMPLE_4: &str = "a[nd](X) :- p(X, Z), a[nd](Z).\n\
                             a[nd](X) :- p(X, Z).\n\
                             ?- a[nd](X).";

/// Example 5 (§3.3): the adorned left-recursive TC. No rule is deletable
/// under uniform equivalence.
pub const EXAMPLE_5: &str = "a[nd](X) :- a[nn](X, Z), p(Z, Y).\n\
                             a[nd](X) :- p(X, Y).\n\
                             a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
                             a[nn](X, Y) :- p(X, Y).\n\
                             ?- a[nd](X).";

/// Example 6 (§4): same program; uniform *query* equivalence reduces it to
/// the single exit rule `a[nd](X) :- p(X, Y)`.
pub const EXAMPLE_6: &str = EXAMPLE_5;

/// Example 6's optimized result, as printed in the paper.
pub const EXAMPLE_6_OPTIMIZED: &str = "a[nd](X) :- p(X, Y).\n\
                                       ?- a[nd](X).";

/// Example 7 (§5) — reconstruction (the scan's adornments are corrupt).
/// Structure preserved: a unit rule `p[nd] :- p[nn]`, an auxiliary `p1`
/// defined from both `p[nn]` and `p[nd]`, and base relations `b1..b4`.
/// Lemma 5.1 (with the trivial identity) deletes both `p1` rules; cleanups
/// then collapse the program to three rules; the residual redundancy of
/// `p[nd](X) :- b1(X, Y)` is invisible to the summary procedure, exactly as
/// the paper notes.
pub const EXAMPLE_7: &str = "p[nd](X) :- p[nn](X, Y).\n\
                             p[nd](X) :- p1[nn](X, Z).\n\
                             p[nd](X) :- b1(X, Y).\n\
                             p[nn](X, Y) :- p1[nn](X, Z), b4(Z, Y).\n\
                             p[nn](X, Y) :- b1(X, Y).\n\
                             p1[nn](X, Z) :- p[nn](X, U), b2(U, W, Z).\n\
                             p1[nn](X, Z) :- p[nd](X), b3(U, W, Z).\n\
                             ?- p[nd](X).";

/// Example 8 (§5) — reconstruction. The only recursion is through `p1`,
/// which has no exit rule: after Lemma 5.1 deletes the `p1`-from-`p[nn]`
/// rule, emptiness analysis collapses the entire program — "the set of
/// answers is seen to be empty".
pub const EXAMPLE_8: &str = "p[nd](X) :- p[nn](X, Y).\n\
                             p[nd](X) :- p1[nnn](X, Z, U), g1(Z, U).\n\
                             p[nn](X, Y) :- p1[nnn](X, Z, U), g2(Z, U, Y).\n\
                             p1[nnn](X, Z, U) :- p1[nnn](X, Z1, U1), g3(Z1, U1, Z, U).\n\
                             p1[nnn](X, Z, U) :- p[nn](X, Y), g4(W, Z, U).\n\
                             ?- p[nd](X).";

/// Example 9 (§5): rules deletable under uniform query equivalence that the
/// summary technique cannot see (no unit rule covers the extra literals).
pub const EXAMPLE_9: &str = "pq[nd](X) :- pn[nn](X, Y), g3(Y, Z, U).\n\
                             pq[nd](X) :- p1[nnn](X, Z, U), g1(Z, U, Y).\n\
                             p1[nnn](X, Z, U) :- pn[nn](X, W), g2(W, Z, U).\n\
                             p1[nnn](X, Z, U) :- pn[nn](X, V), g3(V, Z, U), g4(U, W).\n\
                             pn[nn](X, Y) :- b(X, Y).\n\
                             ?- pq[nd](X).";

/// Example 10 (§5) — reconstruction. A swap cycle: occurrences carry both
/// the straight and the swapped summary, so Lemma 5.1 (one unit rule) fails
/// but Lemma 5.3 (closed set of unit summaries) deletes the guarded swap
/// rule.
pub const EXAMPLE_10: &str = "p[nnd](X, Y) :- p1[nn](X, Y).\n\
                              p[nnd](X, Y) :- p1[nn](Y, X).\n\
                              p1[nn](X, Y) :- b(X, Y).\n\
                              p1[nn](X, Y) :- p1[nn](Y, X).\n\
                              p1[nn](X, Y) :- p1[nn](Y, X), big(W).\n\
                              ?- p[nnd](X, Y).";

/// Example 11 (§6): Example 9 after the folding rewrite that names the
/// conjunction `pn ⋈ g3` as `q` and folds the last rule through it — now a
/// unit rule (`pq :- q`) exists and Lemma 5.1 deletes the g4-guarded rule.
/// `datalog-opt::fold` performs both halves mechanically (see its tests).
pub const EXAMPLE_11: &str = "pq[nd](X) :- q[nnn](X, Z, U).\n\
                              q[nnn](X, Z, U) :- pn[nn](X, Y), g3(Y, Z, U).\n\
                              pq[nd](X) :- p1[nnn](X, Z, U), g1(Z, U, Y).\n\
                              p1[nnn](X, Z, U) :- pn[nn](X, W), g2(W, Z, U).\n\
                              p1[nnn](X, Z, U) :- q[nnn](X, Z, U), g4(U, W).\n\
                              pn[nn](X, Y) :- b(X, Y).\n\
                              ?- pq[nd](X).";

/// Example 12 (§6): the up/dn program whose recursive predicate carries a
/// third argument only to check `c(Z)`. The adorned program — note the
/// recursive occurrence is `p[nnn]`: `Z` is used by `c(Z)` in the same
/// body, so the adornment algorithm cannot mark it don't-care, and "the
/// process of pushing projection is not very useful" (the recursion stays
/// ternary).
pub const EXAMPLE_12_ADORNED: &str = "query[nn](X, Y) :- p[nnd](X, Y, Z).\n\
     p[nnd](X, Y, Z) :- up(X, X1), p[nnn](X1, Y1, Z), dn(Y1, Y), c(Z).\n\
     p[nnd](X, Y, Z) :- b(X, Y, Z).\n\
     p[nnn](X, Y, Z) :- up(X, X1), p[nnn](X1, Y1, Z), dn(Y1, Y), c(Z).\n\
     p[nnn](X, Y, Z) :- b(X, Y, Z).\n\
     ?- query[nn](X, Y).";

/// Example 12's transformed program: the `c(Z)` test moves to the exit
/// rule, the recursion drops to binary. Preserves uniform query
/// equivalence; our integration tests check equivalence on random
/// instances and the benches measure the arity win (experiment E5).
pub const EXAMPLE_12_TRANSFORMED: &str = "query[nn](X, Y) :- p[nn](X, Y).\n\
     query[nn](X, Y) :- b(X, Y, Z).\n\
     p[nn](X, Y) :- up(X, X1), p[nn](X1, Y1), dn(Y1, Y).\n\
     p[nn](X, Y) :- b(X, Y, Z), c(Z).\n\
     ?- query[nn](X, Y).";

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct PaperExample {
    /// Identifier, e.g. "example_7".
    pub name: &'static str,
    /// Program text.
    pub text: &'static str,
    /// What the paper uses it to show, plus reconstruction provenance.
    pub note: &'static str,
    /// Whether the text is reconstructed rather than verbatim (the scan's
    /// adornments/occurrence numbers are corrupt for these).
    pub reconstructed: bool,
}

/// All examples, in paper order.
pub fn catalog() -> Vec<PaperExample> {
    vec![
        PaperExample {
            name: "example_1",
            text: EXAMPLE_1,
            note: "adornment produces a[nd] (right-recursive TC)",
            reconstructed: false,
        },
        PaperExample {
            name: "example_2",
            text: EXAMPLE_2,
            note: "boolean extraction of two existential subqueries",
            reconstructed: false,
        },
        PaperExample {
            name: "example_3",
            text: EXAMPLE_3,
            note: "projection pushed through recursion: unary TC",
            reconstructed: false,
        },
        PaperExample {
            name: "example_3a",
            text: EXAMPLE_3A,
            note: "negative case: different exit predicate blocks deletion",
            reconstructed: false,
        },
        PaperExample {
            name: "example_4",
            text: EXAMPLE_4,
            note: "Sagiv's uniform test deletes the recursive rule",
            reconstructed: false,
        },
        PaperExample {
            name: "example_5",
            text: EXAMPLE_5,
            note: "uniform equivalence deletes nothing (left-recursive TC)",
            reconstructed: false,
        },
        PaperExample {
            name: "example_6",
            text: EXAMPLE_6,
            note: "uniform query equivalence reduces to the exit rule",
            reconstructed: false,
        },
        PaperExample {
            name: "example_7",
            text: EXAMPLE_7,
            note: "Lemma 5.1 + trivial identity delete the p1 rules; the b1 \
                   rule's redundancy is invisible to summaries",
            reconstructed: true,
        },
        PaperExample {
            name: "example_8",
            text: EXAMPLE_8,
            note: "deletion + emptiness: the whole program collapses",
            reconstructed: true,
        },
        PaperExample {
            name: "example_9",
            text: EXAMPLE_9,
            note: "summary technique too weak without folding",
            reconstructed: false,
        },
        PaperExample {
            name: "example_10",
            text: EXAMPLE_10,
            note: "Lemma 5.3 (set of unit rules) strictly beats Lemma 5.1",
            reconstructed: true,
        },
        PaperExample {
            name: "example_11",
            text: EXAMPLE_11,
            note: "folding manufactures the unit rule Example 9 lacked",
            reconstructed: false,
        },
        PaperExample {
            name: "example_12_adorned",
            text: EXAMPLE_12_ADORNED,
            note: "literal motion reduces recursive arity (future work)",
            reconstructed: false,
        },
        PaperExample {
            name: "example_12_transformed",
            text: EXAMPLE_12_TRANSFORMED,
            note: "Example 12 after the transformation",
            reconstructed: false,
        },
    ]
}

/// Parse one example by name.
pub fn parse_example(name: &str) -> Option<Program> {
    catalog().into_iter().find(|e| e.name == name).map(|e| {
        parse_program(e.text)
            .expect("catalog programs parse")
            .program
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_parse_and_validate() {
        for e in catalog() {
            let parsed = parse_program(e.text)
                .unwrap_or_else(|err| panic!("{} fails to parse: {err}", e.name));
            parsed
                .program
                .validate()
                .unwrap_or_else(|err| panic!("{} invalid: {err}", e.name));
            assert!(parsed.program.query.is_some(), "{} has no query", e.name);
        }
    }

    #[test]
    fn parse_example_by_name() {
        assert!(parse_example("example_1").is_some());
        assert!(parse_example("example_7").is_some());
        assert!(parse_example("nonexistent").is_none());
    }

    #[test]
    fn catalog_is_complete_and_ordered() {
        let names: Vec<&str> = catalog().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 14);
        assert_eq!(names[0], "example_1");
        assert!(names.contains(&"example_12_transformed"));
    }

    /// Example 12's two programs are query-equivalent (the claim of §6).
    #[test]
    fn example_12_transformation_is_equivalent() {
        use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};
        let adorned = parse_example("example_12_adorned").unwrap();
        let transformed = parse_example("example_12_transformed").unwrap();
        let w = bounded_equiv_check(&adorned, &transformed, &EquivCheckConfig::default()).unwrap();
        assert!(
            w.is_none(),
            "Example 12 transformation changed answers: {w:?}"
        );
    }
}

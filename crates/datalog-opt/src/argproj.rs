//! Argument projections and summaries (§5 of the paper).
//!
//! An *argument projection* `(p^a, p1^a1)` is a bipartite graph whose nodes
//! are the needed (`n`) argument positions of the two adorned literals and
//! whose edges connect positions sharing a variable in some rule (head vs
//! one derived body occurrence). Projections compose by merging the middle
//! literal's nodes; the *summary* of a composition keeps an edge wherever a
//! path existed. Because edges only record variable *equality*, an edge in
//! a summary certifies that in every instantiation of that rule chain, the
//! corresponding argument values are equal.
//!
//! Algorithm 5.1 closes a finite set of projections under composition —
//! the key to handling recursion: there may be infinitely many composite
//! chains but only finitely many summaries.
//!
//! Positions are indexed over the needed positions only (`0..needed_count`),
//! which makes the machinery agnostic to whether the program has already
//! been projected (§3.2) or still carries its `d` arguments.

use std::collections::BTreeSet;

use datalog_ast::{Ad, Atom, PredRef, Rule, Term, Var};

/// A (summary of a) composite argument projection from `src` to `dst`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArgProj {
    /// Source adorned predicate (e.g. the query predicate).
    pub src: PredRef,
    /// Destination adorned predicate (a body occurrence's predicate).
    pub dst: PredRef,
    /// Edges `(src needed-position, dst needed-position)`.
    pub edges: BTreeSet<(usize, usize)>,
}

impl ArgProj {
    /// The identity projection on a predicate with `n` needed positions —
    /// the argument projection of the trivial unit rule `p(t) :- p(t)`
    /// that Example 7 of the paper appeals to.
    pub fn identity(pred: PredRef, n: usize) -> ArgProj {
        ArgProj {
            src: pred.clone(),
            dst: pred,
            edges: (0..n).map(|i| (i, i)).collect(),
        }
    }

    /// Compose: `(self.src → self.dst)` then `(other.src → other.dst)`,
    /// requiring `self.dst == other.src`. The summary keeps edge `(i, k)`
    /// iff some `j` has `(i, j) ∈ self` and `(j, k) ∈ other`.
    pub fn compose(&self, other: &ArgProj) -> Option<ArgProj> {
        if self.dst != other.src {
            return None;
        }
        let mut edges = BTreeSet::new();
        for &(i, j) in &self.edges {
            for &(j2, k) in &other.edges {
                if j == j2 {
                    edges.insert((i, k));
                }
            }
        }
        Some(ArgProj {
            src: self.src.clone(),
            dst: other.dst.clone(),
            edges,
        })
    }
}

impl std::fmt::Display for ArgProj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -> {}):", self.src, self.dst)?;
        for (i, j) in &self.edges {
            write!(f, " {i}~{j}")?;
        }
        Ok(())
    }
}

/// Positions of an atom's needed arguments, as `(needed-index, variable)`
/// pairs. For an unadorned atom every position is needed. Handles both
/// pre-projection atoms (argument count = adornment length) and projected
/// atoms (argument count = needed count).
pub fn needed_vars(atom: &Atom) -> Vec<(usize, Var)> {
    let mut out = Vec::new();
    match &atom.pred.adornment {
        Some(ad) if atom.arity() == ad.len() && !ad.is_all_needed() => {
            let mut ni = 0;
            for (i, t) in atom.terms.iter().enumerate() {
                if ad[i] == Ad::N {
                    if let Term::Var(v) = t {
                        out.push((ni, *v));
                    }
                    ni += 1;
                }
            }
        }
        _ => {
            for (i, t) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    out.push((i, *v));
                }
            }
        }
    }
    out
}

/// The argument projection of one rule between its head and the body
/// literal at `lit_idx`.
pub fn rule_projection(rule: &Rule, lit_idx: usize) -> ArgProj {
    let head = needed_vars(&rule.head);
    let lit = &rule.body[lit_idx];
    let body = needed_vars(lit);
    let mut edges = BTreeSet::new();
    for &(i, hv) in &head {
        for &(j, bv) in &body {
            if hv == bv {
                edges.insert((i, j));
            }
        }
    }
    ArgProj {
        src: rule.head.pred.clone(),
        dst: lit.pred.clone(),
        edges,
    }
}

/// Algorithm 5.1: close a set of argument projections under composition.
/// Terminates because summaries over fixed predicates form a finite set.
pub fn close_summaries(initial: &BTreeSet<ArgProj>) -> BTreeSet<ArgProj> {
    let mut set = initial.clone();
    loop {
        let mut additions = Vec::new();
        for a in &set {
            for b in &set {
                if let Some(c) = a.compose(b) {
                    if !set.contains(&c) {
                        additions.push(c);
                    }
                }
            }
        }
        if additions.is_empty() {
            return set;
        }
        set.extend(additions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_rule;

    fn proj(src: &str, dst: &str, edges: &[(usize, usize)]) -> ArgProj {
        ArgProj {
            src: datalog_ast::parse_atom(src).unwrap().pred,
            dst: datalog_ast::parse_atom(dst).unwrap().pred,
            edges: edges.iter().copied().collect(),
        }
    }

    #[test]
    fn rule_projection_basic() {
        // p[nd](X) :- p1[nn](X, Z): edge between head pos 0 and body pos 0.
        let r = parse_rule("p[nd](X) :- p1[nn](X, Z)").unwrap();
        let ap = rule_projection(&r, 0);
        assert_eq!(ap.edges, [(0, 0)].into());
        assert_eq!(ap.src, datalog_ast::PredRef::adorned("p", "nd"));
        assert_eq!(ap.dst, datalog_ast::PredRef::adorned("p1", "nn"));
    }

    #[test]
    fn d_positions_are_skipped_preprojection() {
        // Pre-projection form: a[nd](X, Y) has 2 args; only X is a node.
        let r = parse_rule("a[nd](X, Y) :- p[nn](Y, X)").unwrap();
        let ap = rule_projection(&r, 0);
        // Head needed positions: {0: X}. Body: {0: Y, 1: X}. X~X: (0, 1).
        assert_eq!(ap.edges, [(0, 1)].into());
    }

    #[test]
    fn repeated_variables_give_multiple_edges() {
        let r = parse_rule("q[nn](X, X) :- s[nn](X, W)").unwrap();
        let ap = rule_projection(&r, 0);
        assert_eq!(ap.edges, [(0, 0), (1, 0)].into());
    }

    #[test]
    fn composition_is_relational() {
        let ab = proj("a[nn](X, Y)", "b[nn](X, Y)", &[(0, 1), (1, 0)]);
        let bc = proj("b[nn](X, Y)", "c[nn](X, Y)", &[(0, 1), (1, 0)]);
        let ac = ab.compose(&bc).unwrap();
        // Swap composed with swap is identity.
        assert_eq!(ac.edges, [(0, 0), (1, 1)].into());
        assert_eq!(ac.src, datalog_ast::PredRef::adorned("a", "nn"));
        assert_eq!(ac.dst, datalog_ast::PredRef::adorned("c", "nn"));
        // Mismatched middle: no composition.
        assert!(bc.compose(&ab.compose(&bc).unwrap()).is_none());
    }

    #[test]
    fn composition_drops_unmatched_edges() {
        let ab = proj("a[nn](X, Y)", "b[nn](X, Y)", &[(0, 0)]);
        let bc = proj("b[nn](X, Y)", "c[nn](X, Y)", &[(1, 1)]);
        let ac = ab.compose(&bc).unwrap();
        assert!(ac.edges.is_empty(), "no path from 0 to anything");
    }

    #[test]
    fn identity_is_neutral() {
        let id = ArgProj::identity(datalog_ast::PredRef::adorned("a", "nn"), 2);
        let ab = proj("a[nn](X, Y)", "b[nn](X, Y)", &[(0, 1)]);
        assert_eq!(id.compose(&ab).unwrap(), ab);
    }

    #[test]
    fn closure_generates_swap_group() {
        // The swap projection on a binary predicate generates {swap, id}.
        let swap = proj("a[nn](X, Y)", "a[nn](X, Y)", &[(0, 1), (1, 0)]);
        let closed = close_summaries(&[swap.clone()].into());
        assert_eq!(closed.len(), 2);
        assert!(closed.contains(&swap));
        assert!(closed.contains(&ArgProj::identity(
            datalog_ast::PredRef::adorned("a", "nn"),
            2
        )));
    }

    #[test]
    fn closure_terminates_on_edge_dropping_cycles() {
        // A projection that loses an edge each round still terminates (the
        // empty-edge projection absorbs).
        let lossy = proj("a[nn](X, Y)", "a[nn](X, Y)", &[(0, 1)]);
        let closed = close_summaries(&[lossy.clone()].into());
        assert_eq!(closed.len(), 2);
        assert!(
            closed.iter().any(|p| p.edges.is_empty()),
            "lossy ∘ lossy has no edges"
        );
    }

    #[test]
    fn needed_vars_postprojection_form() {
        // Projected atom: a[nd](X) — one argument, adornment length 2.
        let a = datalog_ast::parse_atom("a[nd](X)").unwrap();
        let nv = needed_vars(&a);
        assert_eq!(nv, vec![(0, Var::new("X"))]);
        // Constants yield no nodes.
        let c = datalog_ast::parse_atom("a[nn](X, 3)").unwrap();
        assert_eq!(needed_vars(&c).len(), 1);
    }
}

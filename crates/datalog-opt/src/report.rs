//! Optimization reports: every action the optimizer takes is recorded with
//! the *equivalence level* it preserves.
//!
//! The paper's §4 distinguishes four notions of equivalence. The optimizer
//! is honest about which one each action preserves: Sagiv deletions preserve
//! uniform equivalence; summary-based deletions (Lemma 5.1/5.3) preserve
//! uniform *query* equivalence; cleanups that exploit "IDB predicates start
//! empty" (undefined/unreachable/unproductive predicates, cover unit rules)
//! only preserve plain query equivalence — which is exactly what a query
//! optimizer needs, but worth recording. The weakest level used bounds the
//! guarantee of the whole pipeline.

use datalog_ast::Program;
use datalog_trace::{Json, PhaseEvent};

/// Which equivalence notion an action preserves (strongest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EquivalenceLevel {
    /// All predicates, arbitrary inputs (Sagiv).
    Uniform,
    /// Query predicate only, arbitrary inputs (§4 of the paper).
    UniformQuery,
    /// Query predicate only, IDB-empty inputs (ordinary query equivalence).
    Query,
}

impl std::fmt::Display for EquivalenceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceLevel::Uniform => write!(f, "uniform"),
            EquivalenceLevel::UniformQuery => write!(f, "uniform-query"),
            EquivalenceLevel::Query => write!(f, "query"),
        }
    }
}

/// Which phase of the optimizer acted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// §2 adornment.
    Adorn,
    /// §3.1 connected components / boolean extraction.
    Components,
    /// §3.2 projection pushing.
    Projection,
    /// §5 summary-based rule deletion (Lemmas 5.1/5.3).
    SummaryDeletion,
    /// Sagiv's uniform-equivalence deletion (Example 4).
    UniformDeletion,
    /// The paper's uniform-query-equivalence deletion (Example 6).
    UqeDeletion,
    /// Cleanups: unreachable / undefined / unproductive predicates.
    Cleanup,
    /// Unit-rule introduction via the `covers` relation (§5).
    UnitRules,
    /// Static size-bound analysis of the optimized program
    /// (`datalog-lint`'s derivation-bound abstract interpretation).
    Bounds,
    /// Translation validation (`datalog-lint`'s independent re-checks).
    Validation,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Adorn => "adorn",
            Phase::Components => "components",
            Phase::Projection => "projection",
            Phase::SummaryDeletion => "summary-deletion",
            Phase::UniformDeletion => "uniform-deletion",
            Phase::UqeDeletion => "uqe-deletion",
            Phase::Cleanup => "cleanup",
            Phase::UnitRules => "unit-rules",
            Phase::Bounds => "bounds",
            Phase::Validation => "validation",
        };
        f.write_str(s)
    }
}

/// One recorded optimizer action.
#[derive(Debug, Clone)]
pub struct Action {
    /// The phase that acted.
    pub phase: Phase,
    /// Human-readable description ("deleted rule: ...").
    pub description: String,
    /// Equivalence level preserved by this action.
    pub level: EquivalenceLevel,
    /// What changed, as structured data (a [`PhaseEvent::Note`] when the
    /// phase had nothing structural to say).
    pub event: PhaseEvent,
}

/// The program as it stood at one phase boundary, for translation
/// validation: the validator re-checks each phase against the snapshot
/// pair around it and replays the deletion events from the last rewrite
/// snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Boundary name: `"input"`, `"adorned"`, `"components"`,
    /// `"projected"`, `"deletions"` (pre-deletion-loop), `"final"`.
    pub stage: &'static str,
    /// The program at that boundary.
    pub program: Program,
    /// `actions.len()` at snapshot time — actions recorded after this
    /// index happened after the boundary.
    pub at_action: usize,
}

/// The full report of one optimization run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Actions in the order they were taken.
    pub actions: Vec<Action>,
    /// Rule count before optimization.
    pub rules_before: usize,
    /// Rule count after optimization.
    pub rules_after: usize,
    /// Phase-boundary program snapshots, in pipeline order.
    pub snapshots: Vec<Snapshot>,
}

impl Report {
    /// Record a phase-boundary snapshot of the program.
    pub fn snapshot(&mut self, stage: &'static str, program: &Program) {
        self.snapshots.push(Snapshot {
            stage,
            program: program.clone(),
            at_action: self.actions.len(),
        });
    }

    /// The snapshot recorded at the named boundary, if the phase ran.
    pub fn snapshot_at(&self, stage: &str) -> Option<&Snapshot> {
        self.snapshots.iter().find(|s| s.stage == stage)
    }

    /// Record an action with only a prose description; the structured event
    /// becomes a [`PhaseEvent::Note`]. Prefer [`Report::record_event`] when
    /// the change has structure worth keeping.
    pub fn record(
        &mut self,
        phase: Phase,
        level: EquivalenceLevel,
        description: impl Into<String>,
    ) {
        let description = description.into();
        let event = PhaseEvent::Note {
            text: description.clone(),
        };
        self.actions.push(Action {
            phase,
            description,
            level,
            event,
        });
    }

    /// Record an action along with the typed [`PhaseEvent`] describing it.
    pub fn record_event(
        &mut self,
        phase: Phase,
        level: EquivalenceLevel,
        description: impl Into<String>,
        event: PhaseEvent,
    ) {
        self.actions.push(Action {
            phase,
            description: description.into(),
            level,
            event,
        });
    }

    /// The structured events in recording order.
    pub fn events(&self) -> impl Iterator<Item = &PhaseEvent> {
        self.actions.iter().map(|a| &a.event)
    }

    /// JSON object for export: totals, weakest level, and the full action
    /// list with typed events.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("rules_before", self.rules_before)
            .with("rules_after", self.rules_after)
            .with("weakest_level", self.weakest_level().to_string())
            .with(
                "actions",
                Json::Arr(
                    self.actions
                        .iter()
                        .map(|a| {
                            Json::obj()
                                .with("phase", a.phase.to_string())
                                .with("level", a.level.to_string())
                                .with("description", a.description.as_str())
                                .with("event", a.event.to_json())
                        })
                        .collect(),
                ),
            )
    }

    /// The weakest equivalence level used (or `Uniform` if nothing weaker
    /// was needed). This bounds the end-to-end guarantee.
    pub fn weakest_level(&self) -> EquivalenceLevel {
        self.actions
            .iter()
            .map(|a| a.level)
            .max()
            .unwrap_or(EquivalenceLevel::Uniform)
    }

    /// Number of rule deletions recorded.
    pub fn deletions(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| {
                matches!(
                    a.phase,
                    Phase::SummaryDeletion
                        | Phase::UniformDeletion
                        | Phase::UqeDeletion
                        | Phase::Cleanup
                )
            })
            .count()
    }

    /// Render one action per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rules: {} -> {} (weakest level preserved: {})",
            self.rules_before,
            self.rules_after,
            self.weakest_level()
        );
        for a in &self.actions {
            let _ = writeln!(out, "[{} | {}] {}", a.phase, a.level, a.description);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_strongest_first() {
        assert!(EquivalenceLevel::Uniform < EquivalenceLevel::UniformQuery);
        assert!(EquivalenceLevel::UniformQuery < EquivalenceLevel::Query);
    }

    #[test]
    fn weakest_level_aggregates() {
        let mut r = Report::default();
        assert_eq!(r.weakest_level(), EquivalenceLevel::Uniform);
        r.record(Phase::UniformDeletion, EquivalenceLevel::Uniform, "a");
        assert_eq!(r.weakest_level(), EquivalenceLevel::Uniform);
        r.record(Phase::SummaryDeletion, EquivalenceLevel::UniformQuery, "b");
        assert_eq!(r.weakest_level(), EquivalenceLevel::UniformQuery);
        r.record(Phase::Cleanup, EquivalenceLevel::Query, "c");
        assert_eq!(r.weakest_level(), EquivalenceLevel::Query);
        assert_eq!(r.deletions(), 3);
    }

    #[test]
    fn report_renders() {
        let mut r = Report {
            rules_before: 5,
            rules_after: 2,
            ..Report::default()
        };
        r.record(
            Phase::Projection,
            EquivalenceLevel::UniformQuery,
            "projected a[nd]",
        );
        let text = r.to_text();
        assert!(text.contains("5 -> 2"));
        assert!(text.contains("[projection | uniform-query] projected a[nd]"));
    }

    #[test]
    fn record_event_carries_structure_and_json_exports_it() {
        let mut r = Report::default();
        r.record(Phase::Adorn, EquivalenceLevel::Uniform, "plain note");
        r.record_event(
            Phase::Projection,
            EquivalenceLevel::UniformQuery,
            "reduced a[nd]: arity 2 -> 1",
            PhaseEvent::ArityReduced {
                pred: "a[nd]".into(),
                before: 2,
                after: 1,
            },
        );
        let events: Vec<&PhaseEvent> = r.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "note");
        assert_eq!(events[1].kind(), "arity-reduced");
        let s = r.to_json().to_string();
        assert!(s.contains("\"weakest_level\":\"uniform-query\""), "{s}");
        assert!(s.contains("\"type\":\"arity-reduced\""), "{s}");
        assert!(s.contains("\"before\":2"), "{s}");
    }
}

//! Phase 3 (§5): summary-based rule deletion — Algorithm 5.2, justified by
//! Lemma 5.1 (one unit rule) generalized by Lemma 5.3 (a closed set of
//! unit-rule summaries).
//!
//! The test for deleting the rule containing occurrence `p.n^c`:
//!
//! 1. compute, for every body occurrence, the set of summaries of all
//!    composite argument projections from the query predicate down to that
//!    occurrence (a fixpoint — recursion yields infinitely many chains but
//!    finitely many summaries);
//! 2. close the argument projections of the program's *unit rules* (plus
//!    the trivial identity `q(t) :- q(t)` of Example 7) under composition
//!    (Algorithm 5.1), **excluding the candidate rule itself** — a rule
//!    must not justify its own deletion;
//! 3. if every summary reaching some occurrence of the candidate rule
//!    equals a closed unit summary with matching endpoints, delete the
//!    rule: any derivation of a query fact through it can be replayed
//!    through the unit chain (the paper's Lemma 5.1 proof sketch).
//!
//! Deletions here preserve **uniform query equivalence**. The optional
//! *cover* unit rules (`q^a(t) :- q^a1(t1)` whenever `a1` covers `a`, §5)
//! preserve only plain query equivalence, and are kept only when they pay
//! for themselves by enabling at least two further deletions; with them
//! this phase reproduces the paper's Example 6 end-to-end (see tests).

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{Atom, PredRef, Program, Rule, Term, Var};

use crate::argproj::{close_summaries, rule_projection, ArgProj};
use crate::cleanup::cleanup;
use crate::report::{EquivalenceLevel, Phase, Report};
use crate::OptError;
use datalog_trace::PhaseEvent;

/// Configuration for summary-based deletion.
#[derive(Debug, Clone)]
pub struct SummaryConfig {
    /// Include the trivial identity unit rule `q(t) :- q(t)` (Example 7).
    pub use_trivial_identity: bool,
    /// Try adding cover unit rules for the query predicate (§5; enables
    /// Example 6). Each added rule is kept only if it unlocks at least two
    /// deletions.
    pub add_cover_unit_rules: bool,
    /// Run the cleanup passes between deletions.
    pub run_cleanups: bool,
}

impl Default for SummaryConfig {
    fn default() -> SummaryConfig {
        SummaryConfig {
            use_trivial_identity: true,
            add_cover_unit_rules: true,
            run_cleanups: true,
        }
    }
}

/// Needed-position count for every predicate occurring in the program.
fn needed_counts(program: &Program) -> Result<BTreeMap<PredRef, usize>, OptError> {
    let arities = program.arities().map_err(OptError::Ast)?;
    Ok(arities
        .into_iter()
        .map(|(p, arity)| {
            let n = match &p.adornment {
                Some(ad) => ad.needed_count(),
                None => arity,
            };
            (p, n)
        })
        .collect())
}

/// Compute, for every body occurrence `(rule, lit)`, the set of summaries
/// of composite argument projections from the query predicate to it.
fn occurrence_summaries(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    query_pred: &PredRef,
    n_query: usize,
) -> BTreeMap<(usize, usize), BTreeSet<ArgProj>> {
    let mut head_sums: BTreeMap<PredRef, BTreeSet<ArgProj>> = BTreeMap::new();
    head_sums
        .entry(query_pred.clone())
        .or_default()
        .insert(ArgProj::identity(query_pred.clone(), n_query));
    let mut occ: BTreeMap<(usize, usize), BTreeSet<ArgProj>> = BTreeMap::new();
    loop {
        let mut changed = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            let Some(sums) = head_sums.get(&rule.head.pred).cloned() else {
                continue;
            };
            for li in 0..rule.body.len() {
                // The paper defines argument projections between the head
                // and each *derived* literal occurrence only — base-literal
                // occurrences never justify a deletion (this is exactly why
                // Example 7's residual rule survives).
                if !derived.contains(&rule.body[li].pred) {
                    continue;
                }
                let ap = rule_projection(rule, li);
                for s in &sums {
                    if let Some(t) = s.compose(&ap) {
                        if occ.entry((ri, li)).or_default().insert(t.clone()) {
                            changed = true;
                        }
                        changed |= head_sums.entry(t.dst.clone()).or_default().insert(t);
                    }
                }
            }
        }
        if !changed {
            return occ;
        }
    }
}

/// One summary-deletion pass: find the first rule deletable by
/// Lemma 5.3 and return its index.
fn find_deletable(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    query_pred: &PredRef,
    n_query: usize,
    cfg: &SummaryConfig,
) -> Option<(usize, usize)> {
    let occ = occurrence_summaries(program, derived, query_pred, n_query);
    // Unit-rule argument projections per rule index.
    let unit_aps: Vec<(usize, ArgProj)> = program
        .rules
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_unit())
        .map(|(i, r)| (i, rule_projection(r, 0)))
        .collect();
    for (ri, _rule) in program.rules.iter().enumerate() {
        // Closed unit summaries, excluding the candidate itself.
        let mut s1: BTreeSet<ArgProj> = unit_aps
            .iter()
            .filter(|(ui, _)| *ui != ri)
            .map(|(_, ap)| ap.clone())
            .collect();
        if cfg.use_trivial_identity {
            s1.insert(ArgProj::identity(query_pred.clone(), n_query));
        }
        let s2 = close_summaries(&s1);
        for li in 0..program.rules[ri].body.len() {
            let Some(sums) = occ.get(&(ri, li)) else {
                continue; // unreachable occurrence: cleanup's job
            };
            if sums.is_empty() {
                continue;
            }
            let all_covered = sums.iter().all(|s| s2.contains(s));
            if all_covered {
                return Some((ri, li));
            }
        }
    }
    None
}

/// Build the cover unit rules for the query predicate: for every adorned
/// version `q^a1` present in the program that covers the query's adornment
/// `a`, the rule `q^a(t) :- q^a1(t1)` (§5). Only supported for programs in
/// projected form.
fn cover_unit_rules(program: &Program, query_pred: &PredRef) -> Vec<Rule> {
    let Some(a) = &query_pred.adornment else {
        return Vec::new();
    };
    let Ok(arities) = program.arities() else {
        return Vec::new();
    };
    // Projected form check for the query pred.
    match arities.get(query_pred) {
        Some(&k) if k == a.needed_count() => {}
        _ => return Vec::new(),
    }
    let mut out = Vec::new();
    for p in program.all_preds() {
        if p.name != query_pred.name || p == *query_pred {
            continue;
        }
        let Some(a1) = &p.adornment else { continue };
        if !a.is_covered_by(a1) {
            continue;
        }
        match arities.get(&p) {
            Some(&k1) if k1 == a1.needed_count() => {}
            _ => continue,
        }
        // Head: variables for the needed positions of `a`.
        // Body: same variable where a position is needed in both, fresh
        // variables for positions needed only in `a1`.
        let a_needed: BTreeSet<usize> = a.needed_positions().into_iter().collect();
        let head_terms: Vec<Term> = a
            .needed_positions()
            .iter()
            .map(|i| Term::Var(Var::new(&format!("V{i}"))))
            .collect();
        let body_terms: Vec<Term> = a1
            .needed_positions()
            .iter()
            .map(|i| {
                if a_needed.contains(i) {
                    Term::Var(Var::new(&format!("V{i}")))
                } else {
                    Term::Var(Var::fresh_wildcard())
                }
            })
            .collect();
        out.push(Rule::new(
            Atom::new(query_pred.clone(), head_terms),
            vec![Atom::new(p.clone(), body_terms)],
        ));
    }
    out
}

/// Run summary-based deletion (Algorithm 5.2 with Lemma 5.3) to a fixpoint,
/// interleaved with cleanups.
pub fn summary_deletion(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    cfg: &SummaryConfig,
    report: &mut Report,
) -> Result<Program, OptError> {
    let query_pred = program
        .query
        .as_ref()
        .ok_or(OptError::Ast(datalog_ast::AstError::NoQuery))?
        .atom
        .pred
        .clone();
    let needed = needed_counts(program)?;
    let n_query = needed.get(&query_pred).copied().unwrap_or(0);

    let mut current = run_to_fixpoint(program, derived, &query_pred, n_query, cfg, report);

    if cfg.add_cover_unit_rules {
        for cover in cover_unit_rules(&current, &query_pred) {
            let mut trial = current.clone();
            trial.rules.push(cover.clone());
            let mut trial_report = Report::default();
            let reduced = run_to_fixpoint(
                &trial,
                derived,
                &query_pred,
                n_query,
                cfg,
                &mut trial_report,
            );
            // Keep the cover only if it paid for itself: a net shrink,
            // i.e. at least two deletions beyond the rule we just added.
            if reduced.rules.len() < current.rules.len() {
                report.record_event(
                    Phase::UnitRules,
                    EquivalenceLevel::Query,
                    format!("added cover unit rule: {cover}"),
                    PhaseEvent::UnitRuleAdded {
                        rule: cover.to_string(),
                    },
                );
                report.actions.extend(trial_report.actions);
                current = reduced;
            }
        }
    }
    Ok(current)
}

fn run_to_fixpoint(
    program: &Program,
    derived: &BTreeSet<PredRef>,
    query_pred: &PredRef,
    n_query: usize,
    cfg: &SummaryConfig,
    report: &mut Report,
) -> Program {
    let mut current = program.clone();
    loop {
        // Deletions first (matching the paper's exposition order in
        // Examples 7/8); cleanups only once no deletion applies, looping in
        // case a cleanup unlocks further deletions.
        match find_deletable(&current, derived, query_pred, n_query, cfg) {
            Some((ri, li)) => {
                report.record_event(
                    Phase::SummaryDeletion,
                    EquivalenceLevel::UniformQuery,
                    format!(
                        "deleted rule (Lemma 5.3 via occurrence {}): {}",
                        current.rules[ri].body[li], current.rules[ri]
                    ),
                    PhaseEvent::RuleDeleted {
                        rule: current.rules[ri].to_string(),
                        condition: format!(
                            "Lemma 5.3 summary test via occurrence {}",
                            current.rules[ri].body[li]
                        ),
                    },
                );
                current = current.without_rule(ri);
            }
            None => {
                if !cfg.run_cleanups {
                    return current;
                }
                let before = current.rules.len();
                current = cleanup(&current, derived, report);
                if current.rules.len() == before {
                    return current;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;
    use datalog_engine::oracle::{bounded_equiv_check, EquivCheckConfig};

    fn run(src: &str, cfg: &SummaryConfig) -> (Program, Report) {
        let p = parse_program(src).unwrap().program;
        let derived = p.idb_preds();
        let mut report = Report::default();
        let out = summary_deletion(&p, &derived, cfg, &mut report).unwrap();
        // Every run must preserve query equivalence on random instances.
        let w = bounded_equiv_check(&p, &out, &EquivCheckConfig::default()).unwrap();
        assert!(
            w.is_none(),
            "deletion changed answers: {w:?}\n{}",
            out.to_text()
        );
        (out, report)
    }

    /// Reconstruction of Example 7 (see `paper.rs` for the provenance
    /// discussion): the trivial identity and the unit rule
    /// `p[nd](X) :- p[nn](X, Y)` delete both `p1` rules; cleanups then
    /// collapse the program to three rules, exactly as in the paper.
    const EX7: &str = "p[nd](X) :- p[nn](X, Y).\n\
                       p[nd](X) :- p1[nn](X, Z).\n\
                       p[nd](X) :- b1(X, Y).\n\
                       p[nn](X, Y) :- p1[nn](X, Z), b4(Z, Y).\n\
                       p[nn](X, Y) :- b1(X, Y).\n\
                       p1[nn](X, Z) :- p[nn](X, U), b2(U, W, Z).\n\
                       p1[nn](X, Z) :- p[nd](X), b3(U, W, Z).\n\
                       ?- p[nd](X).";

    #[test]
    fn example_7_reduces_to_three_rules() {
        let (out, report) = run(
            EX7,
            &SummaryConfig {
                add_cover_unit_rules: false,
                ..SummaryConfig::default()
            },
        );
        let text = out.to_text();
        assert_eq!(out.rules.len(), 3, "{text}");
        assert!(text.contains("p[nd](X) :- p[nn](X, Y)."));
        assert!(text.contains("p[nd](X) :- b1(X, Y)."));
        assert!(text.contains("p[nn](X, Y) :- b1(X, Y)."));
        assert!(!text.contains("p1"), "{text}");
        // Three summary deletions: the paper's narrative deletes the two
        // p1 rules; our unit-rule set also contains p[nd] :- p1[nn], which
        // additionally justifies deleting p[nn] :- p1[nn], b4 — same final
        // program.
        let summary_dels = report
            .actions
            .iter()
            .filter(|a| a.phase == Phase::SummaryDeletion)
            .count();
        assert_eq!(summary_dels, 3);
        // The paper notes rule `p[nd](X) :- b1(X, Y)` is ALSO redundant but
        // the summary procedure cannot see it. Confirm it survived.
        assert!(text.contains("p[nd](X) :- b1(X, Y)."));
    }

    /// Reconstruction of Example 8: with no base exit anywhere, deleting
    /// the `p1` exit rule via Lemma 5.1 reveals the whole program as empty.
    const EX8: &str = "p[nd](X) :- p[nn](X, Y).\n\
                       p[nd](X) :- p1[nnn](X, Z, U), g1(Z, U).\n\
                       p[nn](X, Y) :- p1[nnn](X, Z, U), g2(Z, U, Y).\n\
                       p1[nnn](X, Z, U) :- p1[nnn](X, Z1, U1), g3(Z1, U1, Z, U).\n\
                       p1[nnn](X, Z, U) :- p[nn](X, Y), g4(W, Z, U).\n\
                       ?- p[nd](X).";

    #[test]
    fn example_8_collapses_to_empty() {
        let (out, report) = run(
            EX8,
            &SummaryConfig {
                add_cover_unit_rules: false,
                ..SummaryConfig::default()
            },
        );
        assert!(out.rules.is_empty(), "{}", out.to_text());
        // The last p1 rule went by summary deletion; the rest by cleanup.
        assert!(report
            .actions
            .iter()
            .any(|a| a.phase == Phase::SummaryDeletion && a.description.contains("g4")));
        assert!(report.actions.iter().any(|a| a.phase == Phase::Cleanup));
    }

    /// Reconstruction of Example 10: summaries from a *set* of unit rules
    /// (Lemma 5.3). The swap cycle means occurrences carry both the
    /// straight and the swapped summary; no single unit rule covers both.
    const EX10: &str = "p[nnd](X, Y) :- p1[nn](X, Y).\n\
                        p[nnd](X, Y) :- p1[nn](Y, X).\n\
                        p1[nn](X, Y) :- b(X, Y).\n\
                        p1[nn](X, Y) :- p1[nn](Y, X).\n\
                        p1[nn](X, Y) :- p1[nn](Y, X), big(W).\n\
                        ?- p[nnd](X, Y).";

    #[test]
    fn example_10_needs_lemma_5_3() {
        let (out, report) = run(
            EX10,
            &SummaryConfig {
                add_cover_unit_rules: false,
                ..SummaryConfig::default()
            },
        );
        // The `big`-guarded swap rule is deleted: its occurrence's
        // summaries {straight, swap} are both realized by unit-rule chains.
        assert!(
            !out.to_text().contains("big"),
            "rule with big(W) should be deleted:\n{}",
            out.to_text()
        );
        assert!(report
            .actions
            .iter()
            .any(|a| a.phase == Phase::SummaryDeletion));
    }

    /// Example 6 end-to-end via cover unit rules: left-recursive TC with an
    /// existential query collapses to its exit rule.
    const EX6: &str = "a[nd](X) :- a[nn](X, Z), p(Z, Y).\n\
                       a[nd](X) :- p(X, Y).\n\
                       a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
                       a[nn](X, Y) :- p(X, Y).\n\
                       ?- a[nd](X).";

    #[test]
    fn example_6_via_cover_unit_rules() {
        let (out, report) = run(EX6, &SummaryConfig::default());
        let text = out.to_text();
        // The cover rule a[nd](X) :- a[nn](X, _) unlocks deletion of both
        // recursive rules; the remaining unit chain a[nd] <- a[nn] <- p is
        // only removable by the uniform-query freeze test (pipeline phase).
        assert_eq!(out.rules.len(), 3, "{text}");
        assert!(text.contains("a[nd](X) :- p(X, Y)."));
        assert!(!text.contains("a[nn](X, Z), p(Z, Y)"), "{text}");
        assert!(report.actions.iter().any(|a| a.phase == Phase::UnitRules));
        assert_eq!(report.weakest_level(), EquivalenceLevel::Query);
    }

    /// Without cover rules, Example 6's program admits no summary deletion
    /// (matching Example 5's observation for uniform equivalence).
    #[test]
    fn example_6_stuck_without_covers() {
        let (out, _) = run(
            EX6,
            &SummaryConfig {
                add_cover_unit_rules: false,
                ..SummaryConfig::default()
            },
        );
        assert_eq!(out.rules.len(), 4);
    }

    /// A unit rule must never justify its own deletion.
    #[test]
    fn unit_rule_does_not_delete_itself() {
        let (out, _) = run(
            "q[nd](X) :- e(X, Y).\n\
             ?- q[nd](X).",
            &SummaryConfig::default(),
        );
        assert_eq!(out.rules.len(), 1);
    }

    /// A cover rule that unlocks nothing is not kept.
    #[test]
    fn useless_cover_rules_are_discarded() {
        let (out, report) = run(
            "a[nd](X) :- e(X, Y).\n\
             a[nn](X, Y) :- f(X, Y).\n\
             q[n](X) :- a[nd](X), a[nn](X, W).\n\
             ?- q[n](X).",
            &SummaryConfig::default(),
        );
        assert_eq!(out.rules.len(), 3);
        assert!(!report.actions.iter().any(|a| a.phase == Phase::UnitRules));
    }

    /// Recursive TC with no existential structure: nothing to delete.
    #[test]
    fn plain_tc_is_untouched() {
        let (out, report) = run(
            "a[nn](X, Y) :- p(X, Z), a[nn](Z, Y).\n\
             a[nn](X, Y) :- p(X, Y).\n\
             ?- a[nn](X, Y).",
            &SummaryConfig::default(),
        );
        assert_eq!(out.rules.len(), 2);
        assert_eq!(report.deletions(), 0);
    }

    /// Example 6's heart: a *self-recursive* rule is deleted on the
    /// strength of a cover unit rule, and the translation validator can
    /// re-justify the deletion sequentially (the cover is still present at
    /// the deletion's replay point even though it is deleted later).
    #[test]
    fn self_recursive_rule_deleted_via_cover() {
        let (out, report) = run(
            "a[nd](X) :- a[nn](X, Z), p(Z, Y).\n\
             a[nd](X) :- p(X, Y).\n\
             a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
             a[nn](X, Y) :- p(X, Y).\n\
             ?- a[nd](X).",
            &SummaryConfig::default(),
        );
        // Both recursive rules are gone; the exit rules and the cover
        // remain (the pipeline's freeze pass does the final collapse).
        let text = out.to_text();
        assert_eq!(out.rules.len(), 3, "{text}");
        assert!(!text.contains("a[nn](X, Z)"), "{text}");
        assert!(text.contains("a[nd](X) :- p(X, Y)."));
        // The self-recursive a[nn] rule went through a recorded deletion.
        assert!(
            report.actions.iter().any(|a| matches!(
                &a.event,
                PhaseEvent::RuleDeleted { rule, .. }
                    if rule == "a[nn](X, Y) :- a[nn](X, Z), p(Z, Y)."
            )),
            "{:#?}",
            report.actions
        );
        assert!(report.actions.iter().any(|a| a.phase == Phase::UnitRules));
    }

    /// The same program *before* projection: the query predicate still has
    /// its full arity, so no cover rule applies and the recursive rules
    /// must all be retained — the deletion is only valid post-projection.
    #[test]
    fn cover_deletion_requires_projected_form() {
        let (out, report) = run(
            "a[nd](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
             a[nn](X, Y) :- p(X, Y).\n\
             ?- a[nd](X, _).",
            &SummaryConfig::default(),
        );
        // `a[nd]` has arity 2 but needed count 1: cover_unit_rules refuses
        // the unprojected form outright.
        assert!(cover_unit_rules(&out, &PredRef::adorned("a", "nd")).is_empty());
        assert_eq!(out.rules.len(), 4, "{}", out.to_text());
        assert_eq!(report.deletions(), 0);
    }

    /// A deletion the checker cannot justify must be refused and the rule
    /// retained: the TC exit rule is load-bearing, and both the summary
    /// machinery here and `datalog-lint`'s independent justification
    /// ladder agree that nothing licenses deleting it.
    #[test]
    fn unjustifiable_deletion_is_refused_and_rule_retained() {
        let src = "t[nn](X, Y) :- e(X, Y).\n\
                   t[nn](X, Y) :- e(X, Z), t[nn](Z, Y).\n\
                   ?- t[nn](X, Y).";
        let (out, report) = run(src, &SummaryConfig::default());
        assert_eq!(out.rules.len(), 2, "exit rule must survive");
        assert_eq!(report.deletions(), 0);
        // Cross-check: the translation validator refuses the same deletion.
        let derived = out.idb_preds();
        let exit_idx = out.rules.iter().position(|r| r.body.len() == 1).unwrap();
        let refusal = datalog_lint::justify_deletion(&out, exit_idx, &derived).unwrap_err();
        assert!(refusal.contains("cannot justify"), "{refusal}");
    }
}

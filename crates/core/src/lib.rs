//! # existential-datalog
//!
//! A from-scratch Rust reproduction of **"Optimizing Existential Datalog
//! Queries"** (Raghu Ramakrishnan, Catriel Beeri, Ravi Krishnamurthy;
//! PODS 1988): pushing *projections* through recursive Datalog rules.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`ast`] — syntax, parser, substitutions ([`datalog_ast`]);
//! * [`engine`] — semi-naive bottom-up evaluation with the §3.1 boolean-cut
//!   runtime, provenance, and equivalence oracles ([`datalog_engine`]);
//! * [`adorn`] — the §2 existential `n`/`d` adornment ([`datalog_adorn`]);
//! * [`opt`] — the optimizer: connected components (§3.1), projection
//!   pushing (§3.2), and rule deletion via summaries / Sagiv's test / the
//!   uniform-query freeze test (§3.3–§5) ([`datalog_opt`]);
//! * [`grammar`] — chain programs, CFGs, Theorem 3.3's monadic rewriting
//!   ([`datalog_grammar`]);
//! * [`lint`] — the static analyzer (safety, adornment audit, subsumption)
//!   and the translation-validation checks behind `xdl lint` /
//!   `xdl verify-opt` ([`datalog_lint`]);
//! * [`magic`] — the orthogonal Magic Sets rewriting ([`datalog_magic`]);
//! * [`server`] — the long-lived query service with a prepared-query cache
//!   and snapshot-isolated concurrent reads ([`datalog_server`]).
//!
//! ## Quickstart
//!
//! ```
//! use existential_datalog::prelude::*;
//!
//! // Reachability with an existential query: "which nodes have a successor
//! // at any distance?" — only the source column is needed.
//! let parsed = parse_program(
//!     "a(X, Y) :- p(X, Z), a(Z, Y).\n\
//!      a(X, Y) :- p(X, Y).\n\
//!      ?- a(X, _).",
//! )
//! .unwrap();
//!
//! // Optimize: adornment makes the query's don't-care explicit, projection
//! // drops the second column of the recursion, and Sagiv's uniform test
//! // deletes the recursive rule outright.
//! let outcome = optimize(&parsed.program, &OptimizerConfig::default()).unwrap();
//! assert!(!outcome.program.is_recursive());
//!
//! // Evaluate both and compare.
//! let mut edb = FactSet::new();
//! for i in 0..10 {
//!     edb.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
//! }
//! let (orig, stats_orig) =
//!     query_answers(&parsed.program, &edb, &EvalOptions::default()).unwrap();
//! let (opt, stats_opt) =
//!     query_answers(&outcome.program, &edb, &EvalOptions::default()).unwrap();
//! assert_eq!(orig.rows, opt.rows);
//! assert!(stats_opt.facts_derived < stats_orig.facts_derived);
//! ```

pub use datalog_adorn as adorn;
pub use datalog_ast as ast;
pub use datalog_engine as engine;
pub use datalog_grammar as grammar;
pub use datalog_lint as lint;
pub use datalog_magic as magic;
pub use datalog_opt as opt;
pub use datalog_server as server;
pub use datalog_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use datalog_adorn::{adorn, AdornResult};
    pub use datalog_ast::{
        parse_atom, parse_program, Adornment, Atom, PredRef, Program, Query, Rule, Term, Value, Var,
    };
    pub use datalog_engine::{
        evaluate, query_answers, query_answers_full, AnswerSet, CancelToken, Database, EngineError,
        EvalOptions, EvalStats, FactSet, Strategy,
    };
    pub use datalog_grammar::{is_chain_program, monadic_equivalent, program_to_grammar, Cfg};
    pub use datalog_lint::{lint_program, lint_source, Diagnostic, Severity};
    pub use datalog_magic::magic_rewrite;
    pub use datalog_opt::{
        optimize, validate, EquivalenceLevel, OptimizeOutcome, OptimizerConfig, Report, Validation,
    };
    pub use datalog_trace::{EvalProfile, Json, PhaseEvent};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_roundtrip() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
        )
        .unwrap()
        .program;
        let out = optimize(&p, &OptimizerConfig::default()).unwrap();
        assert!(out.report.rules_after <= out.report.rules_before);
        let mut edb = FactSet::new();
        edb.insert(PredRef::new("p"), vec![Value::int(1), Value::int(2)]);
        let (a, _) = query_answers(&out.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(a.len(), 1);
    }
}

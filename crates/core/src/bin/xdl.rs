//! `xdl` — command-line front end for the existential-datalog toolkit.
//!
//! ```text
//! xdl run <file.dl> [--no-optimize] [--no-cut] [--stats] [--report] [--profile[=json]] [--json]
//!         [--max-iterations <n>] [--deadline-ms <ms>] [--budget <n>] [--threads <n>]
//! xdl profile <file.dl> [--json] [--no-optimize] [--no-cut] [--top <n>] [--threads <n>]
//! xdl optimize <file.dl> [--rewrite-only] [--aggressive]
//! xdl lint <file.dl>... [--json] [--bounds] [--deny-warnings]
//! xdl verify-opt <file.dl>... [--json]
//! xdl analyze <file.dl> [--json]
//! xdl explain <file.dl> <fact>
//! xdl grammar <file.dl> [--words <len>] [--monadic first|second]
//! xdl check <file1.dl> <file2.dl> [--instances <n>] [--seed-idb]
//! xdl serve [--port <p>] [--threads <n>] [--no-reorder] [--verify] [--wal <dir>]
//!           [--fsync always|batch|never] [--compact-every <n>]
//!           [--max-conns <n>] [--max-inflight <n>] [--deadline-ms <ms>]
//!           [--budget <n>] [--grace-ms <ms>] [--slow-query-ms <ms>]
//!           [--limit-events <n>] [--no-metrics] [--resident-forms <n>]
//!           [--drain-sync-cost <n>] [--rebuild-ms <ms>]
//! xdl query --connect <addr> [--load <file.dl>]... [--fact <atom.>]...
//!           [--staleness <ms> | --any] [--stats] [--trace] [--shutdown] ['?- atom.']
//! xdl metrics --connect <addr> [--json | --watch]
//! ```
//!
//! `--threads <n>` fans each fixpoint iteration's rule applications out
//! over `n` worker threads; answers, stats, provenance, and profile
//! counters are byte-identical to `--threads 1` at any `n`. For `serve`,
//! `--threads` sets both the connection workers and the per-query
//! evaluation threads (when omitted, evaluation defaults to the machine's
//! available parallelism), joins are greedily reordered by default
//! (`--no-reorder` restores source order), and `--resident-forms <n>`
//! bounds the incrementally maintained query forms (0 disables; default 8).
//! `--drain-sync-cost <n>` sets the derivation-bound delta above which a
//! resident drain is deferred to the maintenance thread instead of running
//! on the ingest path, and `--rebuild-ms <ms>` the base backoff between
//! rebuild attempts for a poisoned resident. For `query`,
//! `--staleness <ms>` allows answers served off a frontier at most that
//! old and `--any` accepts whatever frontier is published (default: fresh,
//! byte-identical to `xdl run`).
//!
//! Exit codes: 0 on success; 1 when `lint` reports an error-severity
//! diagnostic or `verify-opt` fails a check; 2 on usage or I/O errors.
//!
//! A `.dl` file holds rules, facts (ground atoms) and one `?- query.`:
//!
//! ```text
//! % which nodes reach anything?
//! a(X, Y) :- p(X, Z), a(Z, Y).
//! a(X, Y) :- p(X, Y).
//! p(1, 2).  p(2, 3).
//! ?- a(X, _).
//! ```

use std::process::ExitCode;

use existential_datalog::engine::oracle::{bounded_equiv_check, EquivCheckConfig};
use existential_datalog::grammar::regular::{monadic_equivalent, KeptArg};
use existential_datalog::grammar::{bounded_language, program_to_grammar};
use existential_datalog::prelude::*;
use existential_datalog::server::{Client, FsyncPolicy, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xdl: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:\n  \
     xdl run <file.dl> [--no-optimize] [--no-cut] [--stats] [--report] [--profile[=json]] \
     [--json] [--max-iterations <n>] [--deadline-ms <ms>] [--budget <n>] [--threads <n>]\n  \
     xdl profile <file.dl> [--json] [--no-optimize] [--no-cut] [--top <n>] [--threads <n>]\n  \
     xdl optimize <file.dl> [--rewrite-only] [--aggressive]\n  \
     xdl lint <file.dl>... [--json] [--bounds] [--deny-warnings]\n  \
     xdl verify-opt <file.dl>... [--json]\n  \
     xdl analyze <file.dl> [--json]\n  \
     xdl explain <file.dl> <fact>\n  \
     xdl grammar <file.dl> [--words <len>] [--monadic first|second]\n  \
     xdl check <file1.dl> <file2.dl> [--instances <n>] [--seed-idb]\n  \
     xdl serve [--port <p>] [--threads <n>] [--no-reorder] [--verify] [--wal <dir>] \
     [--fsync always|batch|never] [--compact-every <n>] [--max-conns <n>] \
     [--max-inflight <n>] [--deadline-ms <ms>] [--budget <n>] [--grace-ms <ms>] \
     [--slow-query-ms <ms>] [--limit-events <n>] [--no-metrics] [--resident-forms <n>] \
     [--drain-sync-cost <n>] [--rebuild-ms <ms>]\n  \
     xdl query --connect <addr> [--load <file.dl>]... [--fact <atom.>]... \
     [--staleness <ms> | --any] [--stats] [--trace] [--shutdown] ['?- atom.']\n  \
     xdl metrics --connect <addr> [--json | --watch]"
        .to_owned()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let rest: Vec<&String> = it.collect();
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "run" => done(cmd_run(&rest)),
        "profile" => done(cmd_profile(&rest)),
        "optimize" => done(cmd_optimize(&rest)),
        "lint" => cmd_lint(&rest),
        "verify-opt" => cmd_verify_opt(&rest),
        "analyze" => done(cmd_analyze(&rest)),
        "explain" => done(cmd_explain(&rest)),
        "grammar" => done(cmd_grammar(&rest)),
        "check" => done(cmd_check(&rest)),
        "serve" => done(cmd_serve(&rest)),
        "query" => done(cmd_query(&rest)),
        "metrics" => done(cmd_metrics(&rest)),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

fn option_value<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn positionals<'a>(rest: &'a [&String]) -> Vec<&'a str> {
    rest.iter()
        .filter(|a| !a.starts_with("--"))
        // Skip values that follow a --option.
        .scan(false, |skip, a| {
            let was_skip = *skip;
            *skip = false;
            Some((was_skip, a))
        })
        .filter(|(skip, _)| !skip)
        .map(|(_, a)| a.as_str())
        .collect()
}

fn positional<'a>(rest: &'a [&String], idx: usize) -> Option<&'a str> {
    positionals(rest).get(idx).copied()
}

fn load(path: &str) -> Result<(Program, FactSet), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // `file:line:col: message` — the shape editors and CI annotate from.
    let parsed = parse_program(&text).map_err(|e| e.render_at(path))?;
    parsed
        .program
        .validate()
        .map_err(|e| format!("{path}: {e}"))?;
    let facts = FactSet::from_parsed(&parsed.facts);
    Ok((parsed.program, facts))
}

/// Load, optionally optimize, and evaluate one `.dl` file with the given
/// profiling switch. Shared by `run` and `profile`.
fn prepare_and_eval(
    rest: &[&String],
    profile: bool,
) -> Result<
    (
        AnswerSet,
        existential_datalog::engine::EvalOutput,
        Option<Report>,
    ),
    String,
> {
    let path = positional(rest, 0).ok_or_else(usage)?;
    let (program, facts) = load(path)?;
    if program.query.is_none() {
        return Err(format!("{path}: no query (`?- ...`) in file"));
    }
    let (program, report) = if flag(rest, "--no-optimize") {
        (program, None)
    } else {
        let out = optimize(&program, &OptimizerConfig::default())
            .map_err(|e| format!("optimizer: {e}"))?;
        (out.program, Some(out.report))
    };
    let mut opts = EvalOptions {
        boolean_cut: !flag(rest, "--no-cut"),
        profile,
        ..EvalOptions::default()
    };
    if let Some(n) = option_value(rest, "--max-iterations") {
        opts.max_iterations = n.parse().map_err(|_| "--max-iterations takes a number")?;
    }
    if let Some(ms) = option_value(rest, "--deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--deadline-ms takes milliseconds")?;
        opts.deadline = Some(std::time::Instant::now() + std::time::Duration::from_millis(ms));
    }
    if let Some(n) = option_value(rest, "--budget") {
        opts.fact_budget = Some(n.parse().map_err(|_| "--budget takes a number")?);
    }
    if let Some(n) = option_value(rest, "--threads") {
        opts.threads = n.parse().map_err(|_| "--threads takes a number")?;
    }
    let (answers, out) = query_answers_full(&program, &facts, &opts).map_err(|e| {
        // Resource-limit trips report how far the evaluation got; other
        // errors pass through unchanged.
        match e.partial_stats() {
            Some(s) => format!(
                "evaluation: {e} (partial: iterations={} facts_derived={} tuples_scanned={})",
                s.iterations, s.facts_derived, s.tuples_scanned
            ),
            None => format!("evaluation: {e}"),
        }
    })?;
    Ok((answers, out, report))
}

fn cmd_run(rest: &[&String]) -> Result<(), String> {
    // `--profile` prints the human table, `--profile=json` the JSON export.
    if let Some(bad) = rest
        .iter()
        .find(|a| a.starts_with("--profile=") && a.as_str() != "--profile=json")
    {
        return Err(format!(
            "unknown profile format '{}' (use --profile or --profile=json)",
            &bad["--profile=".len()..]
        ));
    }
    let profile_json = flag(rest, "--profile=json");
    let profile = profile_json || flag(rest, "--profile");
    let (answers, out, report) = prepare_and_eval(rest, profile)?;
    if flag(rest, "--report") {
        if let Some(r) = &report {
            println!("{}", r.to_text());
        }
    }
    match answers.as_bool() {
        Some(b) => println!("{b}"),
        None => print!("{answers}"),
    }
    if flag(rest, "--stats") {
        if flag(rest, "--json") {
            eprintln!("{}", out.stats.to_json().to_pretty());
        } else {
            eprintln!("{}", out.stats);
        }
    }
    if let Some(p) = &out.profile {
        if profile_json {
            eprintln!(
                "{}",
                profile_json_doc(p, &out.stats, report.as_ref()).to_pretty()
            );
        } else {
            eprintln!("hot rules:");
            eprint!("{}", p.hot_rules_table(None));
        }
    }
    Ok(())
}

/// The full JSON document `profile --json` / `run --profile=json` emit:
/// global stats, per-rule profiles, per-iteration timeline, and (when the
/// optimizer ran) the structured phase-event trace.
fn profile_json_doc(
    p: &existential_datalog::prelude::EvalProfile,
    stats: &EvalStats,
    report: Option<&Report>,
) -> existential_datalog::prelude::Json {
    let mut doc = existential_datalog::prelude::Json::obj()
        .with("stats", stats.to_json())
        .with("profile", p.to_json());
    if let Some(r) = report {
        doc = doc.with("optimizer", r.to_json());
    }
    doc
}

fn cmd_profile(rest: &[&String]) -> Result<(), String> {
    let top = match option_value(rest, "--top") {
        Some(n) => Some(n.parse::<usize>().map_err(|_| "--top takes a number")?),
        None => None,
    };
    let (answers, out, report) = prepare_and_eval(rest, true)?;
    let p = out.profile.as_ref().expect("profiling was requested");
    if flag(rest, "--json") {
        println!(
            "{}",
            profile_json_doc(p, &out.stats, report.as_ref()).to_pretty()
        );
        return Ok(());
    }
    println!("answers: {}", answers.len());
    println!("stats:   {}", out.stats);
    println!();
    println!("hot rules (ranked by wall time):");
    print!("{}", p.hot_rules_table(top));
    println!();
    println!("iteration timeline:");
    print!("{}", p.timeline_table());
    if let Some(r) = &report {
        println!();
        println!("optimizer trace:");
        print!("{}", r.to_text());
    }
    Ok(())
}

fn cmd_optimize(rest: &[&String]) -> Result<(), String> {
    let path = positional(rest, 0).ok_or_else(usage)?;
    let (program, _) = load(path)?;
    let cfg = if flag(rest, "--rewrite-only") {
        OptimizerConfig::rewrite_only()
    } else if flag(rest, "--aggressive") {
        OptimizerConfig::aggressive()
    } else {
        OptimizerConfig::default()
    };
    let out = optimize(&program, &cfg).map_err(|e| format!("optimizer: {e}"))?;
    eprintln!("{}", out.report.to_text());
    print!("{}", out.program.to_text());
    Ok(())
}

fn cmd_lint(rest: &[&String]) -> Result<ExitCode, String> {
    let files = positionals(rest);
    if files.is_empty() {
        return Err(format!("lint needs at least one file\n{}", usage()));
    }
    let json = flag(rest, "--json");
    // `--bounds` restricts the run to the size-bound analysis: only the
    // bound-* diagnostics, plus the per-predicate bound table.
    let bounds_only = flag(rest, "--bounds");
    let deny_warnings = flag(rest, "--deny-warnings");
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut docs: Vec<existential_datalog::prelude::Json> = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let (diags, table) = if bounds_only {
            match existential_datalog::ast::parse_program(&text) {
                Ok(parsed) => {
                    let table = existential_datalog::lint::analyze_bounds(&parsed.program)
                        .map(|r| r.to_text())
                        .ok();
                    (
                        existential_datalog::lint::bounds_diagnostics(&parsed),
                        table,
                    )
                }
                Err(e) => (
                    vec![Diagnostic::error("parse", (e.line, e.col), e.message)],
                    None,
                ),
            }
        } else {
            (existential_datalog::lint::lint_source(&text), None)
        };
        for d in &diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            if json {
                docs.push(d.to_json(path));
            } else {
                println!("{}", d.render_at(path));
            }
        }
        if let Some(table) = table {
            if !json {
                print!("{path}:\n{table}");
            }
        }
    }
    if json {
        println!(
            "{}",
            existential_datalog::prelude::Json::obj()
                .with("errors", errors)
                .with("warnings", warnings)
                .with("deny_warnings", deny_warnings)
                .with("diagnostics", existential_datalog::prelude::Json::Arr(docs))
                .to_pretty()
        );
    } else {
        eprintln!(
            "{} file(s): {errors} error(s), {warnings} warning(s)",
            files.len()
        );
    }
    Ok(if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_verify_opt(rest: &[&String]) -> Result<ExitCode, String> {
    let files = positionals(rest);
    if files.is_empty() {
        return Err(format!("verify-opt needs at least one file\n{}", usage()));
    }
    let json = flag(rest, "--json");
    let mut all_ok = true;
    let mut docs: Vec<existential_datalog::prelude::Json> = Vec::new();
    for path in &files {
        let (program, _) = load(path)?;
        if program.query.is_none() {
            return Err(format!("{path}: no query (`?- ...`) in file"));
        }
        let out = optimize(&program, &OptimizerConfig::default())
            .map_err(|e| format!("{path}: optimizer: {e}"))?;
        let v = validate(&out.report);
        all_ok &= v.ok();
        if json {
            docs.push(
                existential_datalog::prelude::Json::obj()
                    .with("file", *path)
                    .with("validation", v.to_json()),
            );
        } else {
            println!("{path}: {}", if v.ok() { "ok" } else { "FAIL" });
            for line in v.to_text().lines() {
                println!("  {line}");
            }
        }
    }
    if json {
        println!(
            "{}",
            existential_datalog::prelude::Json::obj()
                .with("ok", all_ok)
                .with("files", existential_datalog::prelude::Json::Arr(docs))
                .to_pretty()
        );
    }
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_analyze(rest: &[&String]) -> Result<(), String> {
    let path = positional(rest, 0).ok_or_else(usage)?;
    let (program, _) = load(path)?;
    let findings = existential_datalog::opt::analyze(&program);
    let bounds = existential_datalog::lint::analyze_bounds(&program).ok();
    if flag(rest, "--json") {
        let arr = existential_datalog::prelude::Json::Arr(
            findings
                .iter()
                .map(|f| {
                    existential_datalog::prelude::Json::obj()
                        .with("kind", f.kind.to_string())
                        .with("message", f.message.as_str())
                })
                .collect(),
        );
        let doc = existential_datalog::prelude::Json::obj()
            .with("findings", arr)
            .with(
                "bounds",
                bounds.map_or(existential_datalog::prelude::Json::Null, |b| b.to_json()),
            );
        println!("{}", doc.to_pretty());
    } else {
        print!("{}", existential_datalog::opt::analyze::render(&findings));
        if let Some(b) = bounds {
            println!("derivation bounds (worst class: {}):", b.worst_class());
            print!("{}", b.to_text());
        }
    }
    Ok(())
}

fn cmd_explain(rest: &[&String]) -> Result<(), String> {
    let path = positional(rest, 0).ok_or_else(usage)?;
    let fact_text = positional(rest, 1).ok_or("explain needs a fact, e.g. 'a(1, 3)'")?;
    let (program, facts) = load(path)?;
    let fact = parse_atom(fact_text).map_err(|e| format!("bad fact '{fact_text}': {e}"))?;
    let values = fact
        .ground_values()
        .ok_or_else(|| format!("'{fact_text}' is not ground"))?;
    let out = existential_datalog::engine::evaluate(
        &program,
        &facts,
        &EvalOptions {
            record_provenance: true,
            ..EvalOptions::default()
        },
    )
    .map_err(|e| format!("evaluation: {e}"))?;
    let pred = out
        .database
        .pred_id(&fact.pred)
        .ok_or_else(|| format!("unknown predicate {}", fact.pred))?;
    let prov = out.provenance.as_ref().expect("provenance was requested");
    match prov.derivation_tree(&out.database, pred, &values) {
        Some(tree) => {
            print!("{}", tree.render());
            Ok(())
        }
        None => Err(format!("{fact_text} is not derivable")),
    }
}

fn cmd_grammar(rest: &[&String]) -> Result<(), String> {
    let path = positional(rest, 0).ok_or_else(usage)?;
    let (program, _) = load(path)?;
    let cfg = program_to_grammar(&program).map_err(|e| format!("{e}"))?;
    print!("{}", cfg.to_text());
    if let Some(len) = option_value(rest, "--words") {
        let len: usize = len.parse().map_err(|_| "--words takes a number")?;
        let words = bounded_language(&cfg, len).map_err(|e| format!("{e}"))?;
        println!("language up to length {len} ({} words):", words.len());
        for w in &words {
            let s: Vec<String> = w.iter().map(|t| t.as_str()).collect();
            println!("  {}", s.join(" "));
        }
    }
    if let Some(which) = option_value(rest, "--monadic") {
        let kept = match which {
            "first" => KeptArg::First,
            "second" => KeptArg::Second,
            _ => return Err("--monadic takes 'first' or 'second'".into()),
        };
        match monadic_equivalent(&program, kept).map_err(|e| format!("{e}"))? {
            Some(rw) => {
                println!(
                    "regular: monadic equivalent via a {}-state DFA (Theorem 3.3):",
                    rw.dfa_states
                );
                print!("{}", rw.program.to_text());
            }
            None => println!("not certifiably regular: no monadic rewrite."),
        }
    }
    Ok(())
}

fn cmd_serve(rest: &[&String]) -> Result<(), String> {
    let port: u16 = match option_value(rest, "--port") {
        Some(p) => p.parse().map_err(|_| "--port takes a port number")?,
        None => 7654,
    };
    let threads: Option<usize> = match option_value(rest, "--threads") {
        Some(n) => Some(n.parse().map_err(|_| "--threads takes a number")?),
        None => None,
    };
    let mut cfg = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        threads: threads.unwrap_or(4),
        reorder_joins: !flag(rest, "--no-reorder"),
        verify: flag(rest, "--verify"),
        ..ServerConfig::default()
    };
    // An explicit `--threads` governs both halves of the server's
    // parallelism: the connection workers and each query's evaluation
    // fan-out. Absent, evaluation defaults to the machine's parallelism
    // (or `XDL_EVAL_THREADS`) via `ServerConfig::default`.
    if let Some(n) = threads {
        cfg.eval_threads = n;
    }
    if let Some(n) = option_value(rest, "--resident-forms") {
        cfg.resident_forms = n.parse().map_err(|_| "--resident-forms takes a number")?;
    }
    if let Some(dir) = option_value(rest, "--wal") {
        cfg.wal_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(word) = option_value(rest, "--fsync") {
        cfg.fsync = FsyncPolicy::parse(word).ok_or("--fsync takes always, batch or never")?;
    }
    if let Some(n) = option_value(rest, "--compact-every") {
        cfg.compact_every = n.parse().map_err(|_| "--compact-every takes a number")?;
    }
    if let Some(n) = option_value(rest, "--max-conns") {
        cfg.max_conns = n.parse().map_err(|_| "--max-conns takes a number")?;
    }
    if let Some(n) = option_value(rest, "--max-inflight") {
        cfg.max_inflight = n.parse().map_err(|_| "--max-inflight takes a number")?;
    }
    if let Some(ms) = option_value(rest, "--deadline-ms") {
        cfg.deadline_ms = Some(ms.parse().map_err(|_| "--deadline-ms takes milliseconds")?);
    }
    if let Some(n) = option_value(rest, "--budget") {
        cfg.fact_budget = Some(n.parse().map_err(|_| "--budget takes a number")?);
    }
    if let Some(ms) = option_value(rest, "--grace-ms") {
        cfg.grace_ms = ms.parse().map_err(|_| "--grace-ms takes milliseconds")?;
    }
    if let Some(ms) = option_value(rest, "--slow-query-ms") {
        cfg.slow_query_ms = Some(
            ms.parse()
                .map_err(|_| "--slow-query-ms takes milliseconds")?,
        );
    }
    if let Some(n) = option_value(rest, "--limit-events") {
        cfg.limit_events = n.parse().map_err(|_| "--limit-events takes a number")?;
    }
    if let Some(n) = option_value(rest, "--drain-sync-cost") {
        cfg.drain_sync_cost = n
            .parse()
            .map_err(|_| "--drain-sync-cost takes a derivation-bound delta")?;
    }
    if let Some(ms) = option_value(rest, "--rebuild-ms") {
        cfg.rebuild_ms = ms.parse().map_err(|_| "--rebuild-ms takes milliseconds")?;
    }
    cfg.metrics = !flag(rest, "--no-metrics");
    let server = Server::spawn(&cfg).map_err(|e| format!("cannot start on {}: {e}", cfg.addr))?;
    if let Some(rec) = server.state().recovery() {
        // One machine-readable line before "listening": what the WAL replay
        // restored (scripts and the crash-recovery smoke read this).
        println!("recovered {rec}");
    }
    // Scripts poll for this line to learn the resolved (ephemeral) port.
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    Ok(())
}

fn cmd_query(rest: &[&String]) -> Result<(), String> {
    let addr = option_value(rest, "--connect").ok_or("query needs --connect <addr>")?;
    // Collect repeated --load/--fact in order, plus the one query positional.
    let mut loads: Vec<&str> = Vec::new();
    let mut facts: Vec<&str> = Vec::new();
    let mut query_text: Option<&str> = None;
    let mut staleness: Option<u64> = None;
    let mut any = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--connect" => i += 1,
            "--load" => {
                loads.push(rest.get(i + 1).ok_or("--load takes a file path")?);
                i += 1;
            }
            "--fact" => {
                facts.push(rest.get(i + 1).ok_or("--fact takes a ground atom")?);
                i += 1;
            }
            "--staleness" => {
                staleness = Some(
                    rest.get(i + 1)
                        .ok_or("--staleness takes milliseconds")?
                        .parse::<u64>()
                        .map_err(|_| "--staleness takes milliseconds")?,
                );
                i += 1;
            }
            "--any" => any = true,
            "--stats" | "--trace" | "--shutdown" => {}
            s if s.starts_with("--") => return Err(format!("unknown option '{s}'\n{}", usage())),
            s => {
                if query_text.replace(s).is_some() {
                    return Err("query takes at most one '?- atom.'".into());
                }
            }
        }
        i += 1;
    }
    if loads.is_empty()
        && facts.is_empty()
        && query_text.is_none()
        && !flag(rest, "--stats")
        && !flag(rest, "--trace")
        && !flag(rest, "--shutdown")
    {
        return Err(
            "nothing to do: give a query, --load, --fact, --stats, --trace or --shutdown".into(),
        );
    }
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut send = |line: String| -> Result<existential_datalog::server::Response, String> {
        let resp = client.request(&line).map_err(|e| format!("{addr}: {e}"))?;
        if resp.ok {
            Ok(resp)
        } else {
            Err(resp.error)
        }
    };
    for path in loads {
        send(format!("LOAD {path}"))?;
    }
    for atom in facts {
        send(format!("FACT {atom}"))?;
    }
    if let Some(q) = query_text {
        // Consistency mode: `--any` reads whatever frontier is published,
        // `--staleness <ms>` bounds how old it may be, default is fresh.
        let mode: String = match (any, staleness) {
            (true, Some(_)) => return Err("query takes --any or --staleness, not both".into()),
            (true, None) => "any ".into(),
            (false, Some(ms)) => format!("staleness={ms} "),
            (false, None) => String::new(),
        };
        let resp = send(format!("QUERY {mode}{q}"))?;
        // Byte-identical to `xdl run` on the same program and facts.
        print!("{}", resp.payload_text());
    } else if any || staleness.is_some() {
        return Err("--any/--staleness need a '?- atom.' to apply to".into());
    }
    if flag(rest, "--stats") {
        println!("{}", send("STATS".to_string())?.payload_text().trim_end());
    }
    if flag(rest, "--trace") {
        println!("{}", send("TRACE".to_string())?.payload_text().trim_end());
    }
    if flag(rest, "--shutdown") {
        send("SHUTDOWN".to_string())?;
    }
    Ok(())
}

/// `xdl metrics --connect <addr>`: scrape a running server's METRICS
/// endpoint. Default prints the Prometheus text exposition once; `--json`
/// prints the JSON readout instead; `--watch` re-scrapes every 2 seconds
/// until interrupted (each scrape redraws the screen).
fn cmd_metrics(rest: &[&String]) -> Result<(), String> {
    let addr = option_value(rest, "--connect").ok_or("metrics needs --connect <addr>")?;
    let json = flag(rest, "--json");
    let watch = flag(rest, "--watch");
    if json && watch {
        return Err("metrics takes --json or --watch, not both".into());
    }
    if let Some(bad) = rest
        .iter()
        .find(|a| a.starts_with("--") && !matches!(a.as_str(), "--connect" | "--json" | "--watch"))
    {
        return Err(format!("unknown option '{bad}'\n{}", usage()));
    }
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    loop {
        let resp = client.metrics(json).map_err(|e| format!("{addr}: {e}"))?;
        if !resp.ok {
            return Err(resp.error);
        }
        if watch {
            // Clear + home, then the fresh scrape: a cheap top(1)-style view.
            print!("\x1b[2J\x1b[H");
            println!("xdl metrics — {addr} (refreshes every 2s, ^C to stop)\n");
        }
        print!("{}", resp.payload_text());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if !watch {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(2));
    }
}

fn cmd_check(rest: &[&String]) -> Result<(), String> {
    let p1 = positional(rest, 0).ok_or_else(usage)?;
    let p2 = positional(rest, 1).ok_or_else(usage)?;
    let (prog1, _) = load(p1)?;
    let (prog2, _) = load(p2)?;
    let mut cfg = EquivCheckConfig::default();
    if let Some(n) = option_value(rest, "--instances") {
        cfg.instances = n.parse().map_err(|_| "--instances takes a number")?;
    }
    cfg.seed_idb = flag(rest, "--seed-idb");
    match bounded_equiv_check(&prog1, &prog2, &cfg).map_err(|e| format!("{e}"))? {
        None => {
            println!(
                "no difference found on {} random instances (not a proof)",
                cfg.instances
            );
            Ok(())
        }
        Some(w) => {
            println!("NOT equivalent. Witness instance:");
            print!("{}", w.instance.to_text());
            println!("answers of {p1}: {:?}", w.answers1);
            println!("answers of {p2}: {:?}", w.answers2);
            Err("programs differ".into())
        }
    }
}

//! Exit-code discipline of `xdl lint`, pinned against the shipped
//! fixtures: 0 = clean (or warnings without `--deny-warnings`),
//! 1 = errors or denied warnings, 2 = usage / I/O problems.
//! `scripts/check.sh` relies on exactly this contract.

use std::process::{Command, Output};

fn xdl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xdl"))
        .args(args)
        .output()
        .expect("spawn xdl")
}

fn fixture(name: &str) -> String {
    format!("{}/../../tests/lint/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn example(name: &str) -> String {
    format!("{}/../../examples/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn clean_example_exits_zero_even_with_deny_warnings() {
    let out = xdl(&["lint", &example("tc.dl"), "--bounds", "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("0 error(s), 0 warning(s)"), "{stderr}");
    // The --bounds table classifies the transitive closure as linear.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("linear"), "{stdout}");
}

#[test]
fn deny_warnings_promotes_bound_warnings_to_exit_one() {
    // Warnings alone are advisory...
    let plain = xdl(&["lint", &fixture("cartesian.dl")]);
    assert_eq!(plain.status.code(), Some(0), "{plain:?}");
    let stdout = String::from_utf8(plain.stdout).unwrap();
    assert!(stdout.contains("warning[bound-cartesian]"), "{stdout}");

    // ...until --deny-warnings makes them binding.
    let denied = xdl(&["lint", &fixture("cartesian.dl"), "--deny-warnings"]);
    assert_eq!(denied.status.code(), Some(1), "{denied:?}");

    let unbounded = xdl(&["lint", &fixture("unbounded.dl"), "--deny-warnings"]);
    assert_eq!(unbounded.status.code(), Some(1), "{unbounded:?}");
    let stdout = String::from_utf8(unbounded.stdout).unwrap();
    assert!(stdout.contains("warning[bound-unbounded]"), "{stdout}");
}

#[test]
fn error_fixture_exits_one_with_or_without_deny_warnings() {
    let out = xdl(&["lint", &fixture("unsafe_rule.dl")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let denied = xdl(&["lint", &fixture("unsafe_rule.dl"), "--deny-warnings"]);
    assert_eq!(denied.status.code(), Some(1), "{denied:?}");
}

#[test]
fn missing_file_and_bad_usage_exit_two() {
    let missing = xdl(&["lint", "/nonexistent/nope.dl"]);
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");
    let no_args = xdl(&["lint"]);
    assert_eq!(no_args.status.code(), Some(2), "{no_args:?}");
}

//! Translation validation: independent re-checks of each optimizer phase.
//!
//! Every check here re-derives the phase's soundness condition from the
//! paper with machinery *separate* from `datalog-opt`'s implementation:
//!
//! * [`verify_adornment`] — diffs the adorned program against the
//!   from-scratch Lemma 2.2 recomputation of [`crate::audit`], then audits
//!   every `d` mark.
//! * [`verify_components`] — Lemma 3.1: each boolean's inlined definition
//!   must be variable-disjoint from the head component, and each rewritten
//!   rule must be CQ-equivalent (modulo head `d` positions) to an original
//!   rule.
//! * [`verify_projection`] — Lemma 3.2: recompute the projection of every
//!   adorned occurrence independently and require the exact same program,
//!   with no dropped variable still in use.
//! * [`justify_deletion`] / [`justify_addition`] — re-derive a containment
//!   witness for a single deletion (or cover-rule addition): θ-subsumption,
//!   Sagiv's frozen-rule test, structural cleanup conditions, then the
//!   uniform-query freeze test backed by a differential check. A deletion
//!   that fits none of these is *refused*.
//! * [`verify_differential`] — the end-to-end bounded oracle: fixed-seed
//!   random small EDBs, optimized vs. unoptimized answers compared.

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{freeze_rule, Ad, Atom, PredRef, Program, Rule, Term, Var};
use datalog_engine::oracle::{bounded_equiv_check, uniform_query_test, EquivCheckConfig};
use datalog_engine::{evaluate, EvalOptions, FactSet};
use datalog_trace::Json;

use crate::audit::{audit_adorned_rules, recompute_adornment};
use crate::contain::{conjunction_homomorphism, subsumption_witness, Homomorphism};

/// Outcome of one phase check.
#[derive(Debug, Clone)]
pub struct PhaseCheck {
    /// Which phase was checked (`"adorn"`, `"components"`, ...).
    pub phase: &'static str,
    /// Did the check pass?
    pub ok: bool,
    /// Witness summary on success, failure description otherwise.
    pub detail: String,
}

impl PhaseCheck {
    /// A passing check.
    pub fn pass(phase: &'static str, detail: impl Into<String>) -> PhaseCheck {
        PhaseCheck {
            phase,
            ok: true,
            detail: detail.into(),
        }
    }

    /// A failing check.
    pub fn fail(phase: &'static str, detail: impl Into<String>) -> PhaseCheck {
        PhaseCheck {
            phase,
            ok: false,
            detail: detail.into(),
        }
    }

    /// JSON object for `--json` output.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("phase", self.phase)
            .with("ok", self.ok)
            .with("detail", self.detail.as_str())
    }
}

/// The fixed-seed differential configuration used by the validator. Kept
/// deliberately smaller than the default so per-deletion checks stay cheap
/// at preparation time; the seed is pinned for reproducibility.
pub fn differential_config() -> EquivCheckConfig {
    EquivCheckConfig {
        instances: 20,
        domain: 4,
        facts_per_pred: 8,
        seed_idb: false,
        rng_seed: 0x11a7,
    }
}

fn rendered_rules(p: &Program) -> BTreeSet<String> {
    p.rules.iter().map(|r| r.to_string()).collect()
}

/// Diff `adorned` against the independent Lemma 2.2 recomputation of
/// `original`, then audit every `d` mark of the result.
pub fn verify_adornment(original: &Program, adorned: &Program) -> PhaseCheck {
    let expected = match recompute_adornment(original) {
        Ok(p) => p,
        Err(e) => return PhaseCheck::fail("adorn", format!("recomputation failed: {e}")),
    };
    let ours = rendered_rules(&expected);
    let theirs = rendered_rules(adorned);
    if ours != theirs {
        let missing: Vec<&String> = ours.difference(&theirs).collect();
        let extra: Vec<&String> = theirs.difference(&ours).collect();
        return PhaseCheck::fail(
            "adorn",
            format!(
                "adorned program disagrees with the Lemma 2.2 recomputation; \
                 missing: {missing:?}, unexpected: {extra:?}"
            ),
        );
    }
    let q1 = expected.query.as_ref().map(|q| q.atom.to_string());
    let q2 = adorned.query.as_ref().map(|q| q.atom.to_string());
    if q1 != q2 {
        return PhaseCheck::fail(
            "adorn",
            format!("query mismatch: expected {q1:?}, got {q2:?}"),
        );
    }
    let violations = audit_adorned_rules(adorned);
    if let Some((ri, msg)) = violations.first() {
        return PhaseCheck::fail("adorn", format!("unsound d mark in rule {ri}: {msg}"));
    }
    PhaseCheck::pass(
        "adorn",
        format!(
            "{} rule(s) match the independent Lemma 2.2 recomputation; every d mark audited",
            adorned.rules.len()
        ),
    )
}

/// Variables anchoring a rule's head component: the `n`-position variables
/// of a full-length adorned head, every variable otherwise.
fn head_anchor_vars(rule: &Rule) -> BTreeSet<Var> {
    match &rule.head.pred.adornment {
        Some(ad) if ad.len() == rule.head.arity() => rule
            .head
            .terms
            .iter()
            .enumerate()
            .filter(|(i, _)| ad[*i] == Ad::N)
            .filter_map(|(_, t)| t.as_var())
            .collect(),
        _ => rule.head.var_occurrences().collect(),
    }
}

fn atom_vars(atoms: &[Atom]) -> BTreeSet<Var> {
    atoms.iter().flat_map(|a| a.var_occurrences()).collect()
}

/// Pin the needed head positions of `pattern_head` onto `target_head`.
/// Head `d` positions are exempt from the correspondence (their values are
/// exactly what Lemma 3.1 licenses the rewrite to forget), but a dropped
/// constant or renamed `d` variable that is *not* a fresh wildcard is
/// still rejected.
fn pin_heads(pattern_head: &Atom, target_head: &Atom) -> Option<Homomorphism> {
    if pattern_head.pred != target_head.pred || pattern_head.arity() != target_head.arity() {
        return None;
    }
    let anchored: BTreeSet<usize> = match &pattern_head.pred.adornment {
        Some(ad) if ad.len() == pattern_head.arity() => (0..pattern_head.arity())
            .filter(|&i| ad[i] == Ad::N)
            .collect(),
        _ => (0..pattern_head.arity()).collect(),
    };
    let mut map = Homomorphism::new();
    for (i, (pt, tt)) in pattern_head
        .terms
        .iter()
        .zip(target_head.terms.iter())
        .enumerate()
    {
        if anchored.contains(&i) {
            match pt {
                Term::Const(c) => {
                    if *tt != Term::Const(*c) {
                        return None;
                    }
                }
                Term::Var(v) => match map.get(v) {
                    Some(bound) if bound != tt => return None,
                    _ => {
                        map.insert(*v, *tt);
                    }
                },
            }
        } else {
            // d position: identical term, or a fresh wildcard on either
            // side (the rewrite replaces dangling d variables by wildcards).
            let wild = matches!(tt, Term::Var(w) if w.is_wildcard())
                || matches!(pt, Term::Var(w) if w.is_wildcard());
            if pt != tt && !wild {
                return None;
            }
        }
    }
    Some(map)
}

/// Lemma 3.1 check for one rewritten rule: inline its boolean literals and
/// require (a) each inlined component to be variable-disjoint from the
/// head anchors, the remaining body, and every other component, and (b)
/// CQ-equivalence with `original` modulo the head `d` positions.
fn components_rule_ok(
    original: &Rule,
    rewritten: &Rule,
    booleans: &BTreeMap<PredRef, &Rule>,
) -> Result<(), String> {
    let mut main_body: Vec<Atom> = Vec::new();
    let mut inlined_body: Vec<Atom> = Vec::new();
    let mut inlined_neg: Vec<Atom> = rewritten.negative.clone();
    let mut component_vars: Vec<BTreeSet<Var>> = Vec::new();
    for lit in &rewritten.body {
        match booleans.get(&lit.pred) {
            Some(def) => {
                let mut vars = atom_vars(&def.body);
                vars.extend(atom_vars(&def.negative));
                component_vars.push(vars);
                inlined_body.extend(def.body.iter().cloned());
                inlined_neg.extend(def.negative.iter().cloned());
            }
            None => main_body.push(lit.clone()),
        }
    }
    // (a) connectivity: components share no variable with anything else.
    let mut outside = atom_vars(&main_body);
    outside.extend(atom_vars(&rewritten.negative));
    outside.extend(head_anchor_vars(rewritten));
    for (i, vars) in component_vars.iter().enumerate() {
        if let Some(v) = vars.intersection(&outside).next() {
            return Err(format!(
                "extracted component shares variable {v} with the head component"
            ));
        }
        for other in component_vars.iter().skip(i + 1) {
            if let Some(v) = vars.intersection(other).next() {
                return Err(format!(
                    "two extracted components share variable {v} (they are one component)"
                ));
            }
        }
    }
    // (b) CQ-equivalence modulo head d positions, in both directions.
    inlined_body.extend(main_body);
    let fwd_pins = pin_heads(&original.head, &rewritten.head)
        .ok_or_else(|| "heads do not correspond".to_string())?;
    if conjunction_homomorphism(
        &original.body,
        &original.negative,
        &inlined_body,
        &inlined_neg,
        &fwd_pins,
    )
    .is_none()
    {
        return Err("no homomorphism from the original body onto the inlined rewrite".into());
    }
    let bwd_pins = pin_heads(&rewritten.head, &original.head)
        .ok_or_else(|| "heads do not correspond".to_string())?;
    if conjunction_homomorphism(
        &inlined_body,
        &inlined_neg,
        &original.body,
        &original.negative,
        &bwd_pins,
    )
    .is_none()
    {
        return Err("no homomorphism from the inlined rewrite back onto the original".into());
    }
    Ok(())
}

/// Verify the §3.1 boolean-extraction phase: `after` must consist of
/// zero-arity boolean definitions plus rewritten rules in one-to-one
/// correspondence with `before`'s rules, each passing
/// [`components_rule_ok`].
pub fn verify_components(before: &Program, after: &Program) -> PhaseCheck {
    if before.query != after.query {
        return PhaseCheck::fail("components", "query changed during boolean extraction");
    }
    let new_preds: BTreeSet<PredRef> = after
        .idb_preds()
        .difference(&before.idb_preds())
        .cloned()
        .collect();
    let mut booleans: BTreeMap<PredRef, &Rule> = BTreeMap::new();
    let mut rewritten: Vec<&Rule> = Vec::new();
    for rule in &after.rules {
        if new_preds.contains(&rule.head.pred) {
            if rule.head.arity() != 0 {
                return PhaseCheck::fail(
                    "components",
                    format!(
                        "new predicate `{}` is not a zero-arity boolean",
                        rule.head.pred
                    ),
                );
            }
            if booleans.insert(rule.head.pred.clone(), rule).is_some() {
                return PhaseCheck::fail(
                    "components",
                    format!("boolean `{}` has more than one definition", rule.head.pred),
                );
            }
        } else {
            rewritten.push(rule);
        }
    }
    if rewritten.len() != before.rules.len() {
        return PhaseCheck::fail(
            "components",
            format!(
                "rule count mismatch: {} original rule(s), {} rewritten",
                before.rules.len(),
                rewritten.len()
            ),
        );
    }
    // Match rewritten rules to originals one-to-one (backtracking; the
    // programs are small).
    fn assign(
        rewritten: &[&Rule],
        originals: &[Rule],
        used: &mut Vec<bool>,
        booleans: &BTreeMap<PredRef, &Rule>,
        k: usize,
    ) -> Result<(), String> {
        if k == rewritten.len() {
            return Ok(());
        }
        let mut last_err = format!("no original rule matches `{}`", rewritten[k]);
        for (i, orig) in originals.iter().enumerate() {
            if used[i] {
                continue;
            }
            match components_rule_ok(orig, rewritten[k], booleans) {
                Ok(()) => {
                    used[i] = true;
                    if assign(rewritten, originals, used, booleans, k + 1).is_ok() {
                        return Ok(());
                    }
                    used[i] = false;
                }
                Err(e) => last_err = format!("`{}`: {e}", rewritten[k]),
            }
        }
        Err(last_err)
    }
    let mut used = vec![false; before.rules.len()];
    match assign(&rewritten, &before.rules, &mut used, &booleans, 0) {
        Ok(()) => PhaseCheck::pass(
            "components",
            format!(
                "{} boolean(s) extracted; every rewritten rule is CQ-equivalent to its \
                 original and every component is disconnected from the head",
                booleans.len()
            ),
        ),
        Err(e) => PhaseCheck::fail("components", e),
    }
}

/// Independently recompute the §3.2 projection of one atom.
fn project_atom(atom: &Atom) -> Atom {
    let Some(ad) = &atom.pred.adornment else {
        return atom.clone();
    };
    if atom.arity() != ad.len() || ad.is_all_needed() {
        return atom.clone();
    }
    Atom::new(
        atom.pred.clone(),
        ad.needed_positions()
            .into_iter()
            .map(|i| atom.terms[i])
            .collect(),
    )
}

/// Verify the §3.2 projection phase: recompute the projection of every
/// occurrence (heads, bodies, negations, the query) and require exactly
/// `after`; additionally re-derive Lemma 3.2's side condition that no
/// dropped body variable is still used elsewhere in its rule.
pub fn verify_projection(before: &Program, after: &Program) -> PhaseCheck {
    let mut dropped_positions = 0usize;
    let mut expected = Program {
        rules: Vec::new(),
        query: before.query.clone(),
    };
    for rule in &before.rules {
        let head = project_atom(&rule.head);
        let body: Vec<Atom> = rule.body.iter().map(project_atom).collect();
        let negative: Vec<Atom> = rule.negative.iter().map(project_atom).collect();
        // Lemma 3.2 side condition, re-derived: a variable dropped from a
        // body literal must not occur in any other literal nor in a kept
        // (needed) head position.
        for (li, (orig, proj)) in rule.body.iter().zip(body.iter()).enumerate() {
            if orig.arity() == proj.arity() {
                continue;
            }
            dropped_positions += orig.arity() - proj.arity();
            let kept: BTreeSet<Var> = proj.var_occurrences().collect();
            for v in orig.var_occurrences() {
                if kept.contains(&v) {
                    continue;
                }
                let elsewhere = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != li)
                    .any(|(_, a)| a.var_occurrences().any(|w| w == v))
                    || rule
                        .negative
                        .iter()
                        .any(|a| a.var_occurrences().any(|w| w == v))
                    || head.var_occurrences().any(|w| w == v);
                if elsewhere {
                    return PhaseCheck::fail(
                        "projection",
                        format!(
                            "variable {v} was dropped from `{orig}` but is still used \
                             elsewhere in `{rule}` (Lemma 3.2 side condition)"
                        ),
                    );
                }
            }
        }
        dropped_positions += rule.head.arity() - head.arity();
        expected
            .rules
            .push(Rule::with_negation(head, body, negative));
    }
    if let Some(q) = expected.query.as_mut() {
        q.atom = project_atom(&q.atom);
    }
    let expected_text = expected.to_text();
    let after_text = after.to_text();
    if expected_text != after_text {
        return PhaseCheck::fail(
            "projection",
            format!(
                "projected program disagrees with the independent recomputation:\n\
                 expected:\n{expected_text}\ngot:\n{after_text}"
            ),
        );
    }
    PhaseCheck::pass(
        "projection",
        format!("{dropped_positions} d position(s) dropped consistently across all occurrences"),
    )
}

/// Productivity fixpoint: derived predicates that can derive at least one
/// fact starting from empty IDB.
fn productive_preds(program: &Program, derived: &BTreeSet<PredRef>) -> BTreeSet<PredRef> {
    let mut productive: BTreeSet<PredRef> = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if productive.contains(&rule.head.pred) {
                continue;
            }
            let ok = rule
                .body
                .iter()
                .all(|lit| !derived.contains(&lit.pred) || productive.contains(&lit.pred));
            if ok {
                changed |= productive.insert(rule.head.pred.clone());
            }
        }
        if !changed {
            return productive;
        }
    }
}

/// Re-derive a justification for deleting rule `idx` of `candidate`.
///
/// The ladder runs strongest-first: a θ-subsumption containment witness
/// (uniform equivalence), Sagiv's frozen-rule test (uniform), the
/// structural query-level cleanup conditions, and finally the
/// uniform-query freeze test backed by a fixed-seed differential check.
/// `derived` is the set of predicates that were IDB when the deletion
/// phase started (a deletion can strand a predicate so it *looks* EDB
/// afterwards).
///
/// `Err` means the checker cannot justify the deletion — the caller must
/// refuse it.
pub fn justify_deletion(
    candidate: &Program,
    idx: usize,
    derived: &BTreeSet<PredRef>,
) -> Result<String, String> {
    let rule = &candidate.rules[idx];
    // 1. Containment witness from a surviving rule.
    for (j, other) in candidate.rules.iter().enumerate() {
        if j == idx {
            continue;
        }
        if let Some(w) = subsumption_witness(other, rule) {
            let sigma: Vec<String> = w.iter().map(|(v, t)| format!("{v}->{t}")).collect();
            return Ok(format!(
                "θ-subsumed by `{other}` under {{{}}} (uniform)",
                sigma.join(", ")
            ));
        }
    }
    // 2. Sagiv's frozen-rule test, evaluated here rather than delegated:
    // the remaining rules must re-derive the frozen head from the frozen
    // body.
    let frozen = freeze_rule(rule);
    let reduced = candidate.without_rule(idx);
    let mut input = FactSet::new();
    for f in &frozen.body_facts {
        input.insert_atom(f);
    }
    if rule.negative.is_empty() && reduced.rules.iter().all(|r| r.negative.is_empty()) {
        match evaluate(&reduced, &input, &EvalOptions::default()) {
            Ok(out) => {
                if out.database.dump().contains_atom(&frozen.head_fact) {
                    return Ok(format!(
                        "frozen head {} re-derived from the frozen body (Sagiv, uniform)",
                        frozen.head_fact
                    ));
                }
            }
            Err(e) => return Err(format!("frozen-rule evaluation failed: {e}")),
        }
    }
    // 3. Structural query-level conditions (the cleanup passes).
    if candidate.query.is_some() {
        let reachable = candidate.reachable_from_query();
        if !reachable.contains(&rule.head.pred) {
            return Ok(format!(
                "head `{}` unreachable from the query (query-level)",
                rule.head.pred
            ));
        }
        let productive = productive_preds(candidate, derived);
        for lit in &rule.body {
            if derived.contains(&lit.pred) && candidate.rules_for(&lit.pred).is_empty() {
                return Ok(format!(
                    "body uses `{}`, a derived predicate with no remaining rules \
                     (query-level)",
                    lit.pred
                ));
            }
            if derived.contains(&lit.pred) && !productive.contains(&lit.pred) {
                return Ok(format!(
                    "body uses `{}`, a derived predicate that can never produce a fact \
                     (query-level)",
                    lit.pred
                ));
            }
        }
        // 4. Uniform-query freeze test. Sound deletions at the uniform-query
        // level MUST pass it (UQE implies agreement on the frozen-body
        // instance); the paired differential check guards against the known
        // unsoundness of the bare test.
        if candidate.has_negation() {
            return Err(
                "cannot justify: program uses negation and no syntactic witness found".into(),
            );
        }
        let uqe = uniform_query_test(candidate, idx)
            .map_err(|e| format!("uniform-query test failed to run: {e}"))?;
        if uqe {
            match bounded_equiv_check(candidate, &reduced, &differential_config()) {
                Ok(None) => {
                    return Ok(
                        "uniform-query freeze test passed and the fixed-seed differential \
                         found no counterexample (uniform-query)"
                            .into(),
                    )
                }
                Ok(Some(w)) => {
                    return Err(format!(
                        "REFUSED: freeze test passed but the differential oracle found a \
                         counterexample instance: {}",
                        w.instance.to_text()
                    ))
                }
                Err(e) => return Err(format!("differential check failed to run: {e}")),
            }
        }
    }
    Err(format!(
        "cannot justify deleting `{rule}`: no witness found"
    ))
}

/// Justify a rule the optimizer *added*: either an implied rule (its
/// frozen head is already derivable — uniform) or a §5 cover unit rule for
/// the query predicate (query-level).
pub fn justify_addition(context: &Program, rule: &Rule) -> Result<String, String> {
    // Implied rule: adding it changes nothing on any input.
    if rule.negative.is_empty() && !context.has_negation() {
        let frozen = freeze_rule(rule);
        let mut input = FactSet::new();
        for f in &frozen.body_facts {
            input.insert_atom(f);
        }
        if let Ok(out) = evaluate(context, &input, &EvalOptions::default()) {
            if out.database.dump().contains_atom(&frozen.head_fact) {
                return Ok("implied rule: frozen head already derivable (uniform)".into());
            }
        }
    }
    // Cover unit rule q^a(t̄) :- q^a1(t̄1) where a1 covers a (§5).
    let Some(q) = &context.query else {
        return Err("cannot justify addition: no query for a cover rule".into());
    };
    if rule.head.pred != q.atom.pred || rule.body.len() != 1 || !rule.negative.is_empty() {
        return Err(format!("cannot justify added rule `{rule}`"));
    }
    let body = &rule.body[0];
    let (Some(a), Some(a1)) = (&rule.head.pred.adornment, &body.pred.adornment) else {
        return Err(format!("cannot justify added rule `{rule}`"));
    };
    if body.pred.name != rule.head.pred.name
        || !a.is_covered_by(a1)
        || rule.head.arity() != a.needed_count()
        || body.arity() != a1.needed_count()
    {
        return Err(format!("cannot justify added rule `{rule}`"));
    }
    // Positional correspondence: positions needed in both adornments must
    // carry the same term; positions needed only in a1 must be one-off
    // variables.
    let head_pos: BTreeMap<usize, &Term> = a
        .needed_positions()
        .into_iter()
        .zip(rule.head.terms.iter())
        .collect();
    for (p, t) in a1.needed_positions().into_iter().zip(body.terms.iter()) {
        match head_pos.get(&p) {
            Some(ht) => {
                if *ht != t {
                    return Err(format!(
                        "cover rule `{rule}` maps position {p} to different terms"
                    ));
                }
            }
            None => {
                let ok = matches!(t, Term::Var(v)
                    if rule.head.terms.iter().all(|ht| *ht != Term::Var(*v)));
                if !ok {
                    return Err(format!(
                        "cover rule `{rule}`: position {p} must hold a fresh variable"
                    ));
                }
            }
        }
    }
    Ok(format!(
        "cover unit rule (§5): {a1} covers {a} for the query predicate (query-level)"
    ))
}

/// The end-to-end bounded differential oracle: fixed-seed random small
/// EDBs, original vs. optimized answers compared row by row.
pub fn verify_differential(
    original: &Program,
    optimized: &Program,
    cfg: &EquivCheckConfig,
) -> PhaseCheck {
    match bounded_equiv_check(original, optimized, cfg) {
        Ok(None) => PhaseCheck::pass(
            "differential",
            format!(
                "{} fixed-seed instance(s) (seed {:#x}): answers agree",
                cfg.instances, cfg.rng_seed
            ),
        ),
        Ok(Some(w)) => PhaseCheck::fail(
            "differential",
            format!(
                "answers diverge on instance:\n{}\noriginal: {:?}\noptimized: {:?}",
                w.instance.to_text(),
                w.answers1,
                w.answers2
            ),
        ),
        Err(e) => PhaseCheck::fail("differential", format!("evaluation failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn program(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    #[test]
    fn adornment_phase_verifies_and_catches_tampering() {
        let original = program(
            "query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
        );
        let adorned = datalog_adorn::adorn(&original).unwrap().program;
        let check = verify_adornment(&original, &adorned);
        assert!(check.ok, "{}", check.detail);
        // Tamper: flip the recursive occurrence to all-needed.
        let tampered = program(
            "query[n](X) :- a[nd](X, Y).\n\
             a[nd](X, Y) :- p(X, Z), a[nn](Z, Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- query[n](X).",
        );
        let check = verify_adornment(&original, &tampered);
        assert!(!check.ok);
    }

    #[test]
    fn components_phase_verifies_example_2() {
        let before = program(
            "p[nd](X, U) :- q1(X, Y), q2(Y, Z), q3(U, V), q4[n](V), q5(W).\n\
             q4[n](V) :- q6(V).\n\
             ?- p[nd](X, _).",
        );
        let mut report = datalog_opt::Report::default();
        let r = datalog_opt::extract_components(&before, true, &mut report);
        let check = verify_components(&before, &r.program);
        assert!(check.ok, "{}", check.detail);
    }

    #[test]
    fn components_rejects_connected_extraction() {
        let before = program("q(X) :- a(X, Y), c(Y).\n?- q(X).");
        // Bogus rewrite: c(Y) extracted although Y joins with a(X, Y).
        let after = program(
            "b1 :- c(Y).\n\
             q(X) :- a(X, Y), b1.\n\
             ?- q(X).",
        );
        let check = verify_components(&before, &after);
        assert!(!check.ok);
        assert!(
            check.detail.contains("homomorphism") || check.detail.contains("shares"),
            "{}",
            check.detail
        );
    }

    #[test]
    fn components_rejects_dropped_literal() {
        let before = program("q(X) :- a(X), c(W), d(W).\n?- q(X).");
        let after = program(
            "b1 :- c(_).\n\
             q(X) :- a(X), b1.\n\
             ?- q(X).",
        );
        // d(W) vanished: the backward homomorphism cannot place it.
        let check = verify_components(&before, &after);
        assert!(!check.ok, "{}", check.detail);
    }

    #[test]
    fn projection_phase_verifies_example_3() {
        let before = program(
            "query[n](X) :- a[nd](X, Y).\n\
             a[nd](X, Y) :- p(X, Z), a[nd](Z, Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- query[n](X).",
        );
        let after = program(
            "query[n](X) :- a[nd](X).\n\
             a[nd](X) :- p(X, Z), a[nd](Z).\n\
             a[nd](X) :- p(X, Y).\n\
             ?- query[n](X).",
        );
        let check = verify_projection(&before, &after);
        assert!(check.ok, "{}", check.detail);
        // A projection that forgot the recursive occurrence is rejected.
        let bad = program(
            "query[n](X) :- a[nd](X).\n\
             a[nd](X) :- p(X, Z), a[nd](Z, Y).\n\
             a[nd](X) :- p(X, Y).\n\
             ?- query[n](X).",
        );
        assert!(!verify_projection(&before, &bad).ok);
    }

    #[test]
    fn projection_rejects_dropping_a_used_variable() {
        let before = program(
            "q[n](X) :- a[nd](X, Y), s(Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- q[n](X).",
        );
        let after = program(
            "q[n](X) :- a[nd](X), s(Y).\n\
             a[nd](X) :- p(X, Y).\n\
             ?- q[n](X).",
        );
        let check = verify_projection(&before, &after);
        assert!(!check.ok);
        assert!(check.detail.contains("Lemma 3.2"), "{}", check.detail);
    }

    #[test]
    fn deletion_justified_by_subsumption_witness() {
        let p = program(
            "a[nd](X) :- p(X, Y).\n\
             a[nd](X) :- p(X, Z), a[nd](Z).\n\
             ?- a[nd](X).",
        );
        let derived = p.idb_preds();
        let j = justify_deletion(&p, 1, &derived).unwrap();
        assert!(j.contains("θ-subsumed"), "{j}");
    }

    #[test]
    fn deletion_justified_by_frozen_rule_rederivation() {
        // The composite rule is implied by chaining the two others; no
        // single rule θ-subsumes it.
        let p = program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Z), t(Z, Y).\n\
             t2(X, Y) :- e(X, Z), e(Z, Y).\n\
             q(X) :- t(X, Y).\n\
             ?- q(X).",
        );
        let derived = p.idb_preds();
        // Deleting t2's rule: its head is t2, underivable elsewhere — but
        // t2 is unreachable from the query.
        let j = justify_deletion(&p, 2, &derived).unwrap();
        assert!(j.contains("unreachable"), "{j}");
        // A genuinely implied rule: a second recursive unfolding of t.
        let p2 = program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Z), t(Z, Y).\n\
             t(X, Y) :- e(X, Z), e(Z, W), t(W, Y).\n\
             q(X) :- t(X, Y).\n\
             ?- q(X).",
        );
        let j = justify_deletion(&p2, 2, &p2.idb_preds()).unwrap();
        assert!(j.contains("frozen head"), "{j}");
    }

    #[test]
    fn unsound_deletion_is_refused() {
        // Deleting the exit rule of a TC is flatly wrong; nothing in the
        // ladder may justify it.
        let p = program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Z), t(Z, Y).\n\
             ?- t(X, Y).",
        );
        let derived = p.idb_preds();
        let err = justify_deletion(&p, 0, &derived).unwrap_err();
        assert!(
            err.contains("cannot justify") || err.contains("REFUSED"),
            "{err}"
        );
    }

    #[test]
    fn cover_rule_addition_is_justified() {
        let p = program(
            "a[nd](X) :- a[nn](X, Z), p(Z, Y).\n\
             a[nd](X) :- p(X, Y).\n\
             a[nn](X, Y) :- a[nn](X, Z), p(Z, Y).\n\
             a[nn](X, Y) :- p(X, Y).\n\
             ?- a[nd](X).",
        );
        let cover = datalog_ast::parse_rule("a[nd](V0) :- a[nn](V0, _)").unwrap();
        let j = justify_addition(&p, &cover).unwrap();
        assert!(j.contains("cover"), "{j}");
        // A non-cover, non-implied addition is rejected.
        let bogus = datalog_ast::parse_rule("a[nd](X) :- q7(X)").unwrap();
        assert!(justify_addition(&p, &bogus).is_err());
    }

    #[test]
    fn differential_oracle_detects_a_real_divergence() {
        let p1 = program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Z), t(Z, Y).\n\
             ?- t(X, Y).",
        );
        let p2 = program("t(X, Y) :- e(X, Y).\n?- t(X, Y).");
        let check = verify_differential(&p1, &p2, &differential_config());
        assert!(!check.ok);
        assert!(check.detail.contains("diverge"), "{}", check.detail);
        let same = verify_differential(&p1, &p1, &differential_config());
        assert!(same.ok);
    }

    #[test]
    fn phase_check_json_shape() {
        let c = PhaseCheck::pass("projection", "ok");
        let s = c.to_json().to_string();
        assert!(s.contains("\"phase\":\"projection\""));
        assert!(s.contains("\"ok\":true"));
    }
}

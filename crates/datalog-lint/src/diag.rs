//! Lint diagnostics.
//!
//! Diagnostics carry a severity, a stable machine-readable code, a message
//! and a 1-based source position, and render in the same compiler-style
//! `origin:line:col: ...` form as [`datalog_ast::ParseError::render_at`],
//! so editors and CI can click through to the offending statement.

use datalog_trace::Json;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or suspicious-but-legal construct.
    Warning,
    /// The program is malformed or cannot mean what it says.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"safety"`, `"singleton-var"`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the offending statement.
    pub line: usize,
    /// 1-based column of the offending statement.
    pub col: usize,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(
        code: &'static str,
        span: (usize, usize),
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            line: span.0,
            col: span.1,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(
        code: &'static str,
        span: (usize, usize),
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            line: span.0,
            col: span.1,
        }
    }

    /// Render as `origin:line:col: severity[code]: message`, the same
    /// span shape as [`datalog_ast::ParseError::render_at`].
    pub fn render_at(&self, origin: &str) -> String {
        format!(
            "{origin}:{}:{}: {}[{}]: {}",
            self.line, self.col, self.severity, self.code, self.message
        )
    }

    /// JSON object for `--json` output.
    pub fn to_json(&self, origin: &str) -> Json {
        Json::obj()
            .with("file", origin)
            .with("line", self.line)
            .with("col", self.col)
            .with("severity", self.severity.to_string())
            .with("code", self.code)
            .with("message", self.message.as_str())
    }
}

/// Does the list contain any error-severity diagnostic?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Sort diagnostics into source order (line, col, code) for stable output.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.line, a.col, a.code, &a.message).cmp(&(b.line, b.col, b.code, &b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compiler_style() {
        let d = Diagnostic::error("safety", (3, 1), "head variable X is not bound in the body");
        assert_eq!(
            d.render_at("tests/lint/bad.dl"),
            "tests/lint/bad.dl:3:1: error[safety]: head variable X is not bound in the body"
        );
        let w = Diagnostic::warning("singleton-var", (7, 2), "variable Y occurs only once");
        assert!(w
            .render_at("x.dl")
            .starts_with("x.dl:7:2: warning[singleton-var]:"));
    }

    #[test]
    fn json_shape() {
        let d = Diagnostic::warning("unused-predicate", (2, 5), "predicate r is never used");
        let s = d.to_json("p.dl").to_string();
        assert!(s.contains("\"file\":\"p.dl\""), "{s}");
        assert!(s.contains("\"line\":2"), "{s}");
        assert!(s.contains("\"severity\":\"warning\""), "{s}");
        assert!(s.contains("\"code\":\"unused-predicate\""), "{s}");
    }

    #[test]
    fn error_detection_and_order() {
        let mut v = vec![
            Diagnostic::warning("b", (2, 1), "w"),
            Diagnostic::error("a", (1, 1), "e"),
        ];
        assert!(has_errors(&v));
        sort_diagnostics(&mut v);
        assert_eq!(v[0].code, "a");
        assert!(!has_errors(&v[..0]));
    }
}

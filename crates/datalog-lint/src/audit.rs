//! Adornment audit: an independent recomputation of the paper's Lemma 2.2
//! propagation, used to cross-check `datalog-adorn`.
//!
//! Two entry points:
//!
//! * [`audit_adorned_rules`] — a per-rule *soundness* audit of any adorned
//!   program: every `d` mark must be justified by Lemma 2.2 (the variable
//!   occurs nowhere else in the rule except possibly in `d` positions of
//!   the head). A position marked `n` where `d` would have been possible
//!   is merely conservative and is never flagged — `n` is always sound.
//! * [`recompute_adornment`] — a from-scratch reimplementation of the §2
//!   worklist propagation. The translation validator diffs its output
//!   against what `datalog-adorn` produced; any disagreement means one of
//!   the two implementations drifted.

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{Ad, Adornment, Atom, PredRef, Program, Query, Rule, Term, Var};

/// Audit every adorned rule of `program` for unsound `d` marks. Returns
/// `(rule_index, message)` pairs; an empty result means every `d` is
/// justified by Lemma 2.2.
pub fn audit_adorned_rules(program: &Program) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        audit_rule(ri, rule, &mut out);
    }
    out
}

fn audit_rule(ri: usize, rule: &Rule, out: &mut Vec<(usize, String)>) {
    // Variables the head *needs*: at `n` positions of a full-length head
    // adornment; every present variable of a projected head (the dropped
    // positions were the `d` ones); every variable of an unadorned head.
    let head_needs: BTreeSet<Var> = match &rule.head.pred.adornment {
        Some(ad) if rule.head.arity() == ad.len() => rule
            .head
            .terms
            .iter()
            .enumerate()
            .filter(|(i, _)| ad[*i] == Ad::N)
            .filter_map(|(_, t)| t.as_var())
            .collect(),
        _ => rule.head.var_occurrences().collect(),
    };
    let head_vars: BTreeSet<Var> = rule.head.var_occurrences().collect();
    let mut body_occ: BTreeMap<Var, usize> = BTreeMap::new();
    for lit in rule.body.iter().chain(rule.negative.iter()) {
        for v in lit.var_occurrences() {
            *body_occ.entry(v).or_insert(0) += 1;
        }
    }
    for lit in &rule.body {
        let Some(ad) = &lit.pred.adornment else {
            continue;
        };
        if lit.arity() != ad.len() {
            // Post-projection atom: the `d` positions are already gone and
            // every remaining term sits at a needed position.
            continue;
        }
        for (i, t) in lit.terms.iter().enumerate() {
            if ad[i] != Ad::D {
                continue;
            }
            match t {
                Term::Const(c) => out.push((
                    ri,
                    format!(
                        "position {i} of `{lit}` is marked d but holds the constant {c}, \
                         whose value constrains the match (Lemma 2.2 requires n)"
                    ),
                )),
                Term::Var(v) => {
                    let occurrences = body_occ.get(v).copied().unwrap_or(0);
                    if occurrences > 1 {
                        out.push((
                            ri,
                            format!(
                                "position {i} of `{lit}` is marked d but variable {v} \
                                 occurs {occurrences} times in the body (join variables \
                                 are needed, Lemma 2.2)"
                            ),
                        ));
                    } else if head_vars.contains(v) && head_needs.contains(v) {
                        out.push((
                            ri,
                            format!(
                                "position {i} of `{lit}` is marked d but variable {v} \
                                 is needed by the head (Lemma 2.2)"
                            ),
                        ));
                    }
                }
            }
        }
    }
    for lit in &rule.negative {
        if let Some(ad) = &lit.pred.adornment {
            if !ad.is_all_needed() {
                out.push((
                    ri,
                    format!(
                        "negated literal `not {lit}` must be adorned all-needed: \
                         negation-as-failure tests a specific tuple"
                    ),
                ));
            }
        }
    }
}

/// A from-scratch reimplementation of the §2 adornment propagation, kept
/// deliberately separate from `datalog-adorn` so the two can cross-check
/// each other. Returns the expected adorned program, or an error message
/// when the input cannot be adorned (no query, bad explicit adornment).
pub fn recompute_adornment(original: &Program) -> Result<Program, String> {
    let query = original
        .query
        .as_ref()
        .ok_or_else(|| "program has no query".to_string())?;
    let derived = original.idb_preds();
    let qbase = query.atom.pred.base();

    let query_ad: Adornment = match &query.atom.pred.adornment {
        Some(ad) => {
            if ad.len() != query.atom.arity() {
                return Err(format!(
                    "explicit query adornment {ad} does not match arity {}",
                    query.atom.arity()
                ));
            }
            ad.clone()
        }
        None => query
            .atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) if v.is_wildcard() => Ad::D,
                _ => Ad::N,
            })
            .collect(),
    };
    if !derived.contains(&qbase) {
        // EDB query: nothing to adorn.
        return Ok(original.clone());
    }

    // Fixpoint over the set of demanded (pred, adornment) versions.
    let mut demanded: BTreeSet<(PredRef, Adornment)> = BTreeSet::new();
    let mut stack = vec![(qbase.clone(), query_ad.clone())];
    let mut rules = Vec::new();
    while let Some((pred, ad)) = stack.pop() {
        if !demanded.insert((pred.clone(), ad.clone())) {
            continue;
        }
        for rule in original.rules.iter().filter(|r| r.head.pred == pred) {
            let adorned = expected_rule(rule, &ad, &derived);
            for lit in adorned.body.iter().chain(adorned.negative.iter()) {
                if let Some(lit_ad) = &lit.pred.adornment {
                    stack.push((lit.pred.base(), lit_ad.clone()));
                }
            }
            rules.push(adorned);
        }
    }

    let mut qatom = query.atom.clone();
    qatom.pred = qbase.with_adornment(query_ad);
    Ok(Program {
        rules,
        query: Some(Query::new(qatom)),
    })
}

/// Lemma 2.2 for one rule: a body argument is existential (`d`) iff it
/// holds a variable occurring exactly once across the positive and negated
/// body whose head occurrences (if any) all sit at `d` positions.
fn expected_rule(rule: &Rule, head_ad: &Adornment, derived: &BTreeSet<PredRef>) -> Rule {
    let mut occurrences: Vec<Var> = Vec::new();
    for lit in rule.body.iter().chain(rule.negative.iter()) {
        occurrences.extend(lit.var_occurrences());
    }
    let needed_by_head: BTreeSet<Var> = rule
        .head
        .terms
        .iter()
        .enumerate()
        .filter(|(i, _)| head_ad[*i] == Ad::N)
        .filter_map(|(_, t)| t.as_var())
        .collect();
    let adorn_literal = |lit: &Atom| -> Atom {
        if !derived.contains(&lit.pred) {
            return lit.clone();
        }
        let ad: Adornment = lit
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(_) => Ad::N,
                Term::Var(v) => {
                    let once = occurrences.iter().filter(|w| *w == v).count() == 1;
                    if once && !needed_by_head.contains(v) {
                        Ad::D
                    } else {
                        Ad::N
                    }
                }
            })
            .collect();
        Atom {
            pred: lit.pred.with_adornment(ad),
            terms: lit.terms.clone(),
        }
    };
    Rule::with_negation(
        Atom {
            pred: rule.head.pred.with_adornment(head_ad.clone()),
            terms: rule.head.terms.clone(),
        },
        rule.body.iter().map(adorn_literal).collect(),
        rule.negative
            .iter()
            .map(|lit| {
                if derived.contains(&lit.pred) {
                    Atom {
                        pred: lit.pred.with_adornment(Adornment::all_needed(lit.arity())),
                        terms: lit.terms.clone(),
                    }
                } else {
                    lit.clone()
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, parse_rule};

    fn program(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    #[test]
    fn sound_adornment_passes_audit() {
        let p = program(
            "a[nd](X, Y) :- p(X, Z), a[nd](Z, Y).\n\
             a[nd](X, Y) :- p(X, Y).\n\
             ?- a[nd](X, _).",
        );
        assert!(audit_adorned_rules(&p).is_empty());
    }

    #[test]
    fn join_variable_marked_d_is_flagged() {
        // Z occurs twice in the body: marking it d is unsound.
        let p = program("a[nd](X, Y) :- p(X, Z), a[dd](Z, Y).\n?- a[nd](X, _).");
        let v = audit_adorned_rules(&p);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, 0);
        assert!(v[0].1.contains("occurs 2 times"), "{}", v[0].1);
    }

    #[test]
    fn head_needed_variable_marked_d_is_flagged() {
        let p = program("a[nn](X, Y) :- p[nd](X, Y).\n?- a[nn](X, Y).");
        let v = audit_adorned_rules(&p);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].1.contains("needed by the head"), "{}", v[0].1);
    }

    #[test]
    fn constant_marked_d_is_flagged() {
        let p = program("a[n](X) :- p[nd](X, 3).\n?- a[n](X).");
        let v = audit_adorned_rules(&p);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].1.contains("constant 3"), "{}", v[0].1);
    }

    #[test]
    fn projected_atoms_are_not_flagged() {
        // Post-projection form: a[nd] with a single (needed) argument.
        let p = program("a[nd](X) :- p(X, Y).\nq[n](X) :- a[nd](X).\n?- q[n](X).");
        assert!(audit_adorned_rules(&p).is_empty());
    }

    #[test]
    fn negated_literal_with_existential_adornment_is_flagged() {
        let r = parse_rule("q[n](X) :- e(X), not d[nd](X, Y)").unwrap();
        // Y is unsafe here, but the audit only looks at adornments.
        let p = Program {
            rules: vec![r],
            query: None,
        };
        let v = audit_adorned_rules(&p);
        assert_eq!(v.len(), 1);
        assert!(v[0].1.contains("all-needed"), "{}", v[0].1);
    }

    #[test]
    fn recomputation_matches_datalog_adorn() {
        for src in [
            "query(X) :- a(X, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- query(X).",
            "a(X, Y) :- a(X, Z), p(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, _).",
            "s(X, Y) :- s(Y, X).\n\
             s(X, Y) :- p(X, Y).\n\
             ?- s(X, _).",
            "q(X) :- a(X, Y), b(Y).\n\
             a(X, Y) :- p(X, Y).\n\
             b(Y) :- s(Y).\n\
             ?- q(X).",
            "helper(X) :- e(X, Y).\n?- e(X, _).",
        ] {
            let p = program(src);
            let ours = recompute_adornment(&p).unwrap();
            let theirs = datalog_adorn::adorn(&p).unwrap().program;
            let render = |p: &Program| -> BTreeSet<String> {
                p.rules.iter().map(|r| r.to_string()).collect()
            };
            assert_eq!(render(&ours), render(&theirs), "disagreement on:\n{src}");
            assert_eq!(
                ours.query.map(|q| q.atom.to_string()),
                theirs.query.map(|q| q.atom.to_string())
            );
        }
    }

    #[test]
    fn recomputation_requires_a_query() {
        let p = program("a(X, Y) :- p(X, Y).");
        assert!(recompute_adornment(&p).is_err());
    }
}

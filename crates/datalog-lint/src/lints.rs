//! Program lints over parsed Datalog programs.
//!
//! Errors make the program malformed (safety/range-restriction violations,
//! arity and adornment inconsistencies, unknown query predicates — plus
//! unsound `d` marks found by the Lemma 2.2 audit). Warnings flag
//! suspicious-but-legal constructs: singleton ("typo") variables, unused
//! or underivable predicates, rules unreachable from the query, duplicate
//! or θ-subsumed rules, and facts for derived predicates.

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{parse_program, Atom, ParsedProgram, PredRef, Rule};

use crate::audit::audit_adorned_rules;
use crate::contain::subsumption_pairs;
use crate::diag::{sort_diagnostics, Diagnostic};

/// Lint a source text. Parse failures are reported as a single
/// `error[parse]` diagnostic at the failure position.
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    match parse_program(src) {
        Ok(parsed) => lint_program(&parsed),
        Err(e) => vec![Diagnostic::error("parse", (e.line, e.col), e.message)],
    }
}

/// Lint a parsed program. Diagnostics come back in source order.
pub fn lint_program(parsed: &ParsedProgram) -> Vec<Diagnostic> {
    let program = &parsed.program;
    let mut diags = Vec::new();

    check_arities(parsed, &mut diags);
    for (ri, rule) in program.rules.iter().enumerate() {
        let span = parsed.rule_span(ri);
        check_rule_safety(rule, span, &mut diags);
        check_singletons(rule, span, &mut diags);
    }
    for (ri, message) in audit_adorned_rules(program) {
        diags.push(Diagnostic::error(
            "adornment",
            parsed.rule_span(ri),
            message,
        ));
    }
    check_predicates(parsed, &mut diags);
    check_subsumption(parsed, &mut diags);
    check_query(parsed, &mut diags);
    diags.extend(crate::bounds::bounds_diagnostics(parsed));

    sort_diagnostics(&mut diags);
    diags
}

/// Arity and adornment-shape consistency, first-conflict-wins, mirrored
/// from `Program::arities` but anchored to statement spans.
fn check_arities(parsed: &ParsedProgram, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<PredRef, usize> = BTreeMap::new();
    fn visit(
        seen: &mut BTreeMap<PredRef, usize>,
        atom: &Atom,
        span: (usize, usize),
        diags: &mut Vec<Diagnostic>,
    ) {
        if let Some(ad) = &atom.pred.adornment {
            let k = atom.arity();
            if k != ad.len() && k != ad.needed_count() {
                diags.push(Diagnostic::error(
                    "arity",
                    span,
                    format!(
                        "`{}` has adornment {ad} ({} position(s)) but {k} argument(s)",
                        atom.pred,
                        ad.len()
                    ),
                ));
                return;
            }
        }
        match seen.get(&atom.pred) {
            None => {
                seen.insert(atom.pred.clone(), atom.arity());
            }
            Some(&k) if k != atom.arity() => diags.push(Diagnostic::error(
                "arity",
                span,
                format!(
                    "`{}` used with {} argument(s) but previously with {k}",
                    atom.pred,
                    atom.arity()
                ),
            )),
            Some(_) => {}
        }
    }
    for (ri, rule) in parsed.program.rules.iter().enumerate() {
        let span = parsed.rule_span(ri);
        visit(&mut seen, &rule.head, span, diags);
        for lit in rule.body.iter().chain(rule.negative.iter()) {
            visit(&mut seen, lit, span, diags);
        }
    }
    for (pred, line, col) in &parsed.fact_spans {
        if let (Some(&k), Some(tuples)) = (seen.get(pred), parsed.facts.get(pred)) {
            if let Some(t) = tuples.iter().find(|t| t.len() != k) {
                diags.push(Diagnostic::error(
                    "arity",
                    (*line, *col),
                    format!(
                        "fact for `{pred}` has {} value(s) but the predicate has arity {k}",
                        t.len()
                    ),
                ));
            }
        }
    }
    if let Some(q) = &parsed.program.query {
        let span = parsed.query_span.unwrap_or((1, 1));
        visit(&mut seen, &q.atom, span, diags);
    }
}

/// Range restriction: every head variable and every variable of a negated
/// literal must be bound by a positive body literal. Wildcards in the head
/// are flagged separately — a head position that is never bound cannot be
/// range-restricted at all.
fn check_rule_safety(rule: &Rule, span: (usize, usize), diags: &mut Vec<Diagnostic>) {
    let body_vars = rule.body_vars();
    let mut reported = BTreeSet::new();
    for v in rule.head.var_occurrences() {
        if v.is_wildcard() {
            if reported.insert(v) {
                diags.push(Diagnostic::error(
                    "wildcard-in-head",
                    span,
                    format!("wildcard in the head of `{rule}`: head positions must be named"),
                ));
            }
            continue;
        }
        if !body_vars.contains(&v) && reported.insert(v) {
            diags.push(Diagnostic::error(
                "safety",
                span,
                format!("head variable {v} of `{rule}` is not bound by a positive body literal"),
            ));
        }
    }
    for v in rule.negative.iter().flat_map(|a| a.var_occurrences()) {
        if !body_vars.contains(&v) && reported.insert(v) {
            diags.push(Diagnostic::error(
                "safety",
                span,
                format!(
                    "variable {v} of a negated literal in `{rule}` is not bound by a \
                     positive body literal"
                ),
            ));
        }
    }
}

/// Singleton ("typo") variables: a named variable occurring exactly once
/// in the whole rule, in the positive body. One-off variables are legal
/// (they read as existentials) but a misspelling produces exactly this
/// shape, so the lint asks for an explicit `_` or `_name`.
fn check_singletons(rule: &Rule, span: (usize, usize), diags: &mut Vec<Diagnostic>) {
    let body_only: BTreeSet<_> = rule.body.iter().flat_map(|a| a.var_occurrences()).collect();
    for v in body_only {
        if v.is_wildcard() || v.name().starts_with('_') {
            continue;
        }
        if rule.occurrence_count(v) == 1 {
            diags.push(Diagnostic::warning(
                "singleton-var",
                span,
                format!(
                    "variable {v} occurs only once in `{rule}` — use `_` if the \
                     existential reading is intended"
                ),
            ));
        }
    }
}

/// Predicate-level lints: facts for derived predicates, derived predicates
/// never used, derived predicates that can never produce a fact, and rules
/// unreachable from the query.
fn check_predicates(parsed: &ParsedProgram, diags: &mut Vec<Diagnostic>) {
    let program = &parsed.program;
    let derived = program.idb_preds();

    for (pred, line, col) in &parsed.fact_spans {
        if derived.contains(pred) {
            diags.push(Diagnostic::warning(
                "fact-for-derived",
                (*line, *col),
                format!(
                    "fact for derived predicate `{pred}`: by the paper's convention \
                     the IDB holds no facts (EDB facts arrive with the database)"
                ),
            ));
        }
    }

    // Derived predicates never referenced by any body, negation or query.
    let mut used: BTreeSet<PredRef> = BTreeSet::new();
    for rule in &program.rules {
        for lit in rule.body.iter().chain(rule.negative.iter()) {
            used.insert(lit.pred.clone());
        }
    }
    if let Some(q) = &program.query {
        used.insert(q.atom.pred.clone());
    }
    let mut unused: BTreeSet<PredRef> = BTreeSet::new();
    for pred in &derived {
        if !used.contains(pred) {
            unused.insert(pred.clone());
            let first = program.rules_for(pred)[0];
            diags.push(Diagnostic::warning(
                "unused-predicate",
                parsed.rule_span(first),
                format!("derived predicate `{pred}` is never used"),
            ));
        }
    }

    // Productivity fixpoint: a derived predicate is productive when some
    // rule for it has every positive derived body literal productive
    // (recursion with no exit rule can never derive a fact).
    let mut productive: BTreeSet<PredRef> = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if productive.contains(&rule.head.pred) {
                continue;
            }
            let ok = rule
                .body
                .iter()
                .all(|lit| !derived.contains(&lit.pred) || productive.contains(&lit.pred));
            if ok {
                productive.insert(rule.head.pred.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for pred in &derived {
        if !productive.contains(pred) {
            let first = program.rules_for(pred)[0];
            diags.push(Diagnostic::warning(
                "underivable",
                parsed.rule_span(first),
                format!(
                    "derived predicate `{pred}` can never derive a fact \
                     (every rule depends on an underivable predicate)"
                ),
            ));
        }
    }

    if program.query.is_some() {
        let reachable = program.reachable_from_query();
        for (ri, rule) in program.rules.iter().enumerate() {
            if !reachable.contains(&rule.head.pred) && !unused.contains(&rule.head.pred) {
                diags.push(Diagnostic::warning(
                    "unreachable-rule",
                    parsed.rule_span(ri),
                    format!("rule `{rule}` is unreachable from the query"),
                ));
            }
        }
    }
}

/// Duplicate / θ-subsumed rules via the containment checker.
fn check_subsumption(parsed: &ParsedProgram, diags: &mut Vec<Diagnostic>) {
    for (i, j) in subsumption_pairs(&parsed.program) {
        let (line, _) = parsed.rule_span(i);
        let duplicate =
            crate::contain::subsumes(&parsed.program.rules[j], &parsed.program.rules[i]);
        let what = if duplicate {
            "a duplicate of"
        } else {
            "subsumed by"
        };
        diags.push(Diagnostic::warning(
            "subsumed-rule",
            parsed.rule_span(j),
            format!(
                "rule `{}` is {what} the rule at line {line} (`{}`) and can be deleted",
                parsed.program.rules[j], parsed.program.rules[i]
            ),
        ));
    }
}

/// Query checks: the query predicate must exist, and an explicit query
/// adornment must match the atom's arity.
fn check_query(parsed: &ParsedProgram, diags: &mut Vec<Diagnostic>) {
    let Some(q) = &parsed.program.query else {
        return;
    };
    let span = parsed.query_span.unwrap_or((1, 1));
    let known: BTreeSet<PredRef> = parsed
        .program
        .rules
        .iter()
        .flat_map(|r| {
            std::iter::once(&r.head)
                .chain(r.body.iter())
                .chain(r.negative.iter())
        })
        .map(|a| a.pred.base())
        .chain(parsed.facts.keys().map(|p| p.base()))
        .collect();
    if !known.contains(&q.atom.pred.base()) {
        diags.push(Diagnostic::error(
            "query",
            span,
            format!(
                "query references `{}`, which no rule or fact defines",
                q.atom.pred.base()
            ),
        ));
    }
    if let Some(ad) = &q.atom.pred.adornment {
        if ad.len() != q.atom.arity() && ad.needed_count() != q.atom.arity() {
            diags.push(Diagnostic::error(
                "query",
                span,
                format!(
                    "query adornment {ad} does not match arity {}",
                    q.atom.arity()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{has_errors, Severity};

    fn codes(src: &str) -> Vec<(&'static str, Severity)> {
        lint_source(src)
            .into_iter()
            .map(|d| (d.code, d.severity))
            .collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = lint_source(
            "p(1, 2).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn parse_error_becomes_diagnostic() {
        let d = lint_source("q(X :- p(X).");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "parse");
        assert!(has_errors(&d));
    }

    #[test]
    fn unsafe_head_variable() {
        let d = lint_source("q(X, Y) :- e(X).\n?- q(X, Y).");
        assert!(d.iter().any(|d| d.code == "safety"), "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unsafe_negated_variable() {
        let d = lint_source("q(X) :- e(X), not d(X, Y).\n?- q(X).");
        assert!(
            d.iter()
                .any(|d| d.code == "safety" && d.message.contains("negated")),
            "{d:?}"
        );
    }

    #[test]
    fn wildcard_in_head() {
        let d = lint_source("q(X, _) :- e(X).\n?- q(X, Y).");
        assert!(d.iter().any(|d| d.code == "wildcard-in-head"), "{d:?}");
    }

    #[test]
    fn singleton_variable_is_warned_once() {
        let d = lint_source("q(X) :- e(X, Tmp).\n?- q(X).");
        let singles: Vec<_> = d.iter().filter(|d| d.code == "singleton-var").collect();
        assert_eq!(singles.len(), 1, "{d:?}");
        assert_eq!(singles[0].severity, Severity::Warning);
        assert!(singles[0].message.contains("Tmp"));
        // Underscore-named and wildcard variables are exempt.
        let d = lint_source("q(X) :- e(X, _tmp), f(X, _).\n?- q(X).");
        assert!(d.iter().all(|d| d.code != "singleton-var"), "{d:?}");
    }

    #[test]
    fn arity_mismatch_points_at_second_use() {
        let d = lint_source("q(X) :- e(X, Y).\nr(X) :- e(X).\n?- q(X).");
        let arity: Vec<_> = d.iter().filter(|d| d.code == "arity").collect();
        assert_eq!(arity.len(), 1, "{d:?}");
        assert_eq!(arity[0].line, 2);
        // Fact arity against rule use.
        let d = lint_source("e(1, 2, 3).\nq(X) :- e(X, Y).\n?- q(X).");
        assert!(d.iter().any(|d| d.code == "arity" && d.line == 1), "{d:?}");
    }

    #[test]
    fn adornment_shape_mismatch() {
        let d = lint_source("q[nnn](X) :- e(X).\n?- q[nnn](X, Y, Z).");
        assert!(d.iter().any(|d| d.code == "arity"), "{d:?}");
    }

    #[test]
    fn unused_and_underivable_predicates() {
        let d = lint_source(
            "q(X) :- e(X).\n\
             orphan(X) :- e(X).\n\
             loop(X) :- loop(X).\n\
             ?- q(X).",
        );
        assert!(d
            .iter()
            .any(|d| d.code == "unused-predicate" && d.message.contains("orphan")));
        assert!(d
            .iter()
            .any(|d| d.code == "underivable" && d.message.contains("loop")));
        // `orphan` is reported as unused, not additionally as unreachable.
        assert_eq!(
            d.iter().filter(|d| d.code == "unreachable-rule").count(),
            1, // only the `loop` rule
            "{d:?}"
        );
    }

    #[test]
    fn unreachable_rule_from_query() {
        let d = lint_source(
            "q(X) :- e(X).\n\
             helper(X) :- e(X).\n\
             side(X) :- helper(X).\n\
             ?- q(X).",
        );
        // helper is used (by side) so not unused; both are unreachable.
        assert!(
            d.iter()
                .any(|d| d.code == "unreachable-rule" && d.line == 2),
            "{d:?}"
        );
        assert!(d
            .iter()
            .any(|d| d.code == "unused-predicate" && d.message.contains("side")));
    }

    #[test]
    fn subsumed_rules_reference_the_subsumer() {
        let d = lint_source(
            "q(X) :- e(X, Y).\n\
             q(X) :- e(X, Y), f(Y).\n\
             ?- q(X).",
        );
        let s: Vec<_> = d.iter().filter(|d| d.code == "subsumed-rule").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].line, 2);
        assert!(s[0].message.contains("line 1"), "{}", s[0].message);
        assert!(s[0].message.contains("subsumed by"));
    }

    #[test]
    fn duplicate_rules_read_as_duplicates() {
        let d = lint_source("q(X) :- r(X).\nq(U) :- r(U).\n?- q(X).");
        assert!(
            d.iter()
                .any(|d| d.code == "subsumed-rule" && d.message.contains("duplicate")),
            "{d:?}"
        );
    }

    #[test]
    fn fact_for_derived_predicate() {
        let d = lint_source("q(1).\nq(X) :- e(X).\n?- q(X).");
        assert!(
            d.iter()
                .any(|d| d.code == "fact-for-derived" && d.line == 1),
            "{d:?}"
        );
    }

    #[test]
    fn unknown_query_predicate() {
        let d = lint_source("q(X) :- e(X).\n?- missing(X).");
        assert!(d.iter().any(|d| d.code == "query" && d.line == 2), "{d:?}");
    }

    #[test]
    fn adornment_audit_feeds_lints() {
        let d = lint_source("a[nd](X, Y) :- p(X, Z), a[dd](Z, Y).\n?- a[nd](X, _).");
        assert!(
            d.iter()
                .any(|d| d.code == "adornment" && d.severity == Severity::Error),
            "{d:?}"
        );
    }

    #[test]
    fn diagnostics_are_source_ordered() {
        let c = codes("loop(X) :- loop(X).\nq(X, Y) :- e(X).\n?- q(X, Y).");
        let lines: Vec<usize> = lint_source("loop(X) :- loop(X).\nq(X, Y) :- e(X).\n?- q(X, Y).")
            .iter()
            .map(|d| d.line)
            .collect();
        assert!(lines.windows(2).all(|w| w[0] <= w[1]), "{c:?} {lines:?}");
    }
}

//! Conjunctive-query containment via homomorphism.
//!
//! This is the single shared implementation of the one-way matching
//! discipline behind θ-subsumption (`datalog-opt`'s deletion pre-pass
//! delegates here), the duplicate-rule lint, and the translation
//! validator's containment witnesses.
//!
//! Rule `r1` **θ-subsumes** `r2` when some substitution `σ` over `r1`'s
//! variables maps `r1`'s head onto `r2`'s head and every literal of
//! `σ(body(r1))` occurs in `body(r2)`. Then every fact `r2` derives (on
//! any database) is derived by `r1` from a subset of the same premises, so
//! deleting `r2` preserves **uniform equivalence** — the strongest level
//! in the hierarchy of §4 of the paper. The same machinery decides CQ
//! containment (Chandra–Merlin): a homomorphism from the containing
//! query's canonical conjunction witnesses containment.

use std::collections::BTreeMap;

use datalog_ast::{Atom, Program, Rule, Term, Var};

/// A homomorphism witness: the substitution that maps the pattern onto the
/// target.
pub type Homomorphism = BTreeMap<Var, Term>;

/// Match `pattern` onto `target`, binding only pattern variables. Target
/// terms (variables included) are treated as ground. Shared with
/// `datalog-opt`'s fold machinery, which needs the same one-way discipline.
pub fn match_atom_onto(pattern: &Atom, target: &Atom, map: &mut Homomorphism) -> bool {
    if pattern.pred != target.pred || pattern.arity() != target.arity() {
        return false;
    }
    for (pt, tt) in pattern.terms.iter().zip(target.terms.iter()) {
        match pt {
            Term::Const(c) => {
                if *tt != Term::Const(*c) {
                    return false;
                }
            }
            Term::Var(v) => match map.get(v) {
                Some(bound) => {
                    if bound != tt {
                        return false;
                    }
                }
                None => {
                    map.insert(*v, *tt);
                }
            },
        }
    }
    true
}

/// Find a homomorphism extending `seed` that maps every atom of
/// `pos_pattern` onto some atom of `pos_target` and every atom of
/// `neg_pattern` onto some atom of `neg_target`. Several pattern atoms may
/// map onto the same target atom (e.g. `e(X,Y), e(X,Z)` maps onto a single
/// `e(X,Y)`), which is what makes this a true CQ homomorphism rather than
/// a sub-multiset test.
pub fn conjunction_homomorphism(
    pos_pattern: &[Atom],
    neg_pattern: &[Atom],
    pos_target: &[Atom],
    neg_target: &[Atom],
    seed: &Homomorphism,
) -> Option<Homomorphism> {
    let mut pattern: Vec<&Atom> = pos_pattern.iter().collect();
    pattern.extend(neg_pattern.iter());
    search(&pattern, pos_pattern.len(), pos_target, neg_target, 0, seed)
}

fn search(
    pattern: &[&Atom],
    split: usize,
    pos: &[Atom],
    neg: &[Atom],
    idx: usize,
    map: &Homomorphism,
) -> Option<Homomorphism> {
    if idx == pattern.len() {
        return Some(map.clone());
    }
    let candidates: &[Atom] = if idx < split { pos } else { neg };
    for candidate in candidates {
        let mut m2 = map.clone();
        if match_atom_onto(pattern[idx], candidate, &mut m2) {
            if let Some(found) = search(pattern, split, pos, neg, idx + 1, &m2) {
                return Some(found);
            }
        }
    }
    None
}

/// The substitution witnessing that `general` θ-subsumes `specific`, if
/// one exists.
///
/// Negated literals are constraints: every negation the general rule
/// imposes must appear (instantiated) among the specific rule's negations
/// too, or the general rule might fail to fire where the specific one
/// does.
pub fn subsumption_witness(general: &Rule, specific: &Rule) -> Option<Homomorphism> {
    // No body-length guard: several pattern literals may map onto one
    // target literal (e.g. q(X) :- e(X,Y), e(X,Z) subsumes q(X) :- e(X,Y)).
    let mut map = Homomorphism::new();
    if !match_atom_onto(&general.head, &specific.head, &mut map) {
        return None;
    }
    conjunction_homomorphism(
        &general.body,
        &general.negative,
        &specific.body,
        &specific.negative,
        &map,
    )
}

/// Does `general` θ-subsume `specific`?
pub fn subsumes(general: &Rule, specific: &Rule) -> bool {
    subsumption_witness(general, specific).is_some()
}

/// Pairs `(subsumer, subsumed)` of rule indices: rule `subsumed` is
/// θ-subsumed by the distinct rule `subsumer`. Mutual subsumption
/// (duplicate rules) is tie-broken so only the later occurrence is
/// reported, matching the optimizer's keep-the-first discipline.
pub fn subsumption_pairs(program: &Program) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..program.rules.len() {
        for j in 0..program.rules.len() {
            if i != j
                && subsumes(&program.rules[i], &program.rules[j])
                && !(subsumes(&program.rules[j], &program.rules[i]) && j < i)
            {
                out.push((i, j));
            }
        }
    }
    out
}

/// Indices of rules subsumed by some other rule of the program.
pub fn subsumed_indices(program: &Program) -> std::collections::BTreeSet<usize> {
    subsumption_pairs(program)
        .into_iter()
        .map(|(_, j)| j)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, parse_rule};

    fn rule(s: &str) -> Rule {
        parse_rule(s).unwrap()
    }

    #[test]
    fn extra_literal_is_subsumed() {
        let g = rule("q(X) :- e(X, Y)");
        let s = rule("q(X) :- e(X, Y), f(Y)");
        assert!(subsumes(&g, &s));
        assert!(!subsumes(&s, &g));
    }

    #[test]
    fn witness_is_a_real_homomorphism() {
        let g = rule("q(X) :- e(X, Y)");
        let s = rule("q(A) :- e(A, 3)");
        let w = subsumption_witness(&g, &s).unwrap();
        assert_eq!(w[&Var::new("X")], Term::var("A"));
        assert_eq!(w[&Var::new("Y")], Term::int(3));
    }

    #[test]
    fn variable_and_constant_specialization() {
        assert!(subsumes(
            &rule("q(X, Y) :- e(X, Y)"),
            &rule("q(X, X) :- e(X, X)")
        ));
        assert!(subsumes(&rule("q(X) :- e(X, Y)"), &rule("q(X) :- e(X, 3)")));
        assert!(!subsumes(
            &rule("q(X) :- e(X, 3)"),
            &rule("q(X) :- e(X, Y)")
        ));
    }

    #[test]
    fn different_heads_do_not_subsume() {
        let g = rule("q(X) :- e(X, Y)");
        assert!(!subsumes(&g, &rule("r(X) :- e(X, Y)")));
        assert!(!subsumes(&g, &rule("q(Y) :- e(X, Y)")));
    }

    #[test]
    fn repeated_literal_maps_onto_one() {
        let g = rule("q(X) :- e(X, Y), e(X, Z)");
        let s = rule("q(X) :- e(X, Y)");
        assert!(subsumes(&g, &s));
        assert!(subsumes(&s, &g));
    }

    #[test]
    fn negatives_are_constraints() {
        let g = rule("q(X) :- e(X), not d(X)");
        let s = rule("q(X) :- e(X), f(X), not d(X)");
        assert!(subsumes(&g, &s));
        // The general rule imposes a negation the specific one lacks.
        let s2 = rule("q(X) :- e(X), f(X)");
        assert!(!subsumes(&g, &s2));
    }

    #[test]
    fn pairs_and_indices_agree() {
        let p = parse_program(
            "q(X) :- r(X).\n\
             q(U) :- r(U).\n\
             q(X) :- r(X), s(X).\n\
             ?- q(X).",
        )
        .unwrap()
        .program;
        let pairs = subsumption_pairs(&p);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 2)));
        assert_eq!(subsumed_indices(&p), [1usize, 2].into());
    }

    #[test]
    fn recursion_is_not_falsely_subsumed() {
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        assert!(subsumed_indices(&p).is_empty());
    }

    #[test]
    fn seeded_homomorphism_respects_pins() {
        let pat = [parse_rule("h(X) :- e(X, Y)").unwrap().body[0].clone()];
        let tgt = [parse_rule("h(A) :- e(A, B)").unwrap().body[0].clone()];
        let mut seed = Homomorphism::new();
        seed.insert(Var::new("X"), Term::var("B")); // wrong pin: X must map to A
        assert!(conjunction_homomorphism(&pat, &[], &tgt, &[], &seed).is_none());
        let free = Homomorphism::new();
        assert!(conjunction_homomorphism(&pat, &[], &tgt, &[], &free).is_some());
    }
}

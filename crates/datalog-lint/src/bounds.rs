//! Static size-bound analysis: per-predicate derivation bounds.
//!
//! Abstract interpretation over the (possibly adorned) program that
//! computes, for every predicate, a symbolic upper bound on the number of
//! facts it can hold after fixpoint evaluation, as a polynomial in the
//! per-EDB-relation cardinalities `|r|`. The machinery follows the size
//! adornment idea of "Size Bound-Adorned Datalog" (PAPERS.md) transplanted
//! onto this repo's §2 adornment infrastructure:
//!
//! * **Non-recursive rules** get the classic conjunctive-query bound: the
//!   head count is at most `min(Π body counts, Π head-variable domains)`,
//!   summed over the predicate's rules. Projection (`d` positions already
//!   dropped by §3.2) only shrinks either factor.
//! * **Recursive SCCs** (via [`Program::sccs`], the same component DAG the
//!   optimizer uses) are bounded through *column domains*: the number of
//!   distinct values a column can take is traced through head variables to
//!   out-of-SCC body occurrences; columns fed only by in-SCC occurrences
//!   fall back to the active-domain polynomial `adom = Σ arity(r)·|r| + c`
//!   (every value in a derived fact is a program constant or occurs in
//!   some EDB fact). A recursive predicate's count is the product of its
//!   column domains.
//! * **Classification** ([`BoundClass`]): non-recursive predicates are
//!   `Bounded`; recursive SCCs where every rule uses at most one in-SCC
//!   positive literal are `Linear`; nonlinear SCCs with at least one
//!   traceable column are `Polynomial`; nonlinear SCCs where *no* column
//!   can be traced past the recursion (or whose certified degree exceeds
//!   [`MAX_CERTIFIED_DEGREE`]) are classified `Unbounded` — the analysis
//!   declines to certify anything tighter than the trivial active-domain
//!   fallback, and admission policies treat the form as worst-case.
//!
//! Every bound is *sound*: evaluating it against actual EDB cardinalities
//! yields a number no smaller than the true derived-fact count (the fuzz
//! harness asserts this on every random program). Bounds are kept as
//! minima over a small set of polynomials ([`Bound`]); dropping members of
//! the set is always sound, so the representation is pruned aggressively.
//!
//! Consumers: `datalog_opt::prepare` seeds join-order cost hints and
//! records the verdict as a `PhaseEvent::BoundsAnalyzed` (replayed by
//! `datalog_opt::validate`); the server evaluates the bound against live
//! cardinalities for pre-eval admission (`ERR bound`); resident-form
//! admission refuses `Unbounded` forms; `xdl lint --bounds` / `xdl
//! analyze` render the table below.

use std::collections::{BTreeMap, BTreeSet};

use datalog_ast::{Atom, ParsedProgram, PredRef, Program, Term, Value, Var};
use datalog_trace::{BoundClass, Json};

use crate::diag::{sort_diagnostics, Diagnostic};

/// Degree ceiling for a certified bound: recursive bounds whose tightest
/// polynomial exceeds this degree are classified [`BoundClass::Unbounded`]
/// (the number is still sound, but useless as a planning signal).
pub const MAX_CERTIFIED_DEGREE: u32 = 8;

/// How many polynomials a [`Bound`] keeps in its min-set before pruning.
const MAX_POLYS: usize = 3;

/// Nominal per-relation cardinality used for *static* cost ranking when no
/// runtime statistics exist yet (the cold-start case `prepare` seeds).
pub const DEFAULT_CARD: u64 = 1024;

/// A monomial: cardinality-variable name (`|r|` keyed by the rendered
/// predicate) → exponent.
type Monomial = BTreeMap<String, u32>;

/// A multivariate polynomial over EDB-relation cardinalities, with
/// saturating `u64` coefficients.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Poly {
    terms: BTreeMap<Monomial, u64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly {
            terms: BTreeMap::new(),
        }
    }

    /// A constant.
    pub fn constant(c: u64) -> Poly {
        let mut terms = BTreeMap::new();
        if c > 0 {
            terms.insert(Monomial::new(), c);
        }
        Poly { terms }
    }

    /// The cardinality variable `|pred|`.
    pub fn card(pred: &PredRef) -> Poly {
        let mut m = Monomial::new();
        m.insert(pred.to_string(), 1);
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Poly { terms }
    }

    /// Sum (coefficients saturate).
    pub fn add(&self, other: &Poly) -> Poly {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            let e = terms.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(*c);
        }
        Poly { terms }
    }

    /// Product (exponents and coefficients saturate).
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut terms: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m = m1.clone();
                for (v, e) in m2 {
                    let slot = m.entry(v.clone()).or_insert(0);
                    *slot = slot.saturating_add(*e);
                }
                let e = terms.entry(m).or_insert(0);
                *e = e.saturating_add(c1.saturating_mul(*c2));
            }
        }
        Poly { terms }
    }

    /// Multiply by a constant.
    pub fn scale(&self, c: u64) -> Poly {
        self.mul(&Poly::constant(c))
    }

    /// Total degree (max over monomials of the exponent sum).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.values().fold(0u32, |a, e| a.saturating_add(*e)))
            .max()
            .unwrap_or(0)
    }

    /// Evaluate against concrete cardinalities (missing relations count as
    /// empty), saturating at `u64::MAX`.
    pub fn eval(&self, cards: &BTreeMap<String, u64>) -> u64 {
        let mut total: u128 = 0;
        for (m, c) in &self.terms {
            let mut v = *c as u128;
            for (name, e) in m {
                let base = cards.get(name).copied().unwrap_or(0) as u128;
                for _ in 0..*e {
                    v = v.saturating_mul(base);
                }
            }
            total = total.saturating_add(v);
        }
        total.min(u64::MAX as u128) as u64
    }

    /// Render, highest-degree terms first: `2|e|^2 + |e||p| + 3`.
    pub fn render(&self) -> String {
        if self.terms.is_empty() {
            return "0".into();
        }
        let mut parts: Vec<(u32, String)> = Vec::new();
        for (m, c) in &self.terms {
            let deg = m.values().fold(0u32, |a, e| a.saturating_add(*e));
            let vars: String = m
                .iter()
                .map(|(v, e)| {
                    if *e == 1 {
                        format!("|{v}|")
                    } else {
                        format!("|{v}|^{e}")
                    }
                })
                .collect();
            let text = if m.is_empty() {
                c.to_string()
            } else if *c == 1 {
                vars
            } else {
                format!("{c}{vars}")
            };
            parts.push((deg, text));
        }
        parts.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        parts
            .into_iter()
            .map(|(_, t)| t)
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// An upper bound kept as the minimum of a small set of polynomials. Every
/// member is individually sound, so any nonempty subset is too — which
/// licenses pruning to [`MAX_POLYS`] members (smallest degree first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    polys: Vec<Poly>,
}

impl Bound {
    /// Bound by a single polynomial.
    pub fn poly(p: Poly) -> Bound {
        Bound { polys: vec![p] }
    }

    /// Constant bound.
    pub fn constant(c: u64) -> Bound {
        Bound::poly(Poly::constant(c))
    }

    fn prune(mut self) -> Bound {
        self.polys
            .sort_by_key(|p| (p.degree(), p.terms.len(), p.render()));
        self.polys.dedup();
        self.polys.truncate(MAX_POLYS);
        self
    }

    /// `min(self, other)`.
    pub fn min_with(&self, other: &Bound) -> Bound {
        let mut polys = self.polys.clone();
        polys.extend(other.polys.iter().cloned());
        Bound { polys }.prune()
    }

    /// `self + other`: min over cross-pair sums (each pair sums two sound
    /// upper bounds, so the minimum over pairs is sound).
    pub fn add(&self, other: &Bound) -> Bound {
        let polys = self
            .polys
            .iter()
            .flat_map(|a| other.polys.iter().map(move |b| a.add(b)))
            .collect();
        Bound { polys }.prune()
    }

    /// `self * other`, same cross-pair construction as [`Bound::add`].
    pub fn mul(&self, other: &Bound) -> Bound {
        let polys = self
            .polys
            .iter()
            .flat_map(|a| other.polys.iter().map(move |b| a.mul(b)))
            .collect();
        Bound { polys }.prune()
    }

    /// Tightest certified degree.
    pub fn degree(&self) -> u32 {
        self.polys.iter().map(Poly::degree).min().unwrap_or(0)
    }

    /// Evaluate: the minimum over member polynomials.
    pub fn eval(&self, cards: &BTreeMap<String, u64>) -> u64 {
        self.polys
            .iter()
            .map(|p| p.eval(cards))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Render: the sole polynomial, or `min(p1, p2, ...)`.
    pub fn render(&self) -> String {
        match self.polys.len() {
            0 => "unbounded".into(),
            1 => self.polys[0].render(),
            _ => format!(
                "min({})",
                self.polys
                    .iter()
                    .map(Poly::render)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

/// The analysis verdict for one predicate.
#[derive(Debug, Clone)]
pub struct PredBound {
    /// The predicate (adorned rendering when the program is adorned).
    pub pred: PredRef,
    /// Recursion classification of the predicate's SCC.
    pub class: BoundClass,
    /// Upper bound on the predicate's fact count. Always finite and sound
    /// — for `Unbounded`-classified predicates it is the active-domain
    /// fallback, which the classification marks as planner-useless.
    pub count: Bound,
    /// Per-column bound on the number of distinct values.
    pub cols: Vec<Bound>,
    /// Whether the predicate participates in recursion.
    pub recursive: bool,
}

/// The full per-program analysis result.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// Verdict per predicate: IDB predicates carry derived bounds, EDB
    /// predicates carry their seed `|r|` (so cost hints cover the whole
    /// body of every rule).
    pub preds: BTreeMap<PredRef, PredBound>,
    /// The EDB relations — the cardinality variables of every polynomial.
    pub edb: BTreeSet<PredRef>,
    /// The IDB predicates, in analysis order.
    pub idb: BTreeSet<PredRef>,
    /// The active-domain polynomial `Σ arity(r)·|r| + #constants`.
    pub adom: Poly,
}

/// Run the size-bound analysis. Fails only when the program itself is
/// inconsistent (arity clashes); lint surfaces report those separately.
pub fn analyze(program: &Program) -> Result<BoundsReport, String> {
    let arities = program.arities().map_err(|e| e.to_string())?;
    let edb = program.edb_preds();
    let idb = program.idb_preds();

    // Active domain: every value in a derived fact is a program constant
    // or occurs in some EDB fact.
    let mut constants: BTreeSet<Value> = BTreeSet::new();
    for r in &program.rules {
        for a in std::iter::once(&r.head)
            .chain(r.body.iter())
            .chain(r.negative.iter())
        {
            for t in &a.terms {
                if let Term::Const(c) = t {
                    constants.insert(*c);
                }
            }
        }
    }
    let mut adom = Poly::constant(constants.len() as u64);
    for r in &edb {
        let k = arities.get(r).copied().unwrap_or(0) as u64;
        adom = adom.add(&Poly::card(r).scale(k));
    }

    let mut report = BoundsReport {
        preds: BTreeMap::new(),
        edb: edb.clone(),
        idb: idb.clone(),
        adom: adom.clone(),
    };
    let adom_bound = Bound::poly(adom.clone());

    // Seed the EDB relations: count |r|, each column at most |r| values.
    for r in &edb {
        let k = arities.get(r).copied().unwrap_or(0);
        let card = Bound::poly(Poly::card(r));
        report.preds.insert(
            r.clone(),
            PredBound {
                pred: r.clone(),
                class: BoundClass::Bounded,
                count: card.clone(),
                cols: vec![card; k],
                recursive: false,
            },
        );
    }

    // Domain of a head variable: min over its positive body occurrences
    // whose predicate already has a verdict (out-of-SCC for recursive
    // rules, everything for non-recursive ones). None = untraceable.
    let dom_of = |report: &BoundsReport, rule: &datalog_ast::Rule, v: Var| -> Option<Bound> {
        let mut dom: Option<Bound> = None;
        for lit in &rule.body {
            let Some(pb) = report.preds.get(&lit.pred) else {
                continue;
            };
            for (i, t) in lit.terms.iter().enumerate() {
                if *t == Term::Var(v) {
                    if let Some(col) = pb.cols.get(i) {
                        dom = Some(match dom {
                            Some(d) => d.min_with(col),
                            None => col.clone(),
                        });
                    }
                }
            }
        }
        dom
    };

    let graph = program.dependency_graph();
    // `sccs` is reverse topological: callees come before callers, so every
    // out-of-SCC body predicate already has its verdict.
    for comp in program.sccs() {
        let in_scc: BTreeSet<&PredRef> = comp.iter().collect();
        let recursive = comp.len() > 1
            || graph
                .get(&comp[0])
                .is_some_and(|deps| deps.contains(&comp[0]));
        let comp_rules: Vec<usize> = (0..program.rules.len())
            .filter(|&ri| in_scc.contains(&program.rules[ri].head.pred))
            .collect();

        if !recursive {
            let p = comp[0].clone();
            let arity = arities.get(&p).copied().unwrap_or(0);
            let mut count = Bound::constant(0);
            let mut col_sums: Vec<Bound> = vec![Bound::constant(0); arity];
            for &ri in &comp_rules {
                let rule = &program.rules[ri];
                // Product of body counts.
                let mut body_product = Bound::constant(1);
                for lit in &rule.body {
                    if let Some(pb) = report.preds.get(&lit.pred) {
                        body_product = body_product.mul(&pb.count);
                    }
                }
                // Product of distinct head-variable domains.
                let mut head_product = Bound::constant(1);
                let head_vars: BTreeSet<Var> = rule.head.var_occurrences().collect();
                for v in &head_vars {
                    let dom = dom_of(&report, rule, *v).unwrap_or_else(|| adom_bound.clone());
                    head_product = head_product.mul(&dom);
                }
                count = count.add(&body_product.min_with(&head_product));
                for (i, t) in rule.head.terms.iter().enumerate().take(arity) {
                    let contrib = match t {
                        Term::Const(_) => Bound::constant(1),
                        Term::Var(v) => {
                            dom_of(&report, rule, *v).unwrap_or_else(|| adom_bound.clone())
                        }
                    };
                    col_sums[i] = col_sums[i].add(&contrib);
                }
            }
            let cols: Vec<Bound> = col_sums
                .into_iter()
                .map(|c| c.min_with(&count).min_with(&adom_bound))
                .collect();
            report.preds.insert(
                p.clone(),
                PredBound {
                    pred: p,
                    class: BoundClass::Bounded,
                    count,
                    cols,
                    recursive: false,
                },
            );
            continue;
        }

        // Recursive SCC. Linear: every rule uses ≤ 1 in-SCC positive
        // literal.
        let linear = comp_rules.iter().all(|&ri| {
            program.rules[ri]
                .body
                .iter()
                .filter(|a| in_scc.contains(&a.pred))
                .count()
                <= 1
        });
        // Column domains traced through out-of-SCC occurrences; columns
        // fed only by in-SCC occurrences fall back to the active domain.
        let mut any_traced = false;
        let mut has_cols = false;
        let mut verdicts: Vec<PredBound> = Vec::new();
        for p in &comp {
            let arity = arities.get(p).copied().unwrap_or(0);
            has_cols |= arity > 0;
            let mut cols: Vec<Bound> = Vec::with_capacity(arity);
            for i in 0..arity {
                let mut col = Bound::constant(0);
                let mut fell_back = false;
                for &ri in &comp_rules {
                    let rule = &program.rules[ri];
                    if rule.head.pred != *p {
                        continue;
                    }
                    let contrib = match rule.head.terms.get(i) {
                        Some(Term::Const(_)) => Bound::constant(1),
                        Some(Term::Var(v)) => match dom_of(&report, rule, *v) {
                            Some(d) => d,
                            None => {
                                fell_back = true;
                                adom_bound.clone()
                            }
                        },
                        None => Bound::constant(0),
                    };
                    col = col.add(&contrib);
                }
                if fell_back {
                    // The active domain already covers every source.
                    col = adom_bound.clone();
                } else {
                    // A column is *traced* only when every rule's
                    // contribution resolved outside the SCC — the signal
                    // that the recursion itself has certifiable structure.
                    any_traced = true;
                }
                cols.push(col.min_with(&adom_bound));
            }
            let count = cols.iter().fold(Bound::constant(1), |acc, c| acc.mul(c));
            verdicts.push(PredBound {
                pred: p.clone(),
                class: BoundClass::Linear, // provisional; fixed below
                count,
                cols,
                recursive: true,
            });
        }
        let worst_degree = verdicts.iter().map(|v| v.count.degree()).max().unwrap_or(0);
        let class = if worst_degree > MAX_CERTIFIED_DEGREE || (!linear && has_cols && !any_traced) {
            BoundClass::Unbounded
        } else if linear {
            BoundClass::Linear
        } else {
            BoundClass::Polynomial
        };
        for mut v in verdicts {
            v.class = class;
            report.preds.insert(v.pred.clone(), v);
        }
    }

    Ok(report)
}

impl BoundsReport {
    /// Classification of one predicate (unknown predicates are `Bounded`:
    /// they hold no derived facts).
    pub fn class_of(&self, pred: &PredRef) -> BoundClass {
        self.preds
            .get(pred)
            .map(|p| p.class)
            .unwrap_or(BoundClass::Bounded)
    }

    /// Worst classification across the derived predicates.
    pub fn worst_class(&self) -> BoundClass {
        self.idb
            .iter()
            .map(|p| self.class_of(p))
            .max()
            .unwrap_or(BoundClass::Bounded)
    }

    /// Total derived-fact bound: the sum over IDB predicates (what the
    /// engine's `fact_budget` meters).
    pub fn total(&self) -> Bound {
        self.idb
            .iter()
            .filter_map(|p| self.preds.get(p))
            .fold(Bound::constant(0), |acc, pb| acc.add(&pb.count))
    }

    /// Evaluate one predicate's bound against concrete cardinalities
    /// (keys are rendered predicate names, values committed row counts).
    pub fn eval_count(&self, pred: &PredRef, cards: &BTreeMap<String, u64>) -> Option<u64> {
        self.preds.get(pred).map(|pb| pb.count.eval(cards))
    }

    /// Evaluate the total derived-fact bound.
    pub fn eval_total(&self, cards: &BTreeMap<String, u64>) -> u64 {
        self.total().eval(cards)
    }

    /// Per-predicate estimated row counts under `cards` — the join-order
    /// cost hints `EvalOptions::cost_hints` consumes. EDB predicates get
    /// their actual cardinality, IDB predicates their evaluated bound.
    pub fn cost_hints(&self, cards: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
        self.preds
            .iter()
            .map(|(p, pb)| (p.to_string(), pb.count.eval(cards)))
            .collect()
    }

    /// Nominal cardinalities ([`DEFAULT_CARD`] per EDB relation) for the
    /// cold-start case where no runtime statistics exist yet.
    pub fn default_cards(&self) -> BTreeMap<String, u64> {
        self.edb
            .iter()
            .map(|p| (p.to_string(), DEFAULT_CARD))
            .collect()
    }

    /// The per-predicate table `xdl lint --bounds` / `xdl analyze` print.
    pub fn to_text(&self) -> String {
        let mut out = String::from("predicate\tclass\tbound\n");
        for p in self.idb.iter().chain(self.edb.iter()) {
            let Some(pb) = self.preds.get(p) else {
                continue;
            };
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                pb.pred,
                pb.class.as_str(),
                pb.count.render()
            ));
        }
        out
    }

    /// JSON export (the `bounds` section of `xdl analyze --json`).
    pub fn to_json(&self) -> Json {
        let mut preds: Vec<Json> = Vec::new();
        for p in self.idb.iter().chain(self.edb.iter()) {
            let Some(pb) = self.preds.get(p) else {
                continue;
            };
            preds.push(
                Json::obj()
                    .with("pred", pb.pred.to_string().as_str())
                    .with("class", pb.class.as_str())
                    .with("bound", pb.count.render().as_str())
                    .with("degree", pb.count.degree() as u64)
                    .with("recursive", pb.recursive),
            );
        }
        Json::obj()
            .with("adom", self.adom.render().as_str())
            .with("worst_class", self.worst_class().as_str())
            .with("total", self.total().render().as_str())
            .with("preds", preds)
    }
}

/// Union-find over body-literal connectivity (shared variables).
fn body_components(atoms: &[&Atom]) -> Vec<usize> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut owner: BTreeMap<Var, usize> = BTreeMap::new();
    for (i, a) in atoms.iter().enumerate() {
        for v in a.var_occurrences() {
            if v.is_wildcard() {
                continue;
            }
            match owner.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

/// Bound-analysis diagnostics: cartesian blow-ups (a rule whose head draws
/// variables from disconnected body groups, so the derivation bound is a
/// full cross product) and recursion the analysis cannot bound past the
/// active-domain fallback. All warnings — `--deny-warnings` promotes them.
pub fn bounds_diagnostics(parsed: &ParsedProgram) -> Vec<Diagnostic> {
    let program = &parsed.program;
    let Ok(report) = analyze(program) else {
        // Arity clashes etc. — the core lints already report those.
        return Vec::new();
    };
    let mut diags = Vec::new();

    for (ri, rule) in program.rules.iter().enumerate() {
        // Only literals that bind variables can multiply the bound.
        let lits: Vec<&Atom> = rule
            .body
            .iter()
            .filter(|a| a.var_occurrences().any(|v| !v.is_wildcard()))
            .collect();
        if lits.len() < 2 {
            continue;
        }
        let roots = body_components(&lits);
        let head_vars: BTreeSet<Var> = rule.head.var_occurrences().collect();
        // Components contributing at least one head variable: those are
        // the groups whose counts multiply into the head bound. (Groups
        // with no head variable are existential subqueries — the §3.1
        // boolean extraction reduces them to 0/1 factors.)
        let mut head_groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (i, lit) in lits.iter().enumerate() {
            if lit
                .var_occurrences()
                .any(|v| !v.is_wildcard() && head_vars.contains(&v))
            {
                head_groups
                    .entry(roots[i])
                    .or_default()
                    .push(lit.pred.to_string());
            }
        }
        if head_groups.len() >= 2 {
            let groups: Vec<String> = head_groups
                .values()
                .map(|g| format!("{{{}}}", g.join(", ")))
                .collect();
            diags.push(Diagnostic::warning(
                "bound-cartesian",
                parsed.rule_span(ri),
                format!(
                    "rule `{rule}` joins {} variable-disjoint groups {} — \
                     the derivation bound is their full cross product",
                    groups.len(),
                    groups.join(" x ")
                ),
            ));
        }
    }

    // One warning per Unbounded-classified SCC, anchored at the first
    // defining rule.
    let mut warned: BTreeSet<PredRef> = BTreeSet::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let pred = &rule.head.pred;
        if warned.contains(pred) || report.class_of(pred) != BoundClass::Unbounded {
            continue;
        }
        let arity = rule.head.arity();
        diags.push(Diagnostic::warning(
            "bound-unbounded",
            parsed.rule_span(ri),
            format!(
                "recursive predicate `{pred}` is nonlinear and no column can be \
                 traced to a base relation; no size bound tighter than the \
                 active-domain fallback adom^{arity} is certified — bound-aware \
                 admission will flag this form"
            ),
        ));
        warned.insert(pred.clone());
    }

    sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::parse_program;

    fn parsed(src: &str) -> ParsedProgram {
        parse_program(src).unwrap()
    }

    fn cards(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn poly_arithmetic_and_rendering() {
        let e = Poly::card(&PredRef::new("e"));
        let p = Poly::card(&PredRef::new("p"));
        let q = e.mul(&e).scale(2).add(&e.mul(&p)).add(&Poly::constant(3));
        assert_eq!(q.render(), "2|e|^2 + |e||p| + 3");
        assert_eq!(q.degree(), 2);
        assert_eq!(q.eval(&cards(&[("e", 10), ("p", 5)])), 253);
        // Missing relations evaluate as empty.
        assert_eq!(q.eval(&cards(&[("e", 10)])), 203);
        assert_eq!(Poly::zero().render(), "0");
    }

    #[test]
    fn bound_min_set_is_sound_and_pruned() {
        let e = Bound::poly(Poly::card(&PredRef::new("e")));
        let big = e.mul(&e).mul(&e);
        let b = big.min_with(&e);
        assert_eq!(b.eval(&cards(&[("e", 7)])), 7);
        assert_eq!(b.degree(), 1);
        // Products distribute across the min-set.
        let sq = b.mul(&b);
        assert_eq!(sq.eval(&cards(&[("e", 7)])), 49);
    }

    #[test]
    fn transitive_closure_is_linear_and_quadratic() {
        let p = parsed(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let r = analyze(&p.program).unwrap();
        let a = PredRef::new("a");
        assert_eq!(r.class_of(&a), BoundClass::Linear);
        let pb = &r.preds[&a];
        assert!(pb.recursive);
        assert_eq!(pb.count.degree(), 2, "{}", pb.count.render());
        // Sound on a concrete instance: p a 4-chain derives 4+3+2+1 = 10
        // closure facts at |p| = 4.
        let bound = r.eval_count(&a, &cards(&[("p", 4)])).unwrap();
        assert!(bound >= 10, "bound {bound} under-approximates");
    }

    #[test]
    fn nonlinear_recursion_without_base_columns_is_unbounded() {
        let p = parsed(
            "t(X, Y) :- t(X, Z), t(Z, Y).\n\
             t(X, Y) :- e(X, Y).\n\
             ?- t(X, Y).",
        );
        let r = analyze(&p.program).unwrap();
        assert_eq!(r.class_of(&PredRef::new("t")), BoundClass::Unbounded);
        assert_eq!(r.worst_class(), BoundClass::Unbounded);
        // The fallback count is still finite and sound.
        let n = r
            .eval_count(&PredRef::new("t"), &cards(&[("e", 3)]))
            .unwrap();
        assert!(n >= 9);
        let diags = bounds_diagnostics(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "bound-unbounded");
    }

    #[test]
    fn nonlinear_recursion_with_traced_columns_is_polynomial() {
        // Same-generation: nonlinear (two sg literals) but both head
        // columns trace to up/down.
        let p = parsed(
            "sg(X, Y) :- up(X, U), sg(U, V), sg(V, W), down(W, Y).\n\
             sg(X, Y) :- flat(X, Y).\n\
             ?- sg(X, Y).",
        );
        let r = analyze(&p.program).unwrap();
        assert_eq!(r.class_of(&PredRef::new("sg")), BoundClass::Polynomial);
    }

    #[test]
    fn cartesian_product_is_flagged_and_bounded_exactly() {
        let p = parsed(
            "big(X, Z) :- p(X, Y), q(Z, W).\n\
             ?- big(X, Z).",
        );
        let r = analyze(&p.program).unwrap();
        let big = PredRef::new("big");
        assert_eq!(r.class_of(&big), BoundClass::Bounded);
        // |p| * |q|, evaluated.
        assert_eq!(r.eval_count(&big, &cards(&[("p", 3), ("q", 5)])), Some(15));
        let diags = bounds_diagnostics(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "bound-cartesian");
        assert!(
            diags[0].message.contains("{p} x {q}"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn existential_component_is_not_a_cartesian_blowup() {
        // The disconnected group binds no head variable: §3.1 extracts it
        // as a boolean — a 0/1 factor, not a cross product.
        let p = parsed(
            "q(X) :- a(X, Y), c(W, V).\n\
             ?- q(X).",
        );
        assert!(bounds_diagnostics(&p).is_empty());
    }

    #[test]
    fn nonrecursive_bound_beats_cross_product_via_head_domains() {
        // proj(X) projects a join down to one column: the head-domain
        // factor |p| beats the body product |p||q|.
        let p = parsed(
            "proj(X) :- p(X, Y), q(Y, Z).\n\
             ?- proj(X).",
        );
        let r = analyze(&p.program).unwrap();
        let n = r
            .eval_count(&PredRef::new("proj"), &cards(&[("p", 4), ("q", 100)]))
            .unwrap();
        assert_eq!(n, 4, "head-domain bound should win the min");
    }

    #[test]
    fn total_sums_idb_only_and_hints_cover_edb() {
        let p = parsed(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        );
        let r = analyze(&p.program).unwrap();
        let c = cards(&[("p", 4)]);
        assert_eq!(
            r.eval_total(&c),
            r.eval_count(&PredRef::new("a"), &c).unwrap()
        );
        let hints = r.cost_hints(&c);
        assert_eq!(hints.get("p"), Some(&4));
        assert!(hints.contains_key("a"));
        assert!(r.to_text().contains("a\tlinear\t"));
        let json = r.to_json().to_string();
        assert!(json.contains("\"worst_class\":\"linear\""), "{json}");
    }
}

//! # datalog-lint
//!
//! Static analysis and translation validation for the existential-Datalog
//! optimizer of *Optimizing Existential Datalog Queries* (Ramakrishnan,
//! Beeri, Krishnamurthy; PODS 1988).
//!
//! Two halves:
//!
//! * **Program lints** ([`lints`]): compiler-style diagnostics over a
//!   parsed program — safety (range-restriction) violations, singleton
//!   ("typo") variables, unused and underivable predicates, rules
//!   unreachable from the query, duplicate/subsumed rules via a CQ
//!   containment checker ([`contain`]), and an adornment audit that
//!   recomputes the paper's Lemma 2.2 propagation ([`audit`]).
//! * **Translation validation** ([`verify`]): independent re-checks of
//!   every optimizer phase — the §3.1 boolean extraction must preserve
//!   connectivity components, the §3.2 projection must drop `d` positions
//!   consistently (Lemma 3.2), and every §5 rule deletion must be
//!   re-justified by a containment witness, a freeze test, or the bounded
//!   fixed-seed differential oracle. Deletions the checker cannot justify
//!   are refused.
//!
//! `datalog-opt` consumes the [`verify`] half behind its `verify`
//! configuration flag; the `xdl lint` and `xdl verify-opt` commands expose
//! both halves on the command line.

pub mod audit;
pub mod bounds;
pub mod contain;
pub mod diag;
pub mod lints;
pub mod verify;

pub use audit::{audit_adorned_rules, recompute_adornment};
pub use bounds::{analyze as analyze_bounds, bounds_diagnostics, Bound, BoundsReport, Poly};
pub use contain::{
    conjunction_homomorphism, match_atom_onto, subsumed_indices, subsumes, subsumption_pairs,
    subsumption_witness, Homomorphism,
};
pub use diag::{has_errors, sort_diagnostics, Diagnostic, Severity};
pub use lints::{lint_program, lint_source};
pub use verify::{
    differential_config, justify_addition, justify_deletion, verify_adornment, verify_components,
    verify_differential, verify_projection, PhaseCheck,
};

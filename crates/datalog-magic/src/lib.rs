//! # datalog-magic
//!
//! Magic Sets rewriting — the *selection-pushing* transformation the paper
//! cites as orthogonal to its projection-pushing (§1, §6): "the trimmed
//! adorned program can be further transformed using rewriting algorithms
//! such as Magic Sets or Counting. It is observed that these rewritings are
//! orthogonal to the optimizations discussed in this paper."
//!
//! This crate implements the classical (non-supplementary) Magic Sets
//! rewriting with left-to-right sideways information passing:
//!
//! 1. *bf-adorn* the program from the query's constant positions (these
//!    bound/free adornments are the classical kind, distinct from the
//!    paper's existential `n`/`d` adornments — the predicates produced by
//!    `datalog-opt` keep their `n`/`d` identity and are mangled into plain
//!    names here);
//! 2. for every bf-adorned rule, guard it with a magic literal on its
//!    head's bound arguments, and emit one magic rule per derived body
//!    literal, passing the bindings available to its left;
//! 3. seed the query's magic predicate with the query constants.
//!
//! Experiment E6 measures the paper's orthogonality claim: existential
//! optimization and magic sets compose, and the composition beats either
//! alone on bound-argument existential queries.
//!
//! The *Counting* rewriting the paper also names requires successor
//! arithmetic on derivation depths, which leaves pure function-free Datalog
//! (our engine's domain); DESIGN.md documents this substitution.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use datalog_ast::{Atom, PredRef, Program, Query, Rule, Term, Var};

/// Errors from the magic rewriting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MagicError {
    /// The program has no query.
    NoQuery,
    /// The query has no bound (constant) argument: magic sets would build
    /// the same fixpoint with extra overhead, so we refuse instead of
    /// silently degrading.
    NoBoundArgument,
    /// Structural problem in the program.
    Ast(datalog_ast::AstError),
    /// The program uses negation; magic sets under stratified negation is
    /// out of scope (it requires care to keep the rewriting stratified).
    Negation,
}

impl std::fmt::Display for MagicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MagicError::NoQuery => write!(f, "program has no query"),
            MagicError::NoBoundArgument => {
                write!(f, "query has no constant argument to specialize on")
            }
            MagicError::Ast(e) => write!(f, "{e}"),
            MagicError::Negation => {
                write!(f, "magic sets rewriting does not support negation")
            }
        }
    }
}

impl std::error::Error for MagicError {}

impl From<datalog_ast::AstError> for MagicError {
    fn from(e: datalog_ast::AstError) -> MagicError {
        MagicError::Ast(e)
    }
}

/// A bound/free adornment (classical Magic Sets kind).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BfAdornment(pub Vec<bool>); // true = bound

impl BfAdornment {
    fn letters(&self) -> String {
        self.0.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
    }
    fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }
    fn any_bound(&self) -> bool {
        self.0.iter().any(|&b| b)
    }
}

/// Mangle an (existentially adorned) predicate plus a bf-adornment into a
/// fresh flat predicate name, e.g. `a[nd]` with `bf` → `a_nd__bf`.
fn mangled(pred: &PredRef, bf: &BfAdornment, magic: bool) -> PredRef {
    let base = match &pred.adornment {
        Some(ad) if !ad.is_empty() => format!("{}_{}", pred.name, ad),
        _ => pred.name.to_string(),
    };
    let name = if magic {
        format!("m_{base}__{}", bf.letters())
    } else {
        format!("{base}__{}", bf.letters())
    };
    PredRef::new(&name)
}

/// Result of the rewriting.
#[derive(Debug, Clone)]
pub struct MagicRewrite {
    /// The rewritten program (query included).
    pub program: Program,
    /// Number of magic rules generated.
    pub magic_rules: usize,
    /// Number of bf-adorned predicate versions.
    pub versions: usize,
}

/// Apply Magic Sets to `program` using the constants of its query atom as
/// the initial binding.
pub fn magic_rewrite(program: &Program) -> Result<MagicRewrite, MagicError> {
    program.validate()?;
    if program.has_negation() {
        return Err(MagicError::Negation);
    }
    let query = program.query.as_ref().ok_or(MagicError::NoQuery)?;
    let idb = program.idb_preds();
    if !idb.contains(&query.atom.pred) {
        return Err(MagicError::NoBoundArgument); // EDB query: nothing to do
    }
    let query_bf = BfAdornment(
        query
            .atom
            .terms
            .iter()
            .map(|t| t.as_const().is_some())
            .collect(),
    );
    if !query_bf.any_bound() {
        return Err(MagicError::NoBoundArgument);
    }

    let mut out = Program::default();
    let mut versions: BTreeSet<(PredRef, BfAdornment)> = BTreeSet::new();
    let mut queue: VecDeque<(PredRef, BfAdornment)> = VecDeque::new();
    let qkey = (query.atom.pred.clone(), query_bf.clone());
    versions.insert(qkey.clone());
    queue.push_back(qkey);
    let mut magic_rules = 0;

    while let Some((pred, bf)) = queue.pop_front() {
        for &ri in &program.rules_for(&pred) {
            let rule = &program.rules[ri];
            // Bound variables flow left to right, seeded by the head's
            // bound positions.
            let mut bound: BTreeSet<Var> = BTreeSet::new();
            for &i in &bf.bound_positions() {
                if let Term::Var(v) = &rule.head.terms[i] {
                    bound.insert(*v);
                }
            }
            let magic_head_args: Vec<Term> = bf
                .bound_positions()
                .iter()
                .map(|&i| rule.head.terms[i])
                .collect();
            // A head with no bound position gets no magic guard at all —
            // its rules are unconditionally active, and crucially the
            // magic rules generated from its body must not reference the
            // (never-seeded) zero-ary magic predicate either.
            let guard: Option<Atom> = bf
                .any_bound()
                .then(|| Atom::new(mangled(&pred, &bf, true), magic_head_args));
            let mut new_body: Vec<Atom> = guard.iter().cloned().collect();
            let mut prefix: Vec<Atom> = new_body.clone();
            for lit in &rule.body {
                if idb.contains(&lit.pred) {
                    let lit_bf = BfAdornment(
                        lit.terms
                            .iter()
                            .map(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => bound.contains(v),
                            })
                            .collect(),
                    );
                    // Magic rule: m_lit(bound args) :- prefix.
                    if lit_bf.any_bound() {
                        let m_args: Vec<Term> = lit_bf
                            .bound_positions()
                            .iter()
                            .map(|&i| lit.terms[i])
                            .collect();
                        out.rules.push(Rule::new(
                            Atom::new(mangled(&lit.pred, &lit_bf, true), m_args),
                            prefix.clone(),
                        ));
                        magic_rules += 1;
                    }
                    let key = (lit.pred.clone(), lit_bf.clone());
                    if versions.insert(key.clone()) {
                        queue.push_back(key);
                    }
                    let renamed = Atom::new(mangled(&lit.pred, &lit_bf, false), lit.terms.clone());
                    new_body.push(renamed.clone());
                    prefix.push(renamed);
                } else {
                    new_body.push(lit.clone());
                    prefix.push(lit.clone());
                }
                for v in lit.var_occurrences() {
                    bound.insert(v);
                }
            }
            let head = Atom::new(mangled(&pred, &bf, false), rule.head.terms.clone());
            out.rules.push(Rule::new(head, new_body));
        }
    }

    // Seed: m_q(query constants).
    let seed_args: Vec<Term> = query_bf
        .bound_positions()
        .iter()
        .map(|&i| query.atom.terms[i])
        .collect();
    out.rules.push(Rule::new(
        Atom::new(mangled(&query.atom.pred, &query_bf, true), seed_args),
        vec![],
    ));

    // Rewritten query.
    out.query = Some(Query::new(Atom::new(
        mangled(&query.atom.pred, &query_bf, false),
        query.atom.terms.clone(),
    )));

    let version_count = versions.len();
    Ok(MagicRewrite {
        program: out,
        magic_rules,
        versions: version_count,
    })
}

/// Convenience: the number of facts the magic-rewritten program derives per
/// predicate, useful in reports.
pub fn derived_fact_counts(
    program: &Program,
    input: &datalog_engine::FactSet,
) -> Result<BTreeMap<String, usize>, datalog_engine::EngineError> {
    let out = datalog_engine::evaluate(program, input, &datalog_engine::EvalOptions::default())?;
    let facts = out.database.dump();
    Ok(facts
        .preds()
        .map(|p| (p.to_string(), facts.count(p)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog_ast::{parse_program, Value};
    use datalog_engine::{query_answers, EvalOptions, FactSet};

    fn chain(n: i64) -> FactSet {
        let mut fs = FactSet::new();
        for i in 0..n {
            fs.insert(PredRef::new("p"), vec![Value::int(i), Value::int(i + 1)]);
        }
        fs
    }

    const TC_BOUND: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\n\
                            a(X, Y) :- p(X, Y).\n\
                            ?- a(0, Y).";

    #[test]
    fn magic_tc_preserves_answers() {
        let p = parse_program(TC_BOUND).unwrap().program;
        let m = magic_rewrite(&p).unwrap();
        let edb = chain(12);
        let (orig, _) = query_answers(&p, &edb, &EvalOptions::default()).unwrap();
        let (magic, _) = query_answers(&m.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, magic.rows);
        assert_eq!(orig.len(), 12);
        assert!(m.magic_rules >= 1);
    }

    #[test]
    fn magic_restricts_computation() {
        // On a chain, magic from node n/2 derives only the suffix.
        let p = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(50, Y).",
        )
        .unwrap()
        .program;
        let m = magic_rewrite(&p).unwrap();
        let edb = chain(100);
        let orig = datalog_engine::evaluate(&p, &edb, &EvalOptions::default()).unwrap();
        let magic = datalog_engine::evaluate(&m.program, &edb, &EvalOptions::default()).unwrap();
        // Unoptimized TC computes all ~5050 pairs; magic only the pairs
        // within the 50-node suffix (~1275) plus ~50 magic facts.
        assert!(orig.stats.facts_derived > 5000);
        assert!(magic.stats.facts_derived < 1500);
        let (a1, _) = query_answers(&p, &edb, &EvalOptions::default()).unwrap();
        let (a2, _) = query_answers(&m.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(a1.rows, a2.rows);
        assert_eq!(a1.len(), 50);
    }

    #[test]
    fn magic_on_existentially_optimized_program_composes() {
        // The paper's orthogonality claim: run magic AFTER the existential
        // pipeline's output (projected unary reachability with bound arg).
        let p = parse_program(
            "a[nd](X) :- p(X, Z), a[nd](Z).\n\
             a[nd](X) :- p(X, Z).\n\
             ?- a[nd](7).",
        )
        .unwrap()
        .program;
        let m = magic_rewrite(&p).unwrap();
        let text = m.program.to_text();
        // Mangled names carry the existential adornment.
        assert!(text.contains("a_nd__b"), "{text}");
        assert!(text.contains("m_a_nd__b"), "{text}");
        let edb = chain(10);
        let (orig, _) = query_answers(&p, &edb, &EvalOptions::default()).unwrap();
        let (magic, _) = query_answers(&m.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, magic.rows);
        assert_eq!(orig.len(), 1); // node 7 has a successor
    }

    #[test]
    fn same_generation_bf_and_fb() {
        // Non-chain program with a bound first argument.
        let p = parse_program(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), dn(V, Y).\n\
             ?- sg(3, Y).",
        )
        .unwrap()
        .program;
        let m = magic_rewrite(&p).unwrap();
        let mut edb = FactSet::new();
        for i in 0..6 {
            edb.insert(PredRef::new("up"), vec![Value::int(i), Value::int(i + 10)]);
            edb.insert(PredRef::new("dn"), vec![Value::int(i + 10), Value::int(i)]);
            edb.insert(
                PredRef::new("flat"),
                vec![Value::int(i + 10), Value::int(i + 10)],
            );
        }
        let (orig, _) = query_answers(&p, &edb, &EvalOptions::default()).unwrap();
        let (magic, _) = query_answers(&m.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, magic.rows);
        assert!(!orig.rows.is_empty());
    }

    #[test]
    fn unbound_query_is_refused() {
        let p = parse_program(
            "a(X, Y) :- p(X, Y).\n\
             ?- a(X, Y).",
        )
        .unwrap()
        .program;
        assert_eq!(magic_rewrite(&p).unwrap_err(), MagicError::NoBoundArgument);
    }

    #[test]
    fn no_query_is_an_error() {
        let p = parse_program("a(X, Y) :- p(X, Y).").unwrap().program;
        assert_eq!(magic_rewrite(&p).unwrap_err(), MagicError::NoQuery);
    }

    #[test]
    fn constants_inside_rules_bind() {
        let p = parse_program(
            "q(Y) :- a(1, Y).\n\
             a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- q(Y).",
        )
        .unwrap()
        .program;
        // The query q(Y) itself has no constant... expect refusal.
        assert_eq!(magic_rewrite(&p).unwrap_err(), MagicError::NoBoundArgument);
        // But querying a(1, Y) directly works.
        let p2 = parse_program(
            "a(X, Y) :- p(X, Z), a(Z, Y).\n\
             a(X, Y) :- p(X, Y).\n\
             ?- a(1, Y).",
        )
        .unwrap()
        .program;
        let m = magic_rewrite(&p2).unwrap();
        let edb = chain(5);
        let (orig, _) = query_answers(&p2, &edb, &EvalOptions::default()).unwrap();
        let (magic, _) = query_answers(&m.program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(orig.rows, magic.rows);
        assert_eq!(orig.len(), 4);
    }
}

//! Bound-aware admission, end to end: a real server with a fact budget
//! refuses a query whose *static* derivation bound (the `datalog-lint`
//! bounds analysis carried by every prepared form, evaluated against the
//! snapshot's live EDB cardinalities) already exceeds the budget — with a
//! coded `ERR bound`, before a single evaluation iteration runs. Admitted
//! workloads must serve byte-identical answers whether or not the
//! pre-flight check is enabled, and forms the analysis classifies
//! unbounded must never pin resident incremental state.

mod util;

use datalog_server::{Client, ErrCode, Server, ServerConfig};
use util::TempDir;

const TC_RULES: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n";
const TC_FACTS: &str = "p(1, 2).\np(2, 3).\np(3, 4).\n";

#[test]
fn bound_rejection_happens_before_any_evaluation() {
    let dir = TempDir::new("bound-admission");
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        fact_budget: Some(3),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // The closure over 3 edges is statically bounded by |p|² = 9 facts;
    // the budget is 3, so the trip is certain — admission refuses up
    // front, and keeps refusing on the prepared-cache hit path.
    for _ in 0..2 {
        let resp = c.query("?- a(X, Y).").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrCode::Bound), "{}", resp.error);
        assert!(
            resp.error.contains("refused before evaluation"),
            "{}",
            resp.error
        );
    }

    // Zero evaluation iterations ran: the eval-phase histogram never
    // recorded a span, and the engine-side budget never tripped. The
    // refusals are counted on their own series.
    let scrape = c.metrics(false).unwrap().payload_text();
    assert!(
        scrape.contains("xdl_query_phase_seconds_count{phase=\"eval\"} 0"),
        "{scrape}"
    );
    assert!(
        scrape.contains("xdl_admission_rejected_total 2"),
        "{scrape}"
    );
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"admission_rejected\":2"), "{stats}");
    assert!(stats.contains("\"budget_trips\":0"), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn admitted_workload_serves_byte_identical_answers() {
    // The same workload against two servers — bound admission on and off,
    // budget comfortably above every form's bound — must produce
    // byte-identical payloads: the pre-flight check may only refuse, never
    // perturb an admitted answer.
    let dir = TempDir::new("bound-identical");
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    let queries = ["?- a(X, Y).", "?- a(1, X).", "?- a(X, _).", "?- a(_, 4)."];
    let mut payloads: Vec<Vec<String>> = Vec::new();
    for bound_admission in [true, false] {
        let server = Server::spawn(&ServerConfig {
            threads: 1,
            fact_budget: Some(10_000),
            bound_admission,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(file.to_str().unwrap()).unwrap().ok);
        let mut got = Vec::new();
        for q in queries {
            let resp = c.query(q).unwrap();
            assert!(resp.ok, "{q}: {}", resp.error);
            got.push(resp.payload_text());
        }
        payloads.push(got);
        c.shutdown().unwrap();
        server.join();
    }
    assert_eq!(payloads[0], payloads[1]);
}

#[test]
fn unbounded_form_is_never_pinned_resident() {
    // Nonlinear TC: no column traceable past the recursion, so the bounds
    // analysis certifies nothing tighter than the active-domain fallback
    // and classifies the form unbounded. Resident admission must refuse to
    // pin it even though the rule shape is otherwise supported.
    let dir = TempDir::new("bound-resident");
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        ..ServerConfig::default() // resident forms on by default
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file(
        "nl.dl",
        "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, Z), t(Z, Y).\ne(1, 2).\ne(2, 3).\n",
    );
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    assert_eq!(c.query("?- t(1, X).").unwrap().get("cache"), Some("miss"));
    // A pinned form would serve the second query as `resident`; the
    // unbounded classification keeps it on the plain prepared-hit path.
    assert_eq!(c.query("?- t(2, X).").unwrap().get("cache"), Some("hit"));
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"resident_forms\":0"), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

//! Fault-injection suite: the server under deliberate misbehavior.
//!
//! Each test drives one fault from the harness against a real server on
//! an ephemeral port and asserts the two robustness invariants: the
//! failing request gets a *structured* answer (a coded `ERR`, never a
//! hang or a torn response), and the server keeps serving afterwards.
//! Faults covered: injected fsync failure, a torn WAL tail, a handler
//! panic mid-query, a deadline storm, a byte-at-a-time slow client,
//! budget exhaustion, connection/admission shedding, and a draining
//! shutdown racing an in-flight query. All of it runs under plain
//! `cargo test` — no root, no containers, no signals.

mod util;

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datalog_ast::parse_program;
use datalog_engine::{query_answers_full, EvalOptions, FactSet};
use datalog_opt::{optimize, OptimizerConfig};
use datalog_server::{
    render_answers, Client, Consistency, ErrCode, FaultPlan, Server, ServerConfig,
};
use util::TempDir;

/// What `xdl run <src>` prints on stdout (same pipeline as the binary).
fn xdl_run_reference(src: &str) -> String {
    let parsed = parse_program(src).unwrap();
    parsed.program.validate().unwrap();
    let facts = FactSet::from_parsed(&parsed.facts);
    let out = optimize(&parsed.program, &OptimizerConfig::default()).unwrap();
    let opts = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    let (answers, _) = query_answers_full(&out.program, &facts, &opts).unwrap();
    render_answers(&answers)
}

const TC_RULES: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n";
const TC_FACTS: &str = "p(1, 2).\np(2, 3).\np(3, 4).\n";

/// A dense graph plus a cross-product rule: enough work to outlive any
/// small deadline and to blow small budgets, in debug and release alike.
fn pathological(n: usize) -> String {
    let mut text = String::from(
        "a(X, Y) :- p(X, Y).\na(X, Y) :- p(X, Z), a(Z, Y).\n\
         big(X, Y, Z, W) :- a(X, Y), a(Z, W).\n",
    );
    for i in 0..n {
        for j in 0..n {
            text.push_str(&format!("p({i}, {j}).\n"));
        }
    }
    text
}

#[test]
fn fsync_failure_refuses_the_write_and_recovers_when_disarmed() {
    let dir = TempDir::new("fsync");
    let fault = Arc::new(FaultPlan::new());
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(dir.path().join("wal")),
        fault: Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.fact("p(1, 2).").unwrap().ok);

    fault.fail_fsync(true);
    let resp = c.fact("p(2, 3).").unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.code, Some(ErrCode::Internal), "{}", resp.error);
    assert!(resp.error.contains("wal"), "{}", resp.error);

    // The refused fact was not applied: only the durable one answers.
    let resp = c.query("?- p(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["X", "1"]);

    // Disarmed, the same write goes through on the same connection.
    fault.fail_fsync(false);
    assert!(c.fact("p(2, 3).").unwrap().ok);
    let resp = c.query("?- p(X, _).").unwrap();
    assert_eq!(resp.payload, vec!["X", "1", "2"]);
    assert!(fault.fired() >= 1);

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn torn_wal_tail_recovers_byte_identical_acknowledged_state() {
    let dir = TempDir::new("torn");
    let wal_dir = dir.path().join("wal");
    let rules = dir.file("tc.dl", TC_RULES);

    // Phase 1: ingest, remember the answer, stop without compaction.
    let reference = {
        let server = Server::spawn(&ServerConfig {
            threads: 1,
            wal_dir: Some(wal_dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
        for f in ["p(1, 2).", "p(2, 3).", "p(3, 4)."] {
            assert!(c.fact(f).unwrap().ok);
        }
        let resp = c.query("?- a(1, X).").unwrap();
        assert!(resp.ok, "{}", resp.error);
        c.shutdown().unwrap();
        server.join();
        resp.payload_text()
    };

    // Crash simulation: a half-written record at the tail of the log.
    let log = wal_dir.join("wal.log");
    let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
    f.write_all(&64u32.to_le_bytes()).unwrap();
    f.write_all(b"\xde\xad\xbe\xefF p(9,").unwrap();
    drop(f);

    // Phase 2: restart truncates the torn tail and serves the exact same
    // answer bytes.
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(wal_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.query("?- a(1, X).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload_text(), reference, "recovered answers differ");
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"truncated_bytes\":"), "{stats}");
    assert!(!stats.contains("\"truncated_bytes\":0,"), "{stats}");

    // And the recovered server still accepts writes.
    assert!(c.fact("p(4, 5).").unwrap().ok);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn mid_query_panic_answers_internal_and_service_continues() {
    let dir = TempDir::new("panic");
    let fault = Arc::new(FaultPlan::new());
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        fault: Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    fault.panic_on_query("a");
    let resp = c.query("?- a(X, _).").unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.code, Some(ErrCode::Internal), "{}", resp.error);

    // Same connection, same query: the one-shot fault fired, state is
    // intact, the answer is correct.
    let resp = c.query("?- a(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["X", "1", "2", "3"]);

    // A different connection is equally unaffected.
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert!(c2.query("?- a(2, _).").unwrap().ok);

    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"panics_recovered\":1"), "{stats}");
    assert!(stats.contains("\"kind\":\"panic\""), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn deadline_storm_sheds_each_query_while_cheap_queries_complete() {
    let dir = TempDir::new("storm");
    let server = Server::spawn(&ServerConfig {
        threads: 4,
        deadline_ms: Some(40),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    let file = dir.file("heavy.dl", &pathological(40));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // Three stormers hammer the expensive query; every attempt must come
    // back as a structured deadline error (with partial stats), never a
    // hang, and never a wrong table.
    let stormers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..3 {
                    let resp = c.query("?- big(1, X, Y, Z).").unwrap();
                    assert!(!resp.ok);
                    assert_eq!(resp.code, Some(ErrCode::Deadline), "{}", resp.error);
                    assert!(resp.error.contains("partial:"), "{}", resp.error);
                }
            })
        })
        .collect();

    // Meanwhile a cheap query on its own connection completes normally.
    for _ in 0..5 {
        let resp = c.query("?- p(1, X).").unwrap();
        assert!(resp.ok, "cheap query starved: {}", resp.error);
    }
    for s in stormers {
        s.join().unwrap();
    }

    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"deadline_trips\":9"), "{stats}");
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn slow_client_dribbling_bytes_gets_a_full_answer() {
    let dir = TempDir::new("slow");
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // One byte at a time, with pauses that trip the server's 200ms read
    // timeout several times mid-line: the request must still parse whole.
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    for (i, b) in b"QUERY ?- a(1, X).\n".iter().enumerate() {
        writer.write_all(std::slice::from_ref(b)).unwrap();
        writer.flush().unwrap();
        if i % 4 == 0 {
            std::thread::sleep(Duration::from_millis(60));
        }
    }
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    assert!(header.starts_with("OK "), "{header}");

    // The dribbler did not wedge the other worker.
    assert!(c.query("?- a(X, _).").unwrap().ok);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn budget_trip_is_coded_counted_and_never_memoized() {
    let dir = TempDir::new("budget");
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        fact_budget: Some(3),
        // Bound-aware admission would predict the blow-up and refuse with
        // `ERR bound` before evaluation ever starts (covered in
        // tests/bounds.rs); this test exercises the engine-side backstop,
        // so the pre-flight check is switched off.
        bound_admission: false,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // The full closure derives 6 facts; budget 3 trips. (The existential
    // form `a(X, _)` would not: arity reduction shrinks it to 3 facts —
    // the paper's optimization visibly changes what the budget measures.)
    // Twice: if the first trip were memoized, the second would come back
    // OK with a truncated table — the one unacceptable outcome.
    for _ in 0..2 {
        let resp = c.query("?- a(X, Y).").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrCode::Budget), "{}", resp.error);
        assert!(resp.error.contains("facts_derived="), "{}", resp.error);
    }
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"budget_trips\":2"), "{stats}");
    assert!(stats.contains("\"answer_hits\":0"), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn connection_limit_sheds_with_busy_and_admitted_clients_are_unaffected() {
    let dir = TempDir::new("shed");
    let server = Server::spawn(&ServerConfig {
        threads: 3,
        max_conns: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut admitted = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(admitted.load(file.to_str().unwrap()).unwrap().ok);

    // The admitted connection holds the single slot; the next connection
    // is refused with one coded line instead of waiting in the backlog.
    let shed = TcpStream::connect(server.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut line = String::new();
    BufReader::new(shed).read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR busy"), "{line}");

    // The admitted client never noticed.
    assert!(admitted.query("?- a(X, _).").unwrap().ok);
    let stats = admitted.stats().unwrap().payload_text();
    assert!(stats.contains("\"shed_connections\":1"), "{stats}");

    admitted.shutdown().unwrap();
    server.join();
}

#[test]
fn shutdown_drains_in_flight_query_to_completion_or_clean_error() {
    let dir = TempDir::new("drain");
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        grace_ms: 150,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    let file = dir.file("heavy.dl", &pathological(45));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // A long query starts, then SHUTDOWN arrives from another client. The
    // in-flight query must end in one of exactly two ways: a complete OK
    // response, or a clean coded shutdown error — never a dropped
    // connection mid-payload.
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let started = Instant::now();
        let resp = c.query("?- big(1, X, Y, Z).").unwrap();
        (resp, started.elapsed())
    });
    std::thread::sleep(Duration::from_millis(50));
    assert!(c.shutdown().unwrap().ok);
    server.join();

    let (resp, elapsed) = worker.join().unwrap();
    if resp.ok {
        assert!(!resp.payload.is_empty(), "complete response has rows");
    } else {
        assert_eq!(resp.code, Some(ErrCode::Shutdown), "{}", resp.error);
        assert!(resp.error.contains("partial:"), "{}", resp.error);
    }
    // Bounded drain: well under eval-to-completion time for this input.
    assert!(elapsed < Duration::from_secs(30), "drain took {elapsed:?}");
}

#[test]
fn crash_without_shutdown_loses_nothing_fsync_always() {
    // Process-internal stand-in for the SIGKILL smoke in check.sh: the
    // first server is dropped without SHUTDOWN (workers and WAL file just
    // cease), then a second server recovers from the same directory.
    let dir = TempDir::new("crash");
    let wal_dir = dir.path().join("wal");
    let rules = dir.file("tc.dl", TC_RULES);

    let reference = {
        let server = Server::spawn(&ServerConfig {
            threads: 1,
            wal_dir: Some(wal_dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
        for f in ["p(1, 2).", "p(2, 3).", "p(3, 4).", "p(4, 5)."] {
            assert!(c.fact(f).unwrap().ok);
        }
        let resp = c.query("?- a(1, X).").unwrap();
        assert!(resp.ok, "{}", resp.error);
        // No SHUTDOWN: the Server is leaked (threads park in accept) and
        // the WAL's durability must carry the state alone.
        std::mem::forget(server);
        resp.payload_text()
    };

    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(wal_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.query("?- a(1, X).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload_text(), reference);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn compaction_under_load_preserves_every_acknowledged_fact() {
    let dir = TempDir::new("compact");
    let wal_dir = dir.path().join("wal");
    let rules = dir.file("tc.dl", TC_RULES);
    {
        let server = Server::spawn(&ServerConfig {
            threads: 2,
            wal_dir: Some(wal_dir.clone()),
            compact_every: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
        for i in 0..30 {
            assert!(c.fact(&format!("p({i}, {}).", i + 1)).unwrap().ok);
        }
        let stats = c.stats().unwrap().payload_text();
        assert!(
            !stats.contains("\"snapshots\":0"),
            "no compaction ran: {stats}"
        );
        c.shutdown().unwrap();
        server.join();
    }
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(wal_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.query("?- p(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    // Header + the 30 distinct sources.
    assert_eq!(resp.payload.len(), 31, "{:?}", resp.payload);
    c.shutdown().unwrap();
    server.join();
}

/// Ingest-burst storm: a `FACT` flood and a `LOAD` flood run against
/// query clients pinned to each consistency mode. Every answer must be
/// the reference rendering of some acknowledged prefix of the chain
/// writer's order (snapshot isolation + published frontiers mean no torn
/// or time-traveling reads), answers never shrink per connection, and
/// after the storm the resident state has healed: no leaked poisonings,
/// and both `fresh` and `any` converge to the full-chain reference.
#[test]
fn ingest_burst_storm_honors_every_consistency_mode() {
    const CHAIN: i64 = 14;
    let dir = TempDir::new("burst");
    // drain_sync_cost = 0 pushes every drain onto the maintenance thread,
    // so stale windows are real and the background machinery is what the
    // storm actually exercises.
    let server = Server::spawn(&ServerConfig {
        threads: 6,
        drain_sync_cost: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut setup = Client::connect(addr).unwrap();
    let rules = dir.file("rules.dl", TC_RULES);
    assert!(setup.load(rules.to_str().unwrap()).unwrap().ok);
    assert!(setup.fact("p(0, 1).").unwrap().ok);
    // Warm the form so a resident frontier exists before the burst.
    assert!(setup.query("?- a(0, X).").unwrap().ok);

    // Valid payloads: prefixes of the chain writer's acknowledgment
    // order. The LOAD flood writes a disjoint value range (1000+), which
    // never reaches a(0, _), so it cannot perturb this set.
    let valid: BTreeSet<String> = (1..=CHAIN)
        .map(|k| {
            let facts: String = (0..k).map(|i| format!("p({i}, {}).\n", i + 1)).collect();
            xdl_run_reference(&format!("{TC_RULES}{facts}?- a(0, X)."))
        })
        .collect();

    let chain_writer = std::thread::spawn(move || {
        let mut w = Client::connect(addr).unwrap();
        for i in 1..CHAIN {
            let resp = w.fact(&format!("p({i}, {}).", i + 1)).unwrap();
            assert!(resp.ok, "{}", resp.error);
        }
    });
    let load_files: Vec<_> = (0..8)
        .map(|j| {
            let base = 1000 + 10 * j;
            dir.file(
                &format!("burst{j}.dl"),
                &format!("p({base}, {}).\np({}, {}).\n", base + 1, base + 1, base + 2),
            )
        })
        .collect();
    let load_writer = std::thread::spawn(move || {
        let mut w = Client::connect(addr).unwrap();
        for f in &load_files {
            let resp = w.load(f.to_str().unwrap()).unwrap();
            assert!(resp.ok, "{}", resp.error);
        }
    });

    let readers: Vec<_> = [
        Consistency::Fresh,
        Consistency::Bounded(50),
        Consistency::Any,
    ]
    .into_iter()
    .map(|mode| {
        let valid = valid.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut last_len = 0usize;
            for _ in 0..25 {
                let resp = c.query_at(mode, "?- a(0, X).").unwrap();
                if !resp.ok {
                    // Only a bounded budget may be refused, and only
                    // with the structured stale code and its bound.
                    assert!(matches!(mode, Consistency::Bounded(_)), "{}", resp.error);
                    assert_eq!(resp.code, Some(ErrCode::Stale), "{}", resp.error);
                    assert!(resp.stale_bound_ms().is_some(), "{}", resp.error);
                    continue;
                }
                let payload = resp.payload_text();
                assert!(
                    valid.contains(&payload),
                    "{mode} read is not a prefix rendering:\n{payload}"
                );
                // Frontiers and memos only advance: answers never shrink
                // on one connection, stale or not.
                assert!(
                    resp.payload.len() >= last_len,
                    "answers shrank under {mode}"
                );
                last_len = resp.payload.len();
                let staleness: u64 = resp.get("staleness_us").unwrap().parse().unwrap();
                if mode == Consistency::Fresh {
                    assert_eq!(staleness, 0, "fresh read reported staleness");
                }
                resp.get("frontier").unwrap().parse::<u64>().unwrap();
            }
        })
    })
    .collect();

    chain_writer.join().unwrap();
    load_writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Quiescent: fresh catches up synchronously and matches `xdl run`.
    let full: String = (0..CHAIN)
        .map(|i| format!("p({i}, {}).\n", i + 1))
        .collect();
    let reference = xdl_run_reference(&format!("{TC_RULES}{full}?- a(0, X)."));
    let fresh = setup.query("?- a(0, X).").unwrap();
    assert!(fresh.ok, "{}", fresh.error);
    assert_eq!(fresh.payload_text(), reference);

    // `any` converges too once the maintenance thread drains the queue.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = setup.query_at(Consistency::Any, "?- a(0, X).").unwrap();
        assert!(resp.ok, "{}", resp.error);
        if resp.payload_text() == reference && resp.get("staleness_us") == Some("0") {
            break;
        }
        assert!(Instant::now() < deadline, "any-mode read never converged");
        std::thread::sleep(Duration::from_millis(20));
    }

    // No poison leak: the storm never killed the resident state.
    let stats = setup.stats().unwrap().payload_text();
    assert!(stats.contains("\"resident_poisonings\":0"), "{stats}");
    assert!(!stats.contains("\"resident_forms\":0"), "{stats}");

    setup.shutdown().unwrap();
    server.join();
}

/// Self-healing: a drain that fails repeatedly poisons the resident
/// form, and the maintenance thread rebuilds it with capped exponential
/// backoff — no restart, no query in the loop — until the fault clears.
#[test]
fn repeatedly_poisoned_resident_heals_via_backoff_rebuilds() {
    let dir = TempDir::new("heal");
    let fault = Arc::new(FaultPlan::new());
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        rebuild_ms: 5,
        fault: Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);
    assert!(c.query("?- a(1, X).").unwrap().ok);

    // Three failures in a row: the inline drain poisons the form, then
    // the first two background rebuild attempts fail too. Attempt three
    // (after 5ms << 1 and << 2 backoffs) succeeds.
    fault.fail_drains(3);
    assert!(c.fact("p(4, 5).").unwrap().ok);

    // Poll STATS only — no query touches the form, so the heal is driven
    // entirely by the background rebuild loop.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats().unwrap().payload_text();
        if stats.contains("\"resident_rebuilds\":1") && !stats.contains("\"resident_forms\":0") {
            assert!(stats.contains("\"resident_poisonings\":3"), "{stats}");
            break;
        }
        assert!(Instant::now() < deadline, "resident never healed: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The healed frontier is caught up: a fresh query serves off it and
    // sees the fact whose drain originally failed.
    let resp = c.query("?- a(1, X).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["X", "2", "3", "4", "5"]);
    let resp = c.query("?- a(4, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["true"]);

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn shed_reader_never_blocks_forever() {
    // Defensive companion to the shed test: even a client that only reads
    // (never writes) gets the busy line promptly, because shedding happens
    // at accept time, not at request time.
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        max_conns: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut hold = Client::connect(server.addr()).unwrap();
    assert!(hold.stats().unwrap().ok);

    let shed = TcpStream::connect(server.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let mut r = BufReader::new(shed);
    r.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("ERR busy"), "{text}");

    hold.shutdown().unwrap();
    server.join();
}

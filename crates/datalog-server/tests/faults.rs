//! Fault-injection suite: the server under deliberate misbehavior.
//!
//! Each test drives one fault from the harness against a real server on
//! an ephemeral port and asserts the two robustness invariants: the
//! failing request gets a *structured* answer (a coded `ERR`, never a
//! hang or a torn response), and the server keeps serving afterwards.
//! Faults covered: injected fsync failure, a torn WAL tail, a handler
//! panic mid-query, a deadline storm, a byte-at-a-time slow client,
//! budget exhaustion, connection/admission shedding, and a draining
//! shutdown racing an in-flight query. All of it runs under plain
//! `cargo test` — no root, no containers, no signals.

mod util;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datalog_server::{Client, ErrCode, FaultPlan, Server, ServerConfig};
use util::TempDir;

const TC_RULES: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n";
const TC_FACTS: &str = "p(1, 2).\np(2, 3).\np(3, 4).\n";

/// A dense graph plus a cross-product rule: enough work to outlive any
/// small deadline and to blow small budgets, in debug and release alike.
fn pathological(n: usize) -> String {
    let mut text = String::from(
        "a(X, Y) :- p(X, Y).\na(X, Y) :- p(X, Z), a(Z, Y).\n\
         big(X, Y, Z, W) :- a(X, Y), a(Z, W).\n",
    );
    for i in 0..n {
        for j in 0..n {
            text.push_str(&format!("p({i}, {j}).\n"));
        }
    }
    text
}

#[test]
fn fsync_failure_refuses_the_write_and_recovers_when_disarmed() {
    let dir = TempDir::new("fsync");
    let fault = Arc::new(FaultPlan::new());
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(dir.path().join("wal")),
        fault: Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.fact("p(1, 2).").unwrap().ok);

    fault.fail_fsync(true);
    let resp = c.fact("p(2, 3).").unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.code, Some(ErrCode::Internal), "{}", resp.error);
    assert!(resp.error.contains("wal"), "{}", resp.error);

    // The refused fact was not applied: only the durable one answers.
    let resp = c.query("?- p(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["X", "1"]);

    // Disarmed, the same write goes through on the same connection.
    fault.fail_fsync(false);
    assert!(c.fact("p(2, 3).").unwrap().ok);
    let resp = c.query("?- p(X, _).").unwrap();
    assert_eq!(resp.payload, vec!["X", "1", "2"]);
    assert!(fault.fired() >= 1);

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn torn_wal_tail_recovers_byte_identical_acknowledged_state() {
    let dir = TempDir::new("torn");
    let wal_dir = dir.path().join("wal");
    let rules = dir.file("tc.dl", TC_RULES);

    // Phase 1: ingest, remember the answer, stop without compaction.
    let reference = {
        let server = Server::spawn(&ServerConfig {
            threads: 1,
            wal_dir: Some(wal_dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
        for f in ["p(1, 2).", "p(2, 3).", "p(3, 4)."] {
            assert!(c.fact(f).unwrap().ok);
        }
        let resp = c.query("?- a(1, X).").unwrap();
        assert!(resp.ok, "{}", resp.error);
        c.shutdown().unwrap();
        server.join();
        resp.payload_text()
    };

    // Crash simulation: a half-written record at the tail of the log.
    let log = wal_dir.join("wal.log");
    let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
    f.write_all(&64u32.to_le_bytes()).unwrap();
    f.write_all(b"\xde\xad\xbe\xefF p(9,").unwrap();
    drop(f);

    // Phase 2: restart truncates the torn tail and serves the exact same
    // answer bytes.
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(wal_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.query("?- a(1, X).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload_text(), reference, "recovered answers differ");
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"truncated_bytes\":"), "{stats}");
    assert!(!stats.contains("\"truncated_bytes\":0,"), "{stats}");

    // And the recovered server still accepts writes.
    assert!(c.fact("p(4, 5).").unwrap().ok);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn mid_query_panic_answers_internal_and_service_continues() {
    let dir = TempDir::new("panic");
    let fault = Arc::new(FaultPlan::new());
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        fault: Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    fault.panic_on_query("a");
    let resp = c.query("?- a(X, _).").unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.code, Some(ErrCode::Internal), "{}", resp.error);

    // Same connection, same query: the one-shot fault fired, state is
    // intact, the answer is correct.
    let resp = c.query("?- a(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["X", "1", "2", "3"]);

    // A different connection is equally unaffected.
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert!(c2.query("?- a(2, _).").unwrap().ok);

    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"panics_recovered\":1"), "{stats}");
    assert!(stats.contains("\"kind\":\"panic\""), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn deadline_storm_sheds_each_query_while_cheap_queries_complete() {
    let dir = TempDir::new("storm");
    let server = Server::spawn(&ServerConfig {
        threads: 4,
        deadline_ms: Some(40),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    let file = dir.file("heavy.dl", &pathological(40));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // Three stormers hammer the expensive query; every attempt must come
    // back as a structured deadline error (with partial stats), never a
    // hang, and never a wrong table.
    let stormers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..3 {
                    let resp = c.query("?- big(1, X, Y, Z).").unwrap();
                    assert!(!resp.ok);
                    assert_eq!(resp.code, Some(ErrCode::Deadline), "{}", resp.error);
                    assert!(resp.error.contains("partial:"), "{}", resp.error);
                }
            })
        })
        .collect();

    // Meanwhile a cheap query on its own connection completes normally.
    for _ in 0..5 {
        let resp = c.query("?- p(1, X).").unwrap();
        assert!(resp.ok, "cheap query starved: {}", resp.error);
    }
    for s in stormers {
        s.join().unwrap();
    }

    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"deadline_trips\":9"), "{stats}");
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn slow_client_dribbling_bytes_gets_a_full_answer() {
    let dir = TempDir::new("slow");
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // One byte at a time, with pauses that trip the server's 200ms read
    // timeout several times mid-line: the request must still parse whole.
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    for (i, b) in b"QUERY ?- a(1, X).\n".iter().enumerate() {
        writer.write_all(std::slice::from_ref(b)).unwrap();
        writer.flush().unwrap();
        if i % 4 == 0 {
            std::thread::sleep(Duration::from_millis(60));
        }
    }
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    assert!(header.starts_with("OK "), "{header}");

    // The dribbler did not wedge the other worker.
    assert!(c.query("?- a(X, _).").unwrap().ok);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn budget_trip_is_coded_counted_and_never_memoized() {
    let dir = TempDir::new("budget");
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        fact_budget: Some(3),
        // Bound-aware admission would predict the blow-up and refuse with
        // `ERR bound` before evaluation ever starts (covered in
        // tests/bounds.rs); this test exercises the engine-side backstop,
        // so the pre-flight check is switched off.
        bound_admission: false,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // The full closure derives 6 facts; budget 3 trips. (The existential
    // form `a(X, _)` would not: arity reduction shrinks it to 3 facts —
    // the paper's optimization visibly changes what the budget measures.)
    // Twice: if the first trip were memoized, the second would come back
    // OK with a truncated table — the one unacceptable outcome.
    for _ in 0..2 {
        let resp = c.query("?- a(X, Y).").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code, Some(ErrCode::Budget), "{}", resp.error);
        assert!(resp.error.contains("facts_derived="), "{}", resp.error);
    }
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"budget_trips\":2"), "{stats}");
    assert!(stats.contains("\"answer_hits\":0"), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn connection_limit_sheds_with_busy_and_admitted_clients_are_unaffected() {
    let dir = TempDir::new("shed");
    let server = Server::spawn(&ServerConfig {
        threads: 3,
        max_conns: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut admitted = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(admitted.load(file.to_str().unwrap()).unwrap().ok);

    // The admitted connection holds the single slot; the next connection
    // is refused with one coded line instead of waiting in the backlog.
    let shed = TcpStream::connect(server.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut line = String::new();
    BufReader::new(shed).read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR busy"), "{line}");

    // The admitted client never noticed.
    assert!(admitted.query("?- a(X, _).").unwrap().ok);
    let stats = admitted.stats().unwrap().payload_text();
    assert!(stats.contains("\"shed_connections\":1"), "{stats}");

    admitted.shutdown().unwrap();
    server.join();
}

#[test]
fn shutdown_drains_in_flight_query_to_completion_or_clean_error() {
    let dir = TempDir::new("drain");
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        grace_ms: 150,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    let file = dir.file("heavy.dl", &pathological(45));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // A long query starts, then SHUTDOWN arrives from another client. The
    // in-flight query must end in one of exactly two ways: a complete OK
    // response, or a clean coded shutdown error — never a dropped
    // connection mid-payload.
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let started = Instant::now();
        let resp = c.query("?- big(1, X, Y, Z).").unwrap();
        (resp, started.elapsed())
    });
    std::thread::sleep(Duration::from_millis(50));
    assert!(c.shutdown().unwrap().ok);
    server.join();

    let (resp, elapsed) = worker.join().unwrap();
    if resp.ok {
        assert!(!resp.payload.is_empty(), "complete response has rows");
    } else {
        assert_eq!(resp.code, Some(ErrCode::Shutdown), "{}", resp.error);
        assert!(resp.error.contains("partial:"), "{}", resp.error);
    }
    // Bounded drain: well under eval-to-completion time for this input.
    assert!(elapsed < Duration::from_secs(30), "drain took {elapsed:?}");
}

#[test]
fn crash_without_shutdown_loses_nothing_fsync_always() {
    // Process-internal stand-in for the SIGKILL smoke in check.sh: the
    // first server is dropped without SHUTDOWN (workers and WAL file just
    // cease), then a second server recovers from the same directory.
    let dir = TempDir::new("crash");
    let wal_dir = dir.path().join("wal");
    let rules = dir.file("tc.dl", TC_RULES);

    let reference = {
        let server = Server::spawn(&ServerConfig {
            threads: 1,
            wal_dir: Some(wal_dir.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
        for f in ["p(1, 2).", "p(2, 3).", "p(3, 4).", "p(4, 5)."] {
            assert!(c.fact(f).unwrap().ok);
        }
        let resp = c.query("?- a(1, X).").unwrap();
        assert!(resp.ok, "{}", resp.error);
        // No SHUTDOWN: the Server is leaked (threads park in accept) and
        // the WAL's durability must carry the state alone.
        std::mem::forget(server);
        resp.payload_text()
    };

    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(wal_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.query("?- a(1, X).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload_text(), reference);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn compaction_under_load_preserves_every_acknowledged_fact() {
    let dir = TempDir::new("compact");
    let wal_dir = dir.path().join("wal");
    let rules = dir.file("tc.dl", TC_RULES);
    {
        let server = Server::spawn(&ServerConfig {
            threads: 2,
            wal_dir: Some(wal_dir.clone()),
            compact_every: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
        for i in 0..30 {
            assert!(c.fact(&format!("p({i}, {}).", i + 1)).unwrap().ok);
        }
        let stats = c.stats().unwrap().payload_text();
        assert!(
            !stats.contains("\"snapshots\":0"),
            "no compaction ran: {stats}"
        );
        c.shutdown().unwrap();
        server.join();
    }
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        wal_dir: Some(wal_dir),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let resp = c.query("?- p(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    // Header + the 30 distinct sources.
    assert_eq!(resp.payload.len(), 31, "{:?}", resp.payload);
    c.shutdown().unwrap();
    server.join();
}

#[test]
fn shed_reader_never_blocks_forever() {
    // Defensive companion to the shed test: even a client that only reads
    // (never writes) gets the busy line promptly, because shedding happens
    // at accept time, not at request time.
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        max_conns: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut hold = Client::connect(server.addr()).unwrap();
    assert!(hold.stats().unwrap().ok);

    let shed = TcpStream::connect(server.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let mut r = BufReader::new(shed);
    r.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("ERR busy"), "{text}");

    hold.shutdown().unwrap();
    server.join();
}

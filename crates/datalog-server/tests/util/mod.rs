//! Shared integration-test fixtures.
//!
//! Every test gets its own temp directory — keyed by pid, thread, and a
//! label — removed on drop even when the test panics. This replaces the
//! old `temp_file` helper, which shared one directory per process and
//! leaked it on exit.

use std::path::{Path, PathBuf};

/// A unique-per-test temp directory with drop-guard cleanup.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create (or wipe and recreate) the directory for this test.
    pub fn new(label: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "datalog-server-it-{}-{label}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create test temp dir");
        TempDir { path }
    }

    /// The directory path.
    #[allow(dead_code)] // used by faults.rs; this module is shared per test binary
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write `content` to `name` inside the directory, returning its path.
    #[allow(dead_code)] // used by protocol.rs; this module is shared per test binary
    pub fn file(&self, name: &str, content: &str) -> PathBuf {
        let p = self.path.join(name);
        std::fs::write(&p, content).expect("write fixture file");
        p
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

//! The telemetry surface, end to end: a real server on an ephemeral
//! port, a workload, and a `METRICS` scrape validated by a small
//! Prometheus text-format parser (not substring checks). The parser
//! enforces the exposition-format invariants a real scraper relies on:
//! every sample belongs to a family announced by `# TYPE`, every family
//! carries `# HELP`, histogram bucket counts are cumulative and end in a
//! `+Inf` bucket equal to `_count`, and counters are monotone across two
//! scrapes. The JSON readouts (`METRICS JSON`, `STATS`, `TRACE`) are run
//! through a strict JSON syntax checker for the same reason.

mod util;

use std::collections::BTreeMap;

use datalog_server::{Client, Consistency, Server, ServerConfig};
use util::TempDir;

const TC_RULES: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n";

// ---------------------------------------------------------------------------
// A small Prometheus text-exposition parser.
// ---------------------------------------------------------------------------

/// One parsed sample: full series name (with label set), value.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// One metric family from a scrape.
#[derive(Debug)]
struct PromFamily {
    help: bool,
    kind: String,
    samples: Vec<Sample>,
}

/// Parse a Prometheus text exposition, panicking (with the offending
/// line) on anything malformed. Returns family name → family.
fn parse_prometheus(text: &str) -> BTreeMap<String, PromFamily> {
    let mut families: BTreeMap<String, PromFamily> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP without text");
            assert!(!help.is_empty(), "empty HELP for {name}");
            families
                .entry(name.to_string())
                .or_insert_with(|| PromFamily {
                    help: false,
                    kind: String::new(),
                    samples: Vec::new(),
                })
                .help = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE without kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} for {name}"
            );
            let fam = families
                .entry(name.to_string())
                .or_insert_with(|| PromFamily {
                    help: false,
                    kind: String::new(),
                    samples: Vec::new(),
                });
            assert!(fam.kind.is_empty(), "duplicate TYPE for {name}");
            fam.kind = kind.to_string();
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");
        // A sample: `name{l="v",...} value` or `name value`.
        let (series, value) = line.rsplit_once(' ').expect("sample without value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            if value == "+Inf" {
                f64::INFINITY
            } else {
                panic!("bad sample value in: {line}")
            }
        });
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), BTreeMap::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("unterminated label set");
                let mut labels = BTreeMap::new();
                for pair in split_label_pairs(body) {
                    let (k, v) = pair.split_once('=').expect("label without =");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .expect("unquoted label value");
                    labels.insert(k.to_string(), v.to_string());
                }
                (name.to_string(), labels)
            }
        };
        // `_bucket`/`_sum`/`_count` samples belong to the histogram family.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                families.contains_key(base).then(|| base.to_string())
            })
            .unwrap_or_else(|| name.clone());
        let fam = families
            .get_mut(&family)
            .unwrap_or_else(|| panic!("sample for unannounced family: {line}"));
        fam.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    for (name, fam) in &families {
        assert!(fam.help, "family {name} has no HELP");
        assert!(!fam.kind.is_empty(), "family {name} has no TYPE");
        assert!(!fam.samples.is_empty(), "family {name} has no samples");
    }
    families
}

/// Split `a="b",c="d,e"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut quoted) = (0usize, false);
    for (i, c) in body.char_indices() {
        match c {
            '"' => quoted = !quoted,
            ',' if !quoted => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

/// Check the histogram invariants for every series of one family:
/// cumulative buckets, a final `+Inf` bucket, `+Inf == _count`.
fn check_histogram(fam: &PromFamily, name: &str) {
    // Partition bucket samples by their label set minus `le`.
    let mut by_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for s in &fam.samples {
        let mut labels = s.labels.clone();
        let le = labels.remove("le");
        let series_key = format!("{labels:?}");
        if s.name == format!("{name}_bucket") {
            let le = le.expect("bucket without le");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("bad le")
            };
            by_series.entry(series_key).or_default().push((le, s.value));
        } else if s.name == format!("{name}_count") {
            counts.insert(series_key, s.value);
        }
    }
    for (series, buckets) in by_series {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = -1.0;
        for (le, count) in &buckets {
            assert!(*le > prev_le, "{name}{series}: le not increasing");
            assert!(
                *count >= prev_count,
                "{name}{series}: bucket counts not cumulative"
            );
            prev_le = *le;
            prev_count = *count;
        }
        let (last_le, last_count) = buckets.last().unwrap();
        assert!(last_le.is_infinite(), "{name}{series}: no +Inf bucket");
        assert_eq!(
            *last_count, counts[&series],
            "{name}{series}: +Inf bucket != _count"
        );
    }
}

// ---------------------------------------------------------------------------
// A strict JSON syntax checker (validity, not schema).
// ---------------------------------------------------------------------------

struct JsonCheck<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Panic unless `text` is exactly one valid JSON value.
fn assert_valid_json(text: &str) {
    let mut c = JsonCheck {
        bytes: text.as_bytes(),
        pos: 0,
    };
    c.skip_ws();
    c.value();
    c.skip_ws();
    assert_eq!(c.pos, c.bytes.len(), "trailing garbage after JSON value");
}

impl JsonCheck<'_> {
    fn peek(&self) -> u8 {
        assert!(self.pos < self.bytes.len(), "unexpected end of JSON");
        self.bytes[self.pos]
    }
    fn eat(&mut self, b: u8) {
        assert_eq!(
            self.peek(),
            b,
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
    fn value(&mut self) {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            other => panic!("unexpected byte {:?} at {}", other as char, self.pos),
        }
    }
    fn literal(&mut self, word: &str) {
        assert!(
            self.bytes[self.pos..].starts_with(word.as_bytes()),
            "bad literal at {}",
            self.pos
        );
        self.pos += word.len();
    }
    fn number(&mut self) {
        if self.peek() == b'-' {
            self.pos += 1;
        }
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.pos += 1;
        }
        assert!(self.pos > start, "empty number at {start}");
    }
    fn string(&mut self) {
        self.eat(b'"');
        loop {
            match self.peek() {
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\\' => self.pos += 2,
                b => {
                    assert!(b >= 0x20, "unescaped control byte in string");
                    self.pos += 1;
                }
            }
        }
    }
    fn array(&mut self) {
        self.eat(b'[');
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return;
        }
        loop {
            self.value();
            self.skip_ws();
            match self.peek() {
                b',' => {
                    self.pos += 1;
                    self.skip_ws();
                }
                b']' => {
                    self.pos += 1;
                    return;
                }
                other => panic!("expected , or ] got {:?}", other as char),
            }
        }
    }
    fn object(&mut self) {
        self.eat(b'{');
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return;
        }
        loop {
            self.string();
            self.skip_ws();
            self.eat(b':');
            self.skip_ws();
            self.value();
            self.skip_ws();
            match self.peek() {
                b',' => {
                    self.pos += 1;
                    self.skip_ws();
                }
                b'}' => {
                    self.pos += 1;
                    return;
                }
                other => panic!("expected , or }} got {:?}", other as char),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------------

/// Spin up a server with a WAL, run a mixed workload, and return both the
/// server and a connected client.
fn server_with_workload(dir: &TempDir, cfg: ServerConfig) -> (Server, Client) {
    let rules = dir.path().join("rules.dl");
    std::fs::write(&rules, TC_RULES).unwrap();
    let server = Server::spawn(&cfg).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.load(rules.to_str().unwrap()).unwrap().ok);
    for i in 1..5 {
        assert!(c.fact(&format!("p({i}, {}).", i + 1)).unwrap().ok);
    }
    // Cold miss, prepared hit, memoized answer hit.
    assert!(c.query("?- a(1, X).").unwrap().ok);
    assert!(c.query("?- a(2, X).").unwrap().ok);
    assert!(c.query("?- a(2, X).").unwrap().ok);
    // Invalidate the memoized answers, then query again.
    assert!(c.fact("p(5, 6).").unwrap().ok);
    assert!(c.query("?- a(1, X).").unwrap().ok);
    assert!(c.stats().unwrap().ok);
    assert!(c.trace().unwrap().ok);
    (server, c)
}

#[test]
fn metrics_scrape_is_valid_prometheus_and_covers_the_surface() {
    let dir = TempDir::new("metrics-scrape");
    let cfg = ServerConfig {
        threads: 2,
        eval_threads: 2,
        wal_dir: Some(dir.path().join("wal")),
        ..ServerConfig::default()
    };
    let (server, mut c) = server_with_workload(&dir, cfg);

    let resp = c.metrics(false).unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(
        resp.info_map().get("format").map(String::as_str),
        Some("prometheus")
    );
    let families = parse_prometheus(&resp.payload_text());

    // The acceptance surface: request latency per verb, cache hit/miss,
    // WAL fsync, shed/trip counters, per-worker eval histograms.
    for required in [
        "xdl_requests_total",
        "xdl_request_seconds",
        "xdl_query_phase_seconds",
        "xdl_queries_total",
        "xdl_cache_events_total",
        "xdl_wal_append_seconds",
        "xdl_wal_fsync_seconds",
        "xdl_shed_total",
        "xdl_limit_trips_total",
        "xdl_admission_rejected_total",
        "xdl_eval_task_enum_seconds",
        "xdl_eval_merge_seconds",
        "xdl_inflight_queries",
        "xdl_facts",
        "xdl_storage_runs",
        "xdl_bloom_probes_total",
        "xdl_bloom_skips_total",
        "xdl_storage_consolidations_total",
        "xdl_storage_consolidation_seconds",
        "xdl_index_rebuilds_total",
    ] {
        assert!(
            families.contains_key(required),
            "{required} missing from scrape"
        );
    }
    for (name, fam) in &families {
        if fam.kind == "histogram" {
            check_histogram(fam, name);
        }
    }

    // Spot-check values the workload determines exactly.
    let find = |family: &str, label: (&str, &str)| -> f64 {
        families[family]
            .samples
            .iter()
            .find(|s| s.labels.get(label.0).map(String::as_str) == Some(label.1))
            .unwrap_or_else(|| panic!("{family} has no series {label:?}"))
            .value
    };
    assert_eq!(find("xdl_requests_total", ("verb", "QUERY")), 4.0);
    assert_eq!(find("xdl_cache_events_total", ("kind", "miss")), 1.0);
    assert_eq!(find("xdl_cache_events_total", ("kind", "answer_hit")), 1.0);
    assert!(find("xdl_cache_events_total", ("kind", "invalidation")) >= 1.0);
    // 6 FACTs with an Always-fsync WAL: the fsync histogram saw them all.
    let fsync = &families["xdl_wal_fsync_seconds"];
    let count = fsync
        .samples
        .iter()
        .find(|s| s.name == "xdl_wal_fsync_seconds_count")
        .unwrap();
    assert!(count.value >= 6.0, "fsync count {}", count.value);

    server.shutdown();
    server.join();
}

#[test]
fn incremental_serving_surface_is_scraped_and_counted() {
    let dir = TempDir::new("metrics-incremental");
    let server = Server::spawn(&ServerConfig {
        threads: 1,
        ..ServerConfig::default() // resident forms on by default
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let rules = dir.path().join("rules.dl");
    std::fs::write(&rules, format!("{TC_RULES}p(1, 2).\n")).unwrap();
    assert!(c.load(rules.to_str().unwrap()).unwrap().ok);

    // Cold miss pins the resident; the FACTs are then propagated into it
    // as delta batches; the final query serves off the resident frontier.
    assert_eq!(c.query("?- a(X, _).").unwrap().get("cache"), Some("miss"));
    for i in 2..6 {
        assert!(c.fact(&format!("p({i}, {}).", i + 1)).unwrap().ok);
    }
    let resp = c.query("?- a(X, _).").unwrap();
    assert_eq!(resp.get("cache"), Some("resident"));

    let families = parse_prometheus(&c.metrics(false).unwrap().payload_text());
    for required in [
        "xdl_incremental_applied_facts_total",
        "xdl_incremental_propagation_seconds",
        "xdl_resident_forms",
        "xdl_fallback_recomputes_total",
    ] {
        assert!(
            families.contains_key(required),
            "{required} missing from scrape"
        );
    }
    // Four new facts propagated, one resident pinned, zero fallbacks.
    assert_eq!(
        families["xdl_incremental_applied_facts_total"].samples[0].value,
        4.0
    );
    assert_eq!(families["xdl_resident_forms"].samples[0].value, 1.0);
    assert_eq!(
        families["xdl_fallback_recomputes_total"].samples[0].value,
        0.0
    );
    let prop_count = families["xdl_incremental_propagation_seconds"]
        .samples
        .iter()
        .find(|s| s.name == "xdl_incremental_propagation_seconds_count")
        .unwrap();
    assert!(
        prop_count.value >= 4.0,
        "per-FACT drains: {}",
        prop_count.value
    );

    // STATS reads the same surface.
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"resident_forms\":1"), "{stats}");
    assert!(stats.contains("\"incremental_applied_facts\":4"), "{stats}");
    assert!(stats.contains("\"fallback_recomputes\":0"), "{stats}");

    server.shutdown();
    server.join();
}

#[test]
fn bounded_staleness_surface_is_scraped_and_counted() {
    let dir = TempDir::new("metrics-staleness");
    // Zero sync budget defers every drain; the slow-drain fault keeps the
    // deferred drain in flight long enough that the stale serving and
    // refusal counters are deterministically reachable.
    let fault = std::sync::Arc::new(datalog_server::FaultPlan::default());
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        drain_sync_cost: 0,
        fault: std::sync::Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let rules = dir.path().join("rules.dl");
    std::fs::write(&rules, format!("{TC_RULES}p(1, 2).\n")).unwrap();
    assert!(c.load(rules.to_str().unwrap()).unwrap().ok);

    assert_eq!(c.query("?- a(X, _).").unwrap().get("cache"), Some("miss"));
    fault.slow_drains(300);
    assert!(c.fact("p(2, 3).").unwrap().ok);
    // One relaxed read off the old frontier, one refusal, one fresh.
    let resp = c.query_at(Consistency::Any, "?- a(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    std::thread::sleep(std::time::Duration::from_millis(15));
    let resp = c.query_at(Consistency::Bounded(1), "?- a(X, _).").unwrap();
    let refusals = u64::from(!resp.ok);
    fault.slow_drains(0);
    assert!(c.query("?- a(X, _).").unwrap().ok);

    let families = parse_prometheus(&c.metrics(false).unwrap().payload_text());
    for required in [
        "xdl_resident_rebuilds_total",
        "xdl_resident_poisonings_total",
        "xdl_stale_serves_total",
        "xdl_stale_refusals_total",
        "xdl_background_drains_total",
        "xdl_staleness_bound_seconds",
    ] {
        assert!(
            families.contains_key(required),
            "{required} missing from scrape"
        );
    }
    assert!(
        families["xdl_stale_serves_total"].samples[0].value >= 1.0,
        "the any-mode read was a stale serve"
    );
    assert_eq!(
        families["xdl_stale_refusals_total"].samples[0].value,
        refusals as f64
    );
    assert_eq!(
        families["xdl_resident_poisonings_total"].samples[0].value,
        0.0
    );
    // Every served query records into the staleness histogram.
    let bound_count = families["xdl_staleness_bound_seconds"]
        .samples
        .iter()
        .find(|s| s.name == "xdl_staleness_bound_seconds_count")
        .unwrap();
    assert!(
        bound_count.value >= 3.0,
        "bound count {}",
        bound_count.value
    );

    // STATS mirrors the same counters.
    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"stale_serves\":"), "{stats}");
    assert!(stats.contains("\"stale_refusals\":"), "{stats}");
    assert!(stats.contains("\"resident_rebuilds\":"), "{stats}");
    assert!(stats.contains("\"resident_poisonings\":"), "{stats}");
    assert!(stats.contains("\"background_drains\":"), "{stats}");

    server.shutdown();
    server.join();
}

#[test]
fn storage_surface_is_scraped_and_counted() {
    let dir = TempDir::new("metrics-storage");
    let cfg = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let (server, mut c) = server_with_workload(&dir, cfg);

    // The engine storage counters are process-wide (other tests in this
    // binary also evaluate), so assert reachability and the delta-sync
    // discipline rather than exact values: this server's own queries
    // probed bloom-gated runs, so after a scrape the synced counters are
    // non-zero and never exceed the globals they mirror.
    let families = parse_prometheus(&c.metrics(false).unwrap().payload_text());
    let probes = families["xdl_bloom_probes_total"].samples[0].value;
    assert!(probes > 0.0, "queries probe sealed runs");
    let global = datalog_engine::storage_counters();
    assert!(
        probes <= global.bloom_probes as f64,
        "delta-sync never overshoots"
    );
    assert!(families["xdl_bloom_skips_total"].samples[0].value <= global.bloom_skips as f64);

    // STATS exposes the same surface as a nested object.
    let stats = c.stats().unwrap().payload_text();
    for key in [
        "\"storage\":{",
        "\"runs\":",
        "\"bloom_probes\":",
        "\"bloom_skips\":",
        "\"consolidations\":",
        "\"index_rebuilds\":",
    ] {
        assert!(stats.contains(key), "{key} missing from STATS: {stats}");
    }

    server.shutdown();
    server.join();
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let dir = TempDir::new("metrics-monotone");
    let cfg = ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    };
    let (server, mut c) = server_with_workload(&dir, cfg);

    let first = parse_prometheus(&c.metrics(false).unwrap().payload_text());
    assert!(c.query("?- a(1, X).").unwrap().ok);
    let second = parse_prometheus(&c.metrics(false).unwrap().payload_text());

    for (name, fam) in &first {
        if fam.kind != "counter" {
            continue;
        }
        for s in &fam.samples {
            let after = second[name]
                .samples
                .iter()
                .find(|t| t.labels == s.labels)
                .unwrap_or_else(|| panic!("{name} series vanished between scrapes"));
            assert!(
                after.value >= s.value,
                "{name}{:?} went backwards: {} -> {}",
                s.labels,
                s.value,
                after.value
            );
        }
    }
    let q = |fams: &BTreeMap<String, PromFamily>| {
        fams["xdl_requests_total"]
            .samples
            .iter()
            .find(|s| s.labels.get("verb").map(String::as_str) == Some("QUERY"))
            .unwrap()
            .value
    };
    assert_eq!(q(&second), q(&first) + 1.0);

    server.shutdown();
    server.join();
}

#[test]
fn json_readouts_are_valid_json() {
    let dir = TempDir::new("metrics-json");
    let cfg = ServerConfig {
        threads: 1,
        wal_dir: Some(dir.path().join("wal")),
        ..ServerConfig::default()
    };
    let (server, mut c) = server_with_workload(&dir, cfg);

    let m = c.metrics(true).unwrap();
    assert!(m.ok);
    assert_eq!(m.info_map().get("format").map(String::as_str), Some("json"));
    assert_valid_json(&m.payload_text());
    assert!(m.payload_text().contains("\"xdl_requests_total\""));

    // STATS and TRACE payloads go through the same strict checker — the
    // guarantee that no hand-rolled (escaping-unsafe) JSON writer is left
    // on any readout path.
    assert_valid_json(&c.stats().unwrap().payload_text());
    assert_valid_json(&c.trace().unwrap().payload_text());

    server.shutdown();
    server.join();
}

#[test]
fn disabled_histograms_keep_counters_truthful() {
    let dir = TempDir::new("metrics-off");
    let cfg = ServerConfig {
        threads: 1,
        metrics: false,
        ..ServerConfig::default()
    };
    let (server, mut c) = server_with_workload(&dir, cfg);

    let families = parse_prometheus(&c.metrics(false).unwrap().payload_text());
    // Counters still count under --no-metrics...
    let queries = families["xdl_requests_total"]
        .samples
        .iter()
        .find(|s| s.labels.get("verb").map(String::as_str) == Some("QUERY"))
        .unwrap();
    assert_eq!(queries.value, 4.0);
    // ...while histograms record nothing (the no-op baseline e13 measures).
    let lat = families["xdl_request_seconds"]
        .samples
        .iter()
        .find(|s| s.name == "xdl_request_seconds_count")
        .unwrap();
    assert_eq!(lat.value, 0.0);

    // STATS agrees with the scrape.
    let stats = c.stats().unwrap().payload_text();
    assert!(
        stats.contains("\"queries\":4") || stats.contains("\"queries\": 4"),
        "{stats}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn slow_query_threshold_zero_counts_every_query() {
    let dir = TempDir::new("metrics-slow");
    let cfg = ServerConfig {
        threads: 1,
        slow_query_ms: Some(0),
        ..ServerConfig::default()
    };
    let (server, mut c) = server_with_workload(&dir, cfg);

    let families = parse_prometheus(&c.metrics(false).unwrap().payload_text());
    // Threshold 0: all four queries crossed it (the log lines themselves
    // went to stderr; the counter is the observable here).
    assert_eq!(families["xdl_slow_queries_total"].samples[0].value, 4.0);

    server.shutdown();
    server.join();
}

//! End-to-end protocol tests against a real server on an ephemeral port.
//!
//! The reference for byte-identity is the `xdl run` pipeline, recomputed
//! in-process: parse → `optimize` with the default config → evaluate with
//! the boolean cut → render (`true`/`false` for boolean queries, else the
//! column header plus sorted rows).

mod util;

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use datalog_ast::parse_program;
use datalog_engine::{query_answers_full, EvalOptions, FactSet};
use datalog_opt::{optimize, OptimizerConfig};
use datalog_server::{
    render_answers, Client, Consistency, ErrCode, FaultPlan, Server, ServerConfig,
};
use util::TempDir;

/// What `xdl run <src>` prints on stdout, computed via the same library
/// calls the binary makes.
fn xdl_run_reference(src: &str) -> String {
    let parsed = parse_program(src).unwrap();
    parsed.program.validate().unwrap();
    let facts = FactSet::from_parsed(&parsed.facts);
    let out = optimize(&parsed.program, &OptimizerConfig::default()).unwrap();
    let opts = EvalOptions {
        boolean_cut: true,
        ..EvalOptions::default()
    };
    let (answers, _) = query_answers_full(&out.program, &facts, &opts).unwrap();
    render_answers(&answers)
}

fn spawn(threads: usize) -> Server {
    Server::spawn(&ServerConfig {
        threads,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

const TC_RULES: &str = "a(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).\n";
const TC_FACTS: &str = "p(1, 2).\np(2, 3).\np(3, 4).\n";

#[test]
fn roundtrip_matches_xdl_run_byte_for_byte() {
    let dir = TempDir::new("roundtrip");
    let server = spawn(2);
    let mut c = Client::connect(server.addr()).unwrap();

    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    let resp = c.load(file.to_str().unwrap()).unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.get("rules"), Some("2"));
    assert_eq!(resp.get("new_facts"), Some("3"));

    for query in ["?- a(X, _).", "?- a(X, Y).", "?- a(1, _).", "?- a(_, _)."] {
        let resp = c.query(query).unwrap();
        assert!(resp.ok, "{query}: {}", resp.error);
        let reference = xdl_run_reference(&format!("{TC_RULES}{TC_FACTS}{query}"));
        assert_eq!(
            resp.payload_text(),
            reference,
            "server and xdl run disagree on {query}"
        );
    }

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn repeat_query_form_hits_cache_with_zero_new_events() {
    let dir = TempDir::new("repeat");
    let server = spawn(2);
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // Cold: full optimizer run, phase events present.
    let first = c.query("?- a(X, _).").unwrap();
    assert_eq!(first.get("cache"), Some("miss"));
    let trace = c.trace().unwrap();
    assert!(trace.ok);
    let doc = trace.payload_text();
    assert!(doc.contains("\"cache\":\"miss\""), "{doc}");
    assert!(
        doc.contains("\"new_events\":[{"),
        "cold run must report phase events: {doc}"
    );

    // Identical query: memoized answers, nothing re-run at all.
    let second = c.query("?- a(X, _).").unwrap();
    assert_eq!(second.get("cache"), Some("answers"));
    assert_eq!(second.payload, first.payload);
    let doc = c.trace().unwrap().payload_text();
    assert!(doc.contains("\"new_events\":[]"), "{doc}");

    // Same form, different constant: prepared program reused (no
    // optimizer), answers extracted from the resident frontier the cold
    // miss pinned — no re-evaluation either.
    let third = c.query("?- a(2, _).").unwrap();
    assert_eq!(third.get("cache"), Some("resident"));
    assert_eq!(third.payload_text(), "true\n");
    let doc = c.trace().unwrap().payload_text();
    assert!(doc.contains("\"cache\":\"resident\""), "{doc}");
    assert!(doc.contains("\"new_events\":[]"), "{doc}");

    // First-seen adornment of the same predicate: full trace again.
    let fourth = c.query("?- a(X, Y).").unwrap();
    assert_eq!(fourth.get("cache"), Some("miss"));
    let doc = c.trace().unwrap().payload_text();
    assert!(doc.contains("\"new_events\":[{"), "{doc}");

    let stats = c.stats().unwrap();
    let doc = stats.payload_text();
    assert!(doc.contains("\"cache_misses\":2"), "{doc}");
    assert!(doc.contains("\"answer_hits\":1"), "{doc}");
    assert!(doc.contains("\"prepared_forms\":2"), "{doc}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn ingestion_invalidates_only_dependent_forms() {
    let dir = TempDir::new("invalidate");
    let server = spawn(2);
    let mut c = Client::connect(server.addr()).unwrap();
    let file = dir.file(
        "two.dl",
        "a(X, Y) :- p(X, Y).\nb(X, Y) :- q(X, Y).\np(1, 2).\nq(7, 8).\n",
    );
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // Warm both forms, then serve both from the answer cache.
    assert_eq!(c.query("?- a(X, _).").unwrap().get("cache"), Some("miss"));
    assert_eq!(c.query("?- b(X, _).").unwrap().get("cache"), Some("miss"));
    assert_eq!(
        c.query("?- a(X, _).").unwrap().get("cache"),
        Some("answers")
    );
    assert_eq!(
        c.query("?- b(X, _).").unwrap().get("cache"),
        Some("answers")
    );

    // A fact for p touches only the form over a.
    let resp = c.fact("p(5, 6).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.get("new"), Some("true"));
    let a = c.query("?- a(X, _).").unwrap();
    assert_eq!(
        a.get("cache"),
        Some("resident"),
        "a re-serves from its caught-up resident frontier"
    );
    assert!(a.payload.contains(&"5".to_string()), "{:?}", a.payload);
    assert_eq!(
        c.query("?- b(X, _).").unwrap().get("cache"),
        Some("answers"),
        "b does not depend on p"
    );

    // Duplicate fact: no new version, no invalidation.
    let resp = c.fact("p(5, 6).").unwrap();
    assert_eq!(resp.get("new"), Some("false"));
    assert_eq!(
        c.query("?- a(X, _).").unwrap().get("cache"),
        Some("answers")
    );

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn errors_keep_the_connection_usable() {
    let server = spawn(1);
    let mut c = Client::connect(server.addr()).unwrap();

    // Parse error carries line:col and the connection survives.
    let resp = c.query("?- a(X, _").unwrap();
    assert!(!resp.ok);
    assert!(resp.error.starts_with("query:1:"), "{}", resp.error);

    let resp = c.request("FROBNICATE now").unwrap();
    assert!(!resp.ok);
    assert!(resp.error.contains("unknown command"), "{}", resp.error);

    let resp = c.fact("p(1, X).").unwrap();
    assert!(!resp.ok);
    assert!(resp.error.contains("not ground"), "{}", resp.error);

    // TRACE before any query is an error, not a crash.
    let resp = c.trace().unwrap();
    assert!(!resp.ok);

    // Still alive: a well-formed exchange succeeds on the same connection.
    assert!(c.fact("p(1, 2).").unwrap().ok);
    let resp = c.query("?- p(X, _).").unwrap();
    assert!(resp.ok, "{}", resp.error);
    assert_eq!(resp.payload, vec!["X", "1"]);

    c.shutdown().unwrap();
    server.join();
}

/// ≥4 concurrent clients querying while a writer ingests: every response
/// must equal the reference rendering of *some* prefix of the ingestion
/// order — snapshot isolation means no torn reads, ever.
#[test]
fn concurrent_clients_with_interleaved_ingestion_see_consistent_prefixes() {
    const CHAIN: i64 = 12;
    let dir = TempDir::new("concurrent");
    let server = spawn(6);
    let addr = server.addr();

    let mut setup = Client::connect(addr).unwrap();
    let file = dir.file("rules-only.dl", TC_RULES);
    assert!(setup.load(file.to_str().unwrap()).unwrap().ok);
    assert!(setup.fact("p(0, 1).").unwrap().ok);

    // Reference payloads for every prefix p(0,1)..p(k,k+1), k = 0..CHAIN-1.
    let valid: BTreeSet<String> = (1..=CHAIN)
        .map(|k| {
            let facts: String = (0..k).map(|i| format!("p({i}, {}).\n", i + 1)).collect();
            xdl_run_reference(&format!("{TC_RULES}{facts}?- a(X, _)."))
        })
        .collect();

    let writer = std::thread::spawn(move || {
        let mut w = Client::connect(addr).unwrap();
        for i in 1..CHAIN {
            let resp = w.fact(&format!("p({i}, {}).", i + 1)).unwrap();
            assert!(resp.ok, "{}", resp.error);
        }
    });

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let valid = valid.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut last_len = 0usize;
                for _ in 0..30 {
                    let resp = c.query("?- a(X, _).").unwrap();
                    assert!(resp.ok, "{}", resp.error);
                    let payload = resp.payload_text();
                    assert!(
                        valid.contains(&payload),
                        "response is not a prefix rendering:\n{payload}"
                    );
                    // Answers only grow: the EDB is append-only.
                    assert!(resp.payload.len() >= last_len, "answers shrank");
                    last_len = resp.payload.len();
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Quiescent: the final answer is the full-chain reference.
    let mut c = Client::connect(addr).unwrap();
    let full: String = (0..CHAIN)
        .map(|i| format!("p({i}, {}).\n", i + 1))
        .collect();
    let reference = xdl_run_reference(&format!("{TC_RULES}{full}?- a(X, _)."));
    let resp = c.query("?- a(X, _).").unwrap();
    assert_eq!(resp.payload_text(), reference);

    c.shutdown().unwrap();
    server.join();
}

/// Protocol v4: the three consistency modes round-trip over TCP with
/// frontier/staleness headers, and `fresh` stays byte-identical to
/// `xdl run` even while a deferred drain is still in flight.
#[test]
fn consistency_modes_round_trip_with_frontier_headers() {
    let dir = TempDir::new("consistency");
    let fault = Arc::new(FaultPlan::default());
    // drain_sync_cost = 0 forces every post-ingest drain onto the
    // maintenance thread, so there is a real stale window to observe.
    let server = Server::spawn(&ServerConfig {
        threads: 2,
        drain_sync_cost: 0,
        fault: Arc::clone(&fault),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut c = Client::connect(server.addr()).unwrap();

    let file = dir.file("tc.dl", &format!("{TC_RULES}{TC_FACTS}"));
    assert!(c.load(file.to_str().unwrap()).unwrap().ok);

    // Warm the form: the cold miss pins a resident frontier and already
    // reports version + zero staleness.
    let q = "?- a(1, X).";
    let cold = c.query(q).unwrap();
    assert!(cold.ok, "{}", cold.error);
    assert_eq!(cold.get("cache"), Some("miss"));
    let v0: u64 = cold.get("frontier").unwrap().parse().unwrap();
    assert_eq!(cold.get("staleness_us"), Some("0"));
    let old_payload = cold.payload_text();

    // Ingest while drains are slow: the background catch-up sleeps
    // holding the form lock, keeping the published frontier behind.
    fault.slow_drains(300);
    assert!(c.fact("p(4, 5).").unwrap().ok);

    // `any` serves immediately off the old frontier with an honest bound.
    let any = c.query_at(Consistency::Any, q).unwrap();
    assert!(any.ok, "{}", any.error);
    let tag = any.get("cache").unwrap();
    assert!(
        tag == "stale" || tag == "stale_answers",
        "expected a stale serve, got {tag}"
    );
    assert_eq!(any.payload_text(), old_payload);
    assert_eq!(any.get("frontier").unwrap().parse::<u64>().unwrap(), v0);
    let bound_us: u64 = any.get("staleness_us").unwrap().parse().unwrap();
    assert!(bound_us > 0, "a stale serve must report a nonzero bound");

    // A generous budget is also happy with the old frontier.
    let loose = c.query_at(Consistency::Bounded(60_000), q).unwrap();
    assert!(loose.ok, "{}", loose.error);
    assert_eq!(loose.payload_text(), old_payload);

    // A 1 ms budget cannot be met once the frontier is >10 ms old:
    // the server refuses with `ERR stale <bound_ms>` instead of blocking.
    std::thread::sleep(Duration::from_millis(20));
    let tight = c.query_at(Consistency::Bounded(1), q).unwrap();
    assert!(!tight.ok, "over-budget read must be refused");
    assert_eq!(tight.code, Some(ErrCode::Stale));
    let bound_ms = tight.stale_bound_ms().expect("ERR stale carries a bound");
    assert!(bound_ms >= 10, "reported bound {bound_ms} ms is too low");

    // `fresh` (the default) waits out the drain and matches `xdl run`
    // byte for byte — staleness zero, frontier advanced.
    fault.slow_drains(0);
    let fresh = c.query(q).unwrap();
    assert!(fresh.ok, "{}", fresh.error);
    let reference = xdl_run_reference(&format!("{TC_RULES}{TC_FACTS}p(4, 5).\n{q}"));
    assert_eq!(fresh.payload_text(), reference);
    assert_eq!(fresh.get("staleness_us"), Some("0"));
    assert!(fresh.get("frontier").unwrap().parse::<u64>().unwrap() > v0);

    // Once drained, `any` is current again: zero staleness, new frontier.
    let settled = c.query_at(Consistency::Any, q).unwrap();
    assert!(settled.ok, "{}", settled.error);
    assert_eq!(settled.payload_text(), reference);
    assert_eq!(settled.get("staleness_us"), Some("0"));

    let stats = c.stats().unwrap().payload_text();
    assert!(stats.contains("\"stale_refusals\":1"), "{stats}");

    c.shutdown().unwrap();
    server.join();
}

#[test]
fn load_rejects_rules_over_stored_facts_and_idb_facts() {
    let dir = TempDir::new("reject");
    let server = spawn(1);
    let mut c = Client::connect(server.addr()).unwrap();

    assert!(c.fact("a(1, 2).").unwrap().ok);
    // A rule whose head already has stored facts violates the IDB-empty
    // convention the optimizer relies on.
    let file = dir.file("clash.dl", "a(X, Y) :- p(X, Y).\n");
    let resp = c.load(file.to_str().unwrap()).unwrap();
    assert!(!resp.ok);
    assert!(
        resp.error.contains("facts already stored"),
        "{}",
        resp.error
    );

    // Facts for an IDB predicate inside a loaded file are rejected whole.
    let file = dir.file("idbfact.dl", "b(X, Y) :- q(X, Y).\nb(1, 2).\n");
    let resp = c.load(file.to_str().unwrap()).unwrap();
    assert!(!resp.ok);
    assert!(resp.error.contains("derived by rules"), "{}", resp.error);

    c.shutdown().unwrap();
    server.join();
}

//! The server's metric surface: one [`Registry`] plus named handles for
//! every instrumented point, created once at startup and shared by all
//! worker threads.
//!
//! Everything the old ad-hoc `STATS` counters tracked now lives here, so
//! `STATS`, the `METRICS` verb and the slow-query log all read the *same*
//! atomics — there is no second bookkeeping path to drift. The naming
//! follows Prometheus conventions: `_total` for counters, `_seconds` for
//! latency histograms (recorded in nanoseconds, rendered as seconds),
//! label sets for families that partition one concept (`verb`, `phase`,
//! `kind`).
//!
//! Overhead budget (verified by bench experiment e13): a request records
//! one counter increment and one histogram sample per lifecycle phase —
//! each a handful of relaxed `fetch_add`s — plus two `Instant::now()`
//! calls per span. With `--no-metrics` the registry is built disabled and
//! every histogram sample reduces to a single branch; counters still
//! record so `STATS` stays truthful either way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datalog_trace::metrics::EvalHists;
use datalog_trace::{Counter, Gauge, Histogram, Json, Registry};

use crate::protocol::Request;

/// The protocol verbs, indexed by [`verb_index`].
pub const VERBS: [&str; 7] = [
    "FACT", "LOAD", "QUERY", "STATS", "TRACE", "METRICS", "SHUTDOWN",
];

/// The query lifecycle phases, indexed by [`Phase`].
pub const PHASES: [&str; 4] = ["parse", "cache", "eval", "serialize"];

/// Index into [`ServerMetrics::phase_seconds`].
#[derive(Debug, Clone, Copy)]
pub enum Phase {
    /// Parse + adornment + validation of the query text.
    Parse = 0,
    /// Prepared-form cache lookup (includes the optimizer on a cold miss).
    Cache = 1,
    /// Fixpoint evaluation.
    Eval = 2,
    /// Answer rendering + memoization.
    Serialize = 3,
}

/// Index of a request's verb into the per-verb metric arrays.
pub fn verb_index(req: &Request) -> usize {
    match req {
        Request::Fact(_) => 0,
        Request::Load(_) => 1,
        Request::Query { .. } => 2,
        Request::Stats => 3,
        Request::Trace => 4,
        Request::Metrics { .. } => 5,
        Request::Shutdown => 6,
    }
}

/// Every metric handle the server records into.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    /// Monotone request-id source; ids appear in spans and the slow-query
    /// log so one request's phases can be correlated across surfaces.
    request_ids: AtomicU64,

    /// Requests per verb (accepted and answered, including errors).
    pub requests_total: [Arc<Counter>; 7],
    /// End-to-end request latency per verb.
    pub request_seconds: [Arc<Histogram>; 7],
    /// Query lifecycle phase latency (parse → cache → eval → serialize).
    pub phase_seconds: [Arc<Histogram>; 4],

    /// Queries admitted past admission control.
    pub queries: Arc<Counter>,
    /// Prepared-form reuse (optimizer skipped).
    pub prepared_hits: Arc<Counter>,
    /// Memoized-answer reuse (evaluation skipped too).
    pub answer_hits: Arc<Counter>,
    /// Cold misses (full optimizer run).
    pub cache_misses: Arc<Counter>,
    /// Answer slots cleared by ingestion.
    pub invalidations: Arc<Counter>,
    /// New facts applied to resident forms by delta propagation.
    pub incremental_applied_facts: Arc<Counter>,
    /// Delta-propagation latency (one resident form's catch-up: pending
    /// shared-store rows pushed through the retained semi-naive state).
    pub incremental_seconds: Arc<Histogram>,
    /// Eligible queries that found their resident state evicted or
    /// poisoned and recomputed from cold (then re-pinned).
    pub fallback_recomputes: Arc<Counter>,
    /// Queries refused before evaluation because their static derivation
    /// bound, evaluated against current EDB cardinalities, exceeded the
    /// configured fact budget (`ERR bound`).
    pub admission_rejected: Arc<Counter>,

    /// Resident forms rebuilt after poisoning or eviction — lazily on an
    /// eligible query or by the background maintenance loop.
    pub resident_rebuilds: Arc<Counter>,
    /// Resident propagations that failed and poisoned their form.
    pub resident_poisonings: Arc<Counter>,
    /// Queries answered from a published-but-lagging frontier or a stale
    /// answer memo (bounded/any consistency; never `fresh`).
    pub stale_serves: Arc<Counter>,
    /// Bounded-staleness queries refused with `ERR stale` because the
    /// bound could not be met within the backpressure policy.
    pub stale_refusals: Arc<Counter>,
    /// Resident drains completed by the background maintenance thread
    /// (deferred off the ingest path by the drain-cost policy).
    pub background_drains: Arc<Counter>,
    /// The upper staleness bound reported on served queries (seconds;
    /// fresh serves record 0).
    pub staleness_bound_seconds: Arc<Histogram>,

    /// Bloom-gated index probes against sealed storage runs (engine-wide,
    /// delta-synced from the process counters at scrape time).
    pub bloom_probes: Arc<Counter>,
    /// Probes short-circuited by a run's bloom filter (no binary search).
    pub bloom_skips: Arc<Counter>,
    /// Sorted-run consolidations (geometric merges at seal points).
    pub storage_consolidations: Arc<Counter>,
    /// Index structures rebuilt from sealed runs by late `ensure_index`.
    pub index_rebuilds: Arc<Counter>,
    /// Consolidation (run-merge) duration.
    pub consolidation_seconds: Arc<Histogram>,
    /// Sealed storage runs across the shared EDB and resident forms
    /// (sampled at scrape time).
    pub storage_runs: Arc<Gauge>,
    /// Last-seen values of the process-wide storage counters, so scrapes
    /// publish deltas exactly once even when concurrent.
    seen_storage: [AtomicU64; 4],

    /// WAL append latency (write + policy fsync).
    pub wal_append_seconds: Arc<Histogram>,
    /// WAL fsync latency alone.
    pub wal_fsync_seconds: Arc<Histogram>,
    /// WAL append/compaction failures.
    pub wal_errors: Arc<Counter>,
    /// Snapshot compaction duration.
    pub compaction_seconds: Arc<Histogram>,

    /// Connections shed at the connection limit.
    pub shed_conns: Arc<Counter>,
    /// Queries shed at the in-flight budget.
    pub shed_queries: Arc<Counter>,
    /// Wall-clock deadline trips.
    pub deadline_trips: Arc<Counter>,
    /// Derived-fact budget trips.
    pub budget_trips: Arc<Counter>,
    /// Iteration-cap trips.
    pub iteration_trips: Arc<Counter>,
    /// Queries cancelled by the shutdown drain.
    pub cancelled_queries: Arc<Counter>,
    /// Handler panics contained by `catch_unwind`.
    pub panics_recovered: Arc<Counter>,
    /// Limit events evicted from the ring before anyone read them.
    pub limit_events_dropped: Arc<Counter>,
    /// Queries that crossed the `--slow-query-ms` threshold.
    pub slow_queries: Arc<Counter>,

    /// Queries evaluating right now (sampled at scrape time).
    pub inflight: Arc<Gauge>,
    /// Connections being served right now (sampled at scrape time).
    pub active_conns: Arc<Gauge>,
    /// Committed facts (sampled at scrape time).
    pub facts: Arc<Gauge>,
    /// Prepared forms cached (sampled at scrape time).
    pub prepared_forms: Arc<Gauge>,
    /// Forms holding resident incremental state (sampled at scrape time).
    pub resident_forms: Arc<Gauge>,

    /// The engine-side histograms (task enumeration / queue wait / merge),
    /// threaded into every evaluation via `EvalOptions::metrics`.
    pub eval: EvalHists,
}

impl ServerMetrics {
    /// Build the full metric surface on a fresh registry. `enabled = false`
    /// is the no-op baseline (`--no-metrics`): histograms stop sampling,
    /// counters keep counting.
    pub fn new(enabled: bool) -> ServerMetrics {
        let registry = if enabled {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let requests_total = VERBS.map(|v| {
            registry.counter(
                "xdl_requests_total",
                "Requests handled, by protocol verb.",
                &[("verb", v)],
            )
        });
        let request_seconds = VERBS.map(|v| {
            registry.histogram(
                "xdl_request_seconds",
                "End-to-end request latency, by protocol verb.",
                &[("verb", v)],
            )
        });
        let phase_seconds = PHASES.map(|p| {
            registry.histogram(
                "xdl_query_phase_seconds",
                "Query lifecycle phase latency (parse, cache, eval, serialize).",
                &[("phase", p)],
            )
        });
        let cache_event = |kind| {
            registry.counter(
                "xdl_cache_events_total",
                "Prepared-query cache events, by kind.",
                &[("kind", kind)],
            )
        };
        let shed = |kind| {
            registry.counter(
                "xdl_shed_total",
                "Work refused by overload control, by kind.",
                &[("kind", kind)],
            )
        };
        let trip = |kind| {
            registry.counter(
                "xdl_limit_trips_total",
                "Resource-limit trips, by kind.",
                &[("kind", kind)],
            )
        };
        let eval = EvalHists::register(&registry);
        ServerMetrics {
            request_ids: AtomicU64::new(0),
            requests_total,
            request_seconds,
            phase_seconds,
            queries: registry.counter(
                "xdl_queries_total",
                "Queries admitted past admission control.",
                &[],
            ),
            prepared_hits: cache_event("prepared_hit"),
            answer_hits: cache_event("answer_hit"),
            cache_misses: cache_event("miss"),
            invalidations: cache_event("invalidation"),
            incremental_applied_facts: registry.counter(
                "xdl_incremental_applied_facts_total",
                "New facts applied to resident forms by delta propagation.",
                &[],
            ),
            incremental_seconds: registry.histogram(
                "xdl_incremental_propagation_seconds",
                "Latency of one resident form's delta catch-up.",
                &[],
            ),
            fallback_recomputes: registry.counter(
                "xdl_fallback_recomputes_total",
                "Eligible queries whose resident state was gone (evicted or \
                 poisoned) and recomputed from cold.",
                &[],
            ),
            admission_rejected: registry.counter(
                "xdl_admission_rejected_total",
                "Queries refused before evaluation because the static \
                 derivation bound exceeded the fact budget.",
                &[],
            ),
            resident_rebuilds: registry.counter(
                "xdl_resident_rebuilds_total",
                "Resident forms rebuilt after poisoning or eviction (lazy \
                 or background).",
                &[],
            ),
            resident_poisonings: registry.counter(
                "xdl_resident_poisonings_total",
                "Resident delta propagations that failed and poisoned \
                 their form.",
                &[],
            ),
            stale_serves: registry.counter(
                "xdl_stale_serves_total",
                "Queries served from a lagging frontier or stale memo \
                 under bounded/any consistency.",
                &[],
            ),
            stale_refusals: registry.counter(
                "xdl_stale_refusals_total",
                "Bounded-staleness queries refused with ERR stale.",
                &[],
            ),
            background_drains: registry.counter(
                "xdl_background_drains_total",
                "Resident drains completed by the maintenance thread.",
                &[],
            ),
            staleness_bound_seconds: registry.histogram(
                "xdl_staleness_bound_seconds",
                "Upper staleness bound reported on served queries (0 for \
                 fresh serves).",
                &[],
            ),
            bloom_probes: registry.counter(
                "xdl_bloom_probes_total",
                "Bloom-gated index probes against sealed storage runs.",
                &[],
            ),
            bloom_skips: registry.counter(
                "xdl_bloom_skips_total",
                "Run probes short-circuited by the bloom filter.",
                &[],
            ),
            storage_consolidations: registry.counter(
                "xdl_storage_consolidations_total",
                "Sorted-run consolidations (geometric merges).",
                &[],
            ),
            index_rebuilds: registry.counter(
                "xdl_index_rebuilds_total",
                "Index structures rebuilt from sealed runs by late \
                 ensure_index.",
                &[],
            ),
            consolidation_seconds: registry.histogram(
                "xdl_storage_consolidation_seconds",
                "Sorted-run consolidation (merge) duration.",
                &[],
            ),
            storage_runs: registry.gauge(
                "xdl_storage_runs",
                "Sealed storage runs across the shared EDB and resident \
                 forms.",
                &[],
            ),
            seen_storage: Default::default(),
            wal_append_seconds: registry.histogram(
                "xdl_wal_append_seconds",
                "WAL append latency (record write plus policy fsync).",
                &[],
            ),
            wal_fsync_seconds: registry.histogram(
                "xdl_wal_fsync_seconds",
                "WAL fsync latency.",
                &[],
            ),
            wal_errors: registry.counter(
                "xdl_wal_errors_total",
                "WAL append or compaction failures.",
                &[],
            ),
            compaction_seconds: registry.histogram(
                "xdl_compaction_seconds",
                "Snapshot compaction duration.",
                &[],
            ),
            shed_conns: shed("connection"),
            shed_queries: shed("query"),
            deadline_trips: trip("deadline"),
            budget_trips: trip("budget"),
            iteration_trips: trip("iterations"),
            cancelled_queries: trip("cancelled"),
            panics_recovered: registry.counter(
                "xdl_panics_recovered_total",
                "Handler panics contained by the request isolation boundary.",
                &[],
            ),
            limit_events_dropped: registry.counter(
                "xdl_limit_events_dropped_total",
                "Limit events evicted from the STATS ring buffer.",
                &[],
            ),
            slow_queries: registry.counter(
                "xdl_slow_queries_total",
                "Queries over the --slow-query-ms threshold.",
                &[],
            ),
            inflight: registry.gauge("xdl_inflight_queries", "Queries evaluating now.", &[]),
            active_conns: registry.gauge(
                "xdl_active_connections",
                "Connections being served now.",
                &[],
            ),
            facts: registry.gauge("xdl_facts", "Committed facts in the EDB.", &[]),
            prepared_forms: registry.gauge(
                "xdl_prepared_forms",
                "Prepared query forms currently cached.",
                &[],
            ),
            resident_forms: registry.gauge(
                "xdl_resident_forms",
                "Forms currently holding resident incremental state.",
                &[],
            ),
            eval,
            registry,
        }
    }

    /// Whether histograms sample (false under `--no-metrics`).
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// Next monotone request id (1-based).
    pub fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Pull the engine's process-wide storage counters into the registry
    /// (publishing only the delta since the last sync, so concurrent
    /// scrapes never double-count), drain pending consolidation timings
    /// into the histogram, and sample the run-count gauge. Called by
    /// `STATS` and `METRICS` before rendering.
    pub fn sync_storage(&self, runs: u64) {
        let c = datalog_engine::storage_counters();
        let observed = [
            (c.bloom_probes, &self.bloom_probes),
            (c.bloom_skips, &self.bloom_skips),
            (c.consolidations, &self.storage_consolidations),
            (c.index_rebuilds, &self.index_rebuilds),
        ];
        for (i, (cur, counter)) in observed.into_iter().enumerate() {
            let prev = self.seen_storage[i].swap(cur, Ordering::Relaxed);
            counter.add(cur.saturating_sub(prev));
        }
        for ns in datalog_engine::take_consolidation_ns() {
            self.consolidation_seconds.record(ns);
        }
        self.storage_runs.set(runs as i64);
    }

    /// Prometheus text exposition of the whole registry.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// JSON readout of the whole registry.
    pub fn to_json(&self) -> Json {
        self.registry.to_json()
    }
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_indexes_match_names() {
        assert_eq!(VERBS[verb_index(&Request::Fact("p(1).".into()))], "FACT");
        assert_eq!(VERBS[verb_index(&Request::Stats)], "STATS");
        assert_eq!(
            VERBS[verb_index(&Request::Metrics { json: true })],
            "METRICS"
        );
        assert_eq!(VERBS[verb_index(&Request::Shutdown)], "SHUTDOWN");
    }

    #[test]
    fn exposition_covers_the_required_families() {
        let m = ServerMetrics::new(true);
        m.requests_total[2].inc();
        m.request_seconds[2].record(1_000);
        m.wal_fsync_seconds.record(2_000);
        m.eval.task_enum.record(500);
        let text = m.render_prometheus();
        for family in [
            "xdl_requests_total",
            "xdl_request_seconds",
            "xdl_query_phase_seconds",
            "xdl_cache_events_total",
            "xdl_wal_fsync_seconds",
            "xdl_shed_total",
            "xdl_limit_trips_total",
            "xdl_eval_task_enum_seconds",
            "xdl_eval_merge_seconds",
            "xdl_resident_rebuilds_total",
            "xdl_resident_poisonings_total",
            "xdl_stale_serves_total",
            "xdl_stale_refusals_total",
            "xdl_background_drains_total",
            "xdl_staleness_bound_seconds",
            "xdl_bloom_probes_total",
            "xdl_bloom_skips_total",
            "xdl_storage_consolidations_total",
            "xdl_index_rebuilds_total",
            "xdl_storage_consolidation_seconds",
            "xdl_storage_runs",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "{family} missing"
            );
        }
        assert!(text.contains("xdl_requests_total{verb=\"QUERY\"} 1"));
    }

    #[test]
    fn storage_sync_is_delta_once_and_samples_the_gauge() {
        // The engine counters are process-wide (other tests in this
        // process may bump them concurrently), so assert the delta
        // discipline, not exact values: repeated syncs never push the
        // registry counter past the global it mirrors.
        let m = ServerMetrics::new(true);
        m.sync_storage(3);
        assert_eq!(m.storage_runs.get(), 3);
        m.sync_storage(5);
        m.sync_storage(5);
        assert_eq!(m.storage_runs.get(), 5);
        let global = datalog_engine::storage_counters();
        assert!(m.bloom_probes.get() <= global.bloom_probes);
        assert!(m.bloom_skips.get() <= global.bloom_skips);
        assert!(m.index_rebuilds.get() <= global.index_rebuilds);
    }

    #[test]
    fn request_ids_are_monotone() {
        let m = ServerMetrics::new(false);
        assert_eq!(m.next_request_id(), 1);
        assert_eq!(m.next_request_id(), 2);
        assert!(!m.enabled());
    }
}
